//! The MAC framework: mechanism/policy separation (§2, §3.5.2).
//!
//! "The FreeBSD MAC Framework separates mechanism — hooks throughout
//! the kernel — from policy": `mac_*_check_*` entry points consult
//! every registered [`MacPolicy`]; any policy may deny. The kernel
//! calls these check functions at the *framework* layer (VFS, socket
//! layer, process layer); TESLA assertions placed in *object
//! implementations* (UFS, `sopoll_generic`, …) then assert that the
//! check actually happened — with the right subject, object and
//! parameters — across all the indirection of fig. 3.

use crate::types::Ucred;

/// The object classes MAC checks govern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacObject {
    /// A vnode with its integrity label.
    Vnode {
        /// Object label.
        label: i32,
    },
    /// A socket with its label.
    Socket {
        /// Object label.
        label: i32,
    },
    /// Another process.
    Proc {
        /// Target's credential label.
        label: i32,
        /// Target's uid (for unprivileged-visibility policies).
        uid: u32,
    },
    /// The system itself (kld, sysctl).
    System,
}

/// A MAC policy: may veto any checked operation.
pub trait MacPolicy: Send + Sync {
    /// Policy name (diagnostics).
    fn name(&self) -> &str;

    /// Check `op` by `cred` on `obj`: `Ok(())` or a deny.
    fn check(&self, op: &str, cred: &Ucred, obj: &MacObject) -> Result<(), ()>;
}

/// A Biba-style integrity policy: a subject may not operate on
/// objects with a *higher* integrity label than its own (no read up /
/// write up), except root.
pub struct BibaPolicy;

impl MacPolicy for BibaPolicy {
    fn name(&self) -> &str {
        "biba"
    }

    fn check(&self, _op: &str, cred: &Ucred, obj: &MacObject) -> Result<(), ()> {
        if cred.is_root() {
            return Ok(());
        }
        let obj_label = match obj {
            MacObject::Vnode { label } | MacObject::Socket { label } => *label,
            MacObject::Proc { label, .. } => *label,
            MacObject::System => i32::MAX,
        };
        if cred.label >= obj_label {
            Ok(())
        } else {
            Err(())
        }
    }
}

/// A "see-own" policy: unprivileged processes may only observe or
/// signal processes with their own uid.
pub struct SeeOwnPolicy;

impl MacPolicy for SeeOwnPolicy {
    fn name(&self) -> &str {
        "seeown"
    }

    fn check(&self, op: &str, cred: &Ucred, obj: &MacObject) -> Result<(), ()> {
        if cred.is_root() {
            return Ok(());
        }
        match obj {
            MacObject::Proc { uid, .. }
                if op.starts_with("proc_")
                    || op.starts_with("cansee")
                    || op.starts_with("cansignal") =>
            {
                if *uid == cred.uid {
                    Ok(())
                } else {
                    Err(())
                }
            }
            _ => Ok(()),
        }
    }
}

/// The policy list (the framework half of mechanism/policy).
#[derive(Default)]
pub struct MacFramework {
    policies: Vec<Box<dyn MacPolicy>>,
}

impl MacFramework {
    /// Empty framework (everything allowed).
    pub fn new() -> MacFramework {
        MacFramework::default()
    }

    /// Register a policy module.
    pub fn register(&mut self, p: Box<dyn MacPolicy>) {
        self.policies.push(p);
    }

    /// Number of registered policies.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// No policies registered?
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Run every policy; 0 on allow, EACCES-style error code on deny.
    pub fn check(&self, op: &str, cred: &Ucred, obj: &MacObject) -> i64 {
        for p in &self.policies {
            if p.check(op, cred, obj).is_err() {
                return 13; // EACCES
            }
        }
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cred(uid: u32, label: i32) -> Ucred {
        Ucred {
            id: 1,
            uid,
            gid: uid,
            label,
        }
    }

    #[test]
    fn biba_denies_higher_integrity_objects() {
        let p = BibaPolicy;
        let low = cred(100, 1);
        let high_obj = MacObject::Vnode { label: 5 };
        let low_obj = MacObject::Vnode { label: 0 };
        assert!(p.check("vnode_read", &low, &high_obj).is_err());
        assert!(p.check("vnode_read", &low, &low_obj).is_ok());
        // Root bypasses.
        assert!(p.check("vnode_read", &cred(0, 0), &high_obj).is_ok());
    }

    #[test]
    fn seeown_scopes_process_visibility() {
        let p = SeeOwnPolicy;
        let me = cred(100, 0);
        let mine = MacObject::Proc { label: 0, uid: 100 };
        let theirs = MacObject::Proc { label: 0, uid: 200 };
        assert!(p.check("proc_signal", &me, &mine).is_ok());
        assert!(p.check("proc_signal", &me, &theirs).is_err());
        // Non-process objects unaffected.
        assert!(p
            .check("vnode_read", &me, &MacObject::Vnode { label: 9 })
            .is_ok());
    }

    #[test]
    fn framework_any_policy_can_deny() {
        let mut fw = MacFramework::new();
        assert_eq!(fw.check("x", &cred(1, 0), &MacObject::System), 0);
        fw.register(Box::new(BibaPolicy));
        fw.register(Box::new(SeeOwnPolicy));
        assert_eq!(fw.len(), 2);
        // System objects are root-only under Biba.
        assert_ne!(fw.check("kld_load", &cred(1, 0), &MacObject::System), 0);
        assert_eq!(fw.check("kld_load", &cred(0, 0), &MacObject::System), 0);
    }
}
