//! Kernel state tables: processes, vnodes, sockets.

use crate::types::{Errno, Fd, KResult, Pid, SockId, Ucred, VnodeId};
use std::collections::{HashMap, VecDeque};

/// What a file descriptor refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FObj {
    /// A vnode.
    Vnode(VnodeId),
    /// A socket.
    Socket(SockId),
}

/// An open file description (`struct file`). Caches the opener's
/// credential (`f_cred` in FreeBSD) — the cached credential the
/// wrong-credential bug passes where `active_cred` belongs.
#[derive(Debug, Clone, Copy)]
pub struct FileDesc {
    /// Referent.
    pub obj: FObj,
    /// Credential cached at open/creation time.
    pub file_cred: Ucred,
    /// Read/write offset.
    pub offset: usize,
    /// Open flags.
    pub flags: u64,
}

/// Process state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProcState {
    /// Runnable.
    Running,
    /// Exited, unreaped (exit status).
    Zombie(i64),
}

/// A process (`struct proc`).
#[derive(Debug, Clone)]
pub struct Proc {
    /// Process id.
    pub pid: Pid,
    /// Parent pid.
    pub parent: Pid,
    /// Current (immutable) credential.
    pub cred: Ucred,
    /// `p_flag` bits (`P_SUGID`, …).
    pub p_flag: u64,
    /// Descriptor table.
    pub fds: Vec<Option<FileDesc>>,
    /// State.
    pub state: ProcState,
    /// Pending signals.
    pub siglist: Vec<i32>,
    /// CPU affinity mask.
    pub cpuset: u64,
    /// POSIX real-time priority.
    pub rtprio: i32,
    /// nice value.
    pub nice: i32,
    /// Process group.
    pub pgid: u32,
    /// ktrace enabled?
    pub ktrace: bool,
    /// Being traced by (ptrace).
    pub traced_by: Option<Pid>,
}

/// Vnode kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VKind {
    /// Regular file.
    Reg,
    /// Directory.
    Dir,
}

/// A vnode with its UFS-like inode state.
#[derive(Debug, Clone)]
pub struct Vnode {
    /// File or directory.
    pub kind: VKind,
    /// File contents.
    pub data: Vec<u8>,
    /// Directory entries.
    pub children: Vec<(String, VnodeId)>,
    /// Extended attributes (also the ACL backing store, as in UFS).
    pub extattrs: HashMap<String, Vec<u8>>,
    /// MAC label.
    pub label: i32,
    /// Owner.
    pub uid: u32,
    /// Mode bits.
    pub mode: u32,
    /// Link count.
    pub nlink: u32,
    /// Executable image? (for exec and kld)
    pub is_exec: bool,
}

impl Vnode {
    fn dir(label: i32) -> Vnode {
        Vnode {
            kind: VKind::Dir,
            data: Vec::new(),
            children: Vec::new(),
            extattrs: HashMap::new(),
            label,
            uid: 0,
            mode: 0o755,
            nlink: 2,
            is_exec: false,
        }
    }

    fn file(label: i32, uid: u32) -> Vnode {
        Vnode {
            kind: VKind::Reg,
            data: Vec::new(),
            children: Vec::new(),
            extattrs: HashMap::new(),
            label,
            uid,
            mode: 0o644,
            nlink: 1,
            is_exec: false,
        }
    }
}

/// Socket protocol — selects the `protosw`/`pr_usrreqs` dispatch row
/// (the fig. 3 indirection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Proto {
    /// Stream.
    Tcp,
    /// Datagram.
    Udp,
    /// Local.
    Unix,
}

/// Socket state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoState {
    /// Fresh.
    Idle,
    /// Bound to an address.
    Bound,
    /// Listening.
    Listening,
    /// Connected to a peer.
    Connected(SockId),
    /// Torn down.
    Closed,
}

/// A socket (`struct socket`).
#[derive(Debug, Clone)]
pub struct Socket {
    /// Protocol.
    pub proto: Proto,
    /// State.
    pub state: SoState,
    /// MAC label.
    pub label: i32,
    /// Receive queue.
    pub rx: VecDeque<Vec<u8>>,
    /// Accept queue (listening sockets).
    pub accept_q: VecDeque<SockId>,
    /// `so_qstate`-like flags.
    pub so_qstate: u64,
}

/// All kernel tables.
pub struct State {
    /// Process table.
    pub procs: HashMap<Pid, Proc>,
    /// Next pid.
    pub next_pid: u32,
    /// Vnode table.
    pub vnodes: Vec<Vnode>,
    /// Socket table.
    pub sockets: Vec<Socket>,
    /// Root directory.
    pub root: VnodeId,
}

impl State {
    /// Fresh boot state with an empty root filesystem.
    pub fn boot() -> State {
        State {
            procs: HashMap::new(),
            next_pid: 1,
            vnodes: vec![Vnode::dir(0)],
            sockets: Vec::new(),
            root: VnodeId(0),
        }
    }

    /// Create the init process (pid 1).
    pub fn spawn_init(&mut self, cred: Ucred) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.procs.insert(
            pid,
            Proc {
                pid,
                parent: pid,
                cred,
                p_flag: 0,
                fds: Vec::new(),
                state: ProcState::Running,
                siglist: Vec::new(),
                cpuset: u64::MAX,
                rtprio: 0,
                nice: 0,
                pgid: pid.0,
                ktrace: false,
                traced_by: None,
            },
        );
        pid
    }

    /// Get a live process.
    pub fn proc_mut(&mut self, pid: Pid) -> KResult<&mut Proc> {
        self.procs.get_mut(&pid).ok_or_else(|| Errno::ESRCH.into())
    }

    /// Get a live process (shared).
    pub fn proc_ref(&self, pid: Pid) -> KResult<&Proc> {
        self.procs.get(&pid).ok_or_else(|| Errno::ESRCH.into())
    }

    /// Allocate a descriptor slot in `pid`'s table.
    pub fn fd_alloc(&mut self, pid: Pid, desc: FileDesc) -> KResult<Fd> {
        let p = self.proc_mut(pid)?;
        if let Some(i) = p.fds.iter().position(Option::is_none) {
            p.fds[i] = Some(desc);
            return Ok(Fd(i as u32));
        }
        if p.fds.len() >= 1024 {
            return Err(Errno::EMFILE.into());
        }
        p.fds.push(Some(desc));
        Ok(Fd(p.fds.len() as u32 - 1))
    }

    /// Resolve a descriptor.
    pub fn fd_get(&self, pid: Pid, fd: Fd) -> KResult<FileDesc> {
        self.proc_ref(pid)?
            .fds
            .get(fd.0 as usize)
            .copied()
            .flatten()
            .ok_or_else(|| Errno::EBADF.into())
    }

    /// Mutable access to a descriptor.
    pub fn fd_mut(&mut self, pid: Pid, fd: Fd) -> KResult<&mut FileDesc> {
        self.proc_mut(pid)?
            .fds
            .get_mut(fd.0 as usize)
            .and_then(Option::as_mut)
            .ok_or_else(|| Errno::EBADF.into())
    }

    /// Walk a `/`-separated absolute path; returns the vnode, or the
    /// parent + final component when `want_parent`.
    pub fn namei(&self, path: &str) -> KResult<VnodeId> {
        let mut cur = self.root;
        for comp in path.split('/').filter(|c| !c.is_empty()) {
            let v = &self.vnodes[cur.0 as usize];
            if v.kind != VKind::Dir {
                return Err(Errno::ENOTDIR.into());
            }
            cur = v
                .children
                .iter()
                .find(|(n, _)| n == comp)
                .map(|(_, id)| *id)
                .ok_or(Errno::ENOENT)?;
        }
        Ok(cur)
    }

    /// Resolve the parent directory and final component of a path.
    pub fn namei_parent<'p>(&self, path: &'p str) -> KResult<(VnodeId, &'p str)> {
        let comps: Vec<&str> = path.split('/').filter(|c| !c.is_empty()).collect();
        let Some((last, dirs)) = comps.split_last() else {
            return Err(Errno::EINVAL.into());
        };
        let mut cur = self.root;
        for comp in dirs {
            let v = &self.vnodes[cur.0 as usize];
            if v.kind != VKind::Dir {
                return Err(Errno::ENOTDIR.into());
            }
            cur = v
                .children
                .iter()
                .find(|(n, _)| n == comp)
                .map(|(_, id)| *id)
                .ok_or(Errno::ENOENT)?;
        }
        Ok((cur, last))
    }

    /// Create a file (or directory) under `parent`.
    pub fn mknod(
        &mut self,
        parent: VnodeId,
        name: &str,
        dir: bool,
        label: i32,
        uid: u32,
    ) -> KResult<VnodeId> {
        if self.vnodes[parent.0 as usize]
            .children
            .iter()
            .any(|(n, _)| n == name)
        {
            return Err(Errno::EEXIST.into());
        }
        let id = VnodeId(self.vnodes.len() as u32);
        self.vnodes.push(if dir {
            Vnode::dir(label)
        } else {
            Vnode::file(label, uid)
        });
        self.vnodes[parent.0 as usize]
            .children
            .push((name.to_string(), id));
        Ok(id)
    }

    /// Vnode accessor.
    pub fn vnode(&self, v: VnodeId) -> &Vnode {
        &self.vnodes[v.0 as usize]
    }

    /// Mutable vnode accessor.
    pub fn vnode_mut(&mut self, v: VnodeId) -> &mut Vnode {
        &mut self.vnodes[v.0 as usize]
    }

    /// Socket accessor.
    pub fn socket(&self, s: SockId) -> KResult<&Socket> {
        self.sockets
            .get(s.0 as usize)
            .ok_or_else(|| Errno::ENOTSOCK.into())
    }

    /// Mutable socket accessor.
    pub fn socket_mut(&mut self, s: SockId) -> KResult<&mut Socket> {
        self.sockets
            .get_mut(s.0 as usize)
            .ok_or_else(|| Errno::ENOTSOCK.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cred() -> Ucred {
        Ucred {
            id: 1,
            uid: 0,
            gid: 0,
            label: 10,
        }
    }

    #[test]
    fn boot_and_namei() {
        let mut st = State::boot();
        st.spawn_init(cred());
        let etc = st.mknod(st.root, "etc", true, 0, 0).unwrap();
        let passwd = st.mknod(etc, "passwd", false, 0, 0).unwrap();
        assert_eq!(st.namei("/etc/passwd").unwrap(), passwd);
        assert_eq!(st.namei("/etc").unwrap(), etc);
        assert_eq!(st.namei("/").unwrap(), st.root);
        assert!(st.namei("/nope").is_err());
        let (parent, last) = st.namei_parent("/etc/newfile").unwrap();
        assert_eq!(parent, etc);
        assert_eq!(last, "newfile");
    }

    #[test]
    fn fd_table_reuses_slots() {
        let mut st = State::boot();
        let pid = st.spawn_init(cred());
        let v = st.mknod(st.root, "f", false, 0, 0).unwrap();
        let d = FileDesc {
            obj: FObj::Vnode(v),
            file_cred: cred(),
            offset: 0,
            flags: 0,
        };
        let a = st.fd_alloc(pid, d).unwrap();
        let b = st.fd_alloc(pid, d).unwrap();
        assert_ne!(a, b);
        st.proc_mut(pid).unwrap().fds[a.0 as usize] = None;
        let c = st.fd_alloc(pid, d).unwrap();
        assert_eq!(a, c);
        assert!(st.fd_get(pid, Fd(99)).is_err());
    }

    #[test]
    fn mknod_rejects_duplicates() {
        let mut st = State::boot();
        st.mknod(st.root, "x", false, 0, 0).unwrap();
        assert!(st.mknod(st.root, "x", false, 0, 0).is_err());
    }
}
