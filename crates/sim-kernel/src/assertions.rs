//! The kernel's TESLA assertion sets (table 1 of the paper).
//!
//! | Symbol | Description          | Assertions |
//! |--------|----------------------|------------|
//! | MF     | MAC (filesystem)     | 25         |
//! | MS     | MAC (sockets)        | 11         |
//! | MP     | MAC (processes)      | 10         |
//! | M      | All MAC assertions   | 48         |
//! | P      | Process lifetimes    | 37         |
//! | All    | All TESLA assertions | 96         |
//!
//! `M` is MF ∪ MS ∪ MP plus 2 cross-cutting system assertions; `All`
//! is M ∪ P plus the 11 infrastructure/test assertions (the paper's
//! table sums the same way: 48 + 37 + 11 = 96). Of the 37 `P`
//! assertions, 19 cover the procfs-like facility, 2 CPUSET and 5
//! POSIX-RT — the 26 assertions the paper found unexercised by the
//! inter-process test suite (§3.5.2).
//!
//! Most assertions are the canonical shape of fig. 4 —
//! `TESLA_SYSCALL_PREVIOUSLY(check(ANY(ptr), obj) == 0)` — generated
//! from tables below. Four are hand-written to match the paper's
//! figures exactly: the `ufs_open` and `ffs_read` disjunctions of
//! fig. 7 (the latter in both syscall- and page-fault-bounded
//! variants), the credential-carrying socket-poll assertion of
//! fig. 4, and the `P_SUGID` `eventually` field assertion.

use crate::proc::ProcfsOp;
use crate::types::{ioflags, pflags};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use tesla_automata::compile;
use tesla_runtime::{ClassId, Tesla};
use tesla_spec::{call, field_assign, Assertion, AssertionBuilder, ExprBuilder, FieldOp};

/// Assertion-site key → runtime classes that anchor there. Several
/// classes can share a site (e.g. the syscall- and pfault-bounded
/// read assertions).
pub type SiteMap = HashMap<String, Vec<ClassId>>;

/// The table-1 set symbols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AssertionSet {
    /// MAC filesystem (25).
    MF,
    /// MAC sockets (11).
    MS,
    /// MAC processes (10).
    MP,
    /// All MAC = MF+MS+MP + 2 cross-cutting (48).
    M,
    /// Process lifetimes / inter-process (37).
    P,
    /// Infrastructure/test assertions (11).
    Infra,
    /// Everything (96).
    All,
}

impl AssertionSet {
    /// Expand to the primitive sets.
    fn primitives(self) -> Vec<AssertionSet> {
        match self {
            AssertionSet::M => vec![AssertionSet::MF, AssertionSet::MS, AssertionSet::MP],
            AssertionSet::All => vec![
                AssertionSet::MF,
                AssertionSet::MS,
                AssertionSet::MP,
                AssertionSet::P,
                AssertionSet::Infra,
            ],
            s => vec![s],
        }
    }

    /// Does the expansion include the cross-cutting system
    /// assertions? (They belong to `M` and `All`.)
    fn includes_cross(self) -> bool {
        matches!(self, AssertionSet::M | AssertionSet::All)
    }
}

/// A generated assertion: site key + the assertion itself.
struct Spec {
    key: String,
    assertion: Assertion,
}

/// `TESLA_SYSCALL_PREVIOUSLY(check(ANY(ptr), obj) == 0)` — the
/// canonical fig. 4 shape, named after its site key.
fn prev_check(key: &str, check_fn: &str) -> Spec {
    Spec {
        key: key.to_string(),
        assertion: AssertionBuilder::syscall()
            .named(&key)
            .previously(call(check_fn).any_ptr().arg_var("obj").returns(0))
            .build()
            .expect("generated assertion is valid"),
    }
}

/// The 25 MF (MAC filesystem) assertions.
fn mf_specs() -> Vec<Spec> {
    let mut out = Vec::new();
    // fig. 7: ufs_open accepts any of three authorising checks.
    out.push(Spec {
        key: "vnode/open".to_string(),
        assertion: AssertionBuilder::syscall()
            .named("vnode/open")
            .previously(
                ExprBuilder::from(
                    call("mac_kld_check_load")
                        .any_ptr()
                        .arg_var("vp")
                        .returns(0),
                )
                .or(call("mac_vnode_check_exec")
                    .any_ptr()
                    .arg_var("vp")
                    .returns(0))
                .or(call("mac_vnode_check_open")
                    .any_ptr()
                    .arg_var("vp")
                    .returns(0)),
            )
            .build()
            .expect("valid"),
    });
    // fig. 7: ffs_read's code-path-dependent expectations, bounded by
    // the system call...
    let read_body = || {
        ExprBuilder::in_callstack("ufs_readdir")
            .or(ExprBuilder::from(
                call("vn_rdwr")
                    .arg_var("vp")
                    .arg_flags(ioflags::IO_NOMACCHECK)
                    .entry(),
            )
            .then(ExprBuilder::site()))
            .or(ExprBuilder::from(
                call("mac_vnode_check_read")
                    .any_ptr()
                    .arg_var("vp")
                    .returns(0),
            )
            .then(ExprBuilder::site()))
    };
    out.push(Spec {
        key: "vnode/read".to_string(),
        assertion: AssertionBuilder::syscall()
            .named("vnode/read")
            .body(read_body())
            .build()
            .expect("valid"),
    });
    // ...and by the page-fault handler (§3.5.2: "file-system I/O
    // initiated by virtual-memory page faults (trap_pfault)").
    out.push(Spec {
        key: "vnode/read".to_string(),
        assertion: AssertionBuilder::within("trap_pfault")
            .named("vnode/read-pfault")
            .body(read_body())
            .build()
            .expect("valid"),
    });
    for (key, check) in [
        ("vnode/create", "mac_vnode_check_create"),
        ("vnode/write", "mac_vnode_check_write"),
        ("vnode/readdir", "mac_vnode_check_readdir"),
        ("vnode/stat", "mac_vnode_check_stat"),
        ("vnode/lookup", "mac_vnode_check_lookup"),
        ("vnode/unlink", "mac_vnode_check_unlink"),
        ("vnode/rename_from", "mac_vnode_check_rename_from"),
        ("vnode/rename_to", "mac_vnode_check_rename_to"),
        ("vnode/link", "mac_vnode_check_link"),
        ("vnode/setmode", "mac_vnode_check_setmode"),
        ("vnode/setowner", "mac_vnode_check_setowner"),
        ("vnode/setutimes", "mac_vnode_check_setutimes"),
        ("vnode/revoke", "mac_vnode_check_revoke"),
        ("vnode/mmap", "mac_vnode_check_mmap"),
        ("vnode/mprotect", "mac_vnode_check_mprotect"),
        ("vnode/getextattr", "mac_vnode_check_getextattr"),
        ("vnode/setextattr", "mac_vnode_check_setextattr"),
        ("vnode/deleteextattr", "mac_vnode_check_deleteextattr"),
        ("vnode/listextattr", "mac_vnode_check_listextattr"),
        ("vnode/getacl", "mac_vnode_check_getacl"),
        ("vnode/setacl", "mac_vnode_check_setacl"),
        ("vnode/deleteacl", "mac_vnode_check_deleteacl"),
    ] {
        out.push(prev_check(key, check));
    }
    debug_assert_eq!(out.len(), 25);
    out
}

/// The 11 MS (MAC sockets) assertions.
fn ms_specs() -> Vec<Spec> {
    let mut out = Vec::new();
    // fig. 4: the poll check must have used the *active* credential.
    out.push(Spec {
        key: "socket/poll".to_string(),
        assertion: AssertionBuilder::syscall()
            .named("socket/poll")
            .previously(
                call("mac_socket_check_poll")
                    .arg_var("active_cred")
                    .arg_var("so")
                    .returns(0),
            )
            .build()
            .expect("valid"),
    });
    // create: the check runs before the socket object exists, so it
    // cannot bind the object the site names.
    out.push(Spec {
        key: "socket/create".to_string(),
        assertion: AssertionBuilder::syscall()
            .named("socket/create")
            .previously(call("mac_socket_check_create").returns(0))
            .build()
            .expect("valid"),
    });
    for (key, check) in [
        ("socket/bind", "mac_socket_check_bind"),
        ("socket/listen", "mac_socket_check_listen"),
        ("socket/connect", "mac_socket_check_connect"),
        ("socket/accept", "mac_socket_check_accept"),
        ("socket/send", "mac_socket_check_send"),
        ("socket/receive", "mac_socket_check_receive"),
        ("socket/visible", "mac_socket_check_visible"),
        ("socket/stat", "mac_socket_check_stat"),
        ("socket/relabel", "mac_socket_check_relabel"),
    ] {
        out.push(prev_check(key, check));
    }
    debug_assert_eq!(out.len(), 11);
    out
}

/// The 10 MP (MAC processes) assertions.
fn mp_specs() -> Vec<Spec> {
    let mut out = Vec::new();
    for (key, check) in [
        ("proc/signal", "mac_proc_check_signal"),
        ("proc/debug", "mac_proc_check_debug"),
        ("proc/see", "mac_proc_check_see"),
        ("proc/sched", "mac_proc_check_sched"),
        ("proc/wait", "mac_proc_check_wait"),
        ("proc/setpgid", "mac_proc_check_setpgid"),
        ("proc/ktrace", "mac_proc_check_ktrace"),
    ] {
        out.push(prev_check(key, check));
    }
    // exec: the check's arguments (cred, vnode) are unrelated to the
    // site's scope, so no variables are bound.
    out.push(Spec {
        key: "proc/exec".to_string(),
        assertion: AssertionBuilder::syscall()
            .named("proc/exec")
            .previously(call("mac_vnode_check_exec").returns(0))
            .build()
            .expect("valid"),
    });
    // The setuid check authorises the credential change...
    out.push(prev_check("proc/sugid", "mac_proc_check_setuid"));
    // ...and the §3.5.2 side-effect property: "if a process credential
    // is modified, then the P_SUGID process flag must be set to
    // prevent privilege escalation attacks via debuggers".
    out.push(Spec {
        key: "proc/sugid".to_string(),
        assertion: AssertionBuilder::syscall()
            .named("proc/sugid-eventually")
            .eventually(
                field_assign("proc", "p_flag")
                    .object_var("obj")
                    .op(FieldOp::OrAssign)
                    .value_flags(pflags::P_SUGID),
            )
            .build()
            .expect("valid"),
    });
    debug_assert_eq!(out.len(), 10);
    out
}

/// The 2 cross-cutting system assertions completing M = 48.
fn cross_specs() -> Vec<Spec> {
    vec![
        prev_check("system/kld", "mac_kld_check_load"),
        prev_check("system/sysctl", "mac_system_check_sysctl"),
    ]
}

/// The 37 P (process lifetimes / inter-process) assertions.
fn p_specs() -> Vec<Spec> {
    let mut out = Vec::new();
    // 11 exercised by the inter-process test suite.
    for (key, check) in [
        ("ip/signal", "p_cansignal"),
        ("ip/signal_pgrp", "p_cansignal"),
        ("ip/debug", "p_candebug"),
        ("ip/see", "p_cansee"),
        ("ip/sched", "p_cansched"),
        ("ip/wait", "p_canwait"),
        ("ip/ktrace", "p_candebug"),
        ("ip/getpgid", "p_cansee"),
        ("ip/setpgid", "p_cansee"),
        ("ip/reap", "p_cansee"),
        ("ip/cred_visible", "cr_cansee"),
    ] {
        out.push(prev_check(key, check));
    }
    // 19 procfs assertions — the deprecated facility.
    for op in ProcfsOp::ALL {
        out.push(prev_check(op.site_key(), op.check_fn()));
    }
    // 2 CPUSET + 5 POSIX-RT — facilities added after the test suite
    // was written.
    for (key, check) in [
        ("cpuset/get", "p_cansched"),
        ("cpuset/set", "p_cansched"),
        ("rt/rtprio_get", "p_cansee"),
        ("rt/rtprio_set", "p_cansched"),
        ("rt/sched_getparam", "p_cansee"),
        ("rt/sched_setparam", "p_cansched"),
        ("rt/sched_setscheduler", "p_cansched"),
    ] {
        out.push(prev_check(key, check));
    }
    debug_assert_eq!(out.len(), 37);
    out
}

/// The 11 infrastructure/test assertions: real automata bounded by
/// the syscall, referencing self-test events no workload emits. They
/// measure the pure cost of bound tracking and hook dispatch — the
/// "Infrastructure" configuration of fig. 11.
fn infra_specs() -> Vec<Spec> {
    (0..11)
        .map(|i| {
            let key = format!("infra/{i}");
            Spec {
                key: key.clone(),
                assertion: AssertionBuilder::syscall()
                    .named(&key)
                    .previously(
                        ExprBuilder::from(call(&format!("tesla_selftest_event_{i}")).returns(0))
                            .optional(),
                    )
                    .build()
                    .expect("valid"),
            }
        })
        .collect()
}

/// Every hooked check/wrapper function name the kernel may emit
/// events for. Pre-interned at kernel construction.
pub const ALL_CHECK_FNS: &[&str] = &[
    "mac_vnode_check_lookup",
    "mac_vnode_check_open",
    "mac_vnode_check_create",
    "mac_vnode_check_read",
    "mac_vnode_check_write",
    "mac_vnode_check_readdir",
    "mac_vnode_check_exec",
    "mac_vnode_check_stat",
    "mac_vnode_check_unlink",
    "mac_vnode_check_rename_from",
    "mac_vnode_check_rename_to",
    "mac_vnode_check_link",
    "mac_vnode_check_setmode",
    "mac_vnode_check_setowner",
    "mac_vnode_check_setutimes",
    "mac_vnode_check_revoke",
    "mac_vnode_check_mmap",
    "mac_vnode_check_mprotect",
    "mac_vnode_check_getextattr",
    "mac_vnode_check_setextattr",
    "mac_vnode_check_deleteextattr",
    "mac_vnode_check_listextattr",
    "mac_vnode_check_getacl",
    "mac_vnode_check_setacl",
    "mac_vnode_check_deleteacl",
    "mac_socket_check_create",
    "mac_socket_check_bind",
    "mac_socket_check_listen",
    "mac_socket_check_connect",
    "mac_socket_check_accept",
    "mac_socket_check_send",
    "mac_socket_check_receive",
    "mac_socket_check_poll",
    "mac_socket_check_visible",
    "mac_socket_check_stat",
    "mac_socket_check_relabel",
    "mac_proc_check_signal",
    "mac_proc_check_debug",
    "mac_proc_check_see",
    "mac_proc_check_sched",
    "mac_proc_check_wait",
    "mac_proc_check_setpgid",
    "mac_proc_check_ktrace",
    "mac_proc_check_setuid",
    "mac_kld_check_load",
    "mac_system_check_sysctl",
    "p_cansignal",
    "p_candebug",
    "p_cansee",
    "p_cansched",
    "p_canwait",
    "cr_cansee",
];

/// The result of registering assertion sets with an engine.
pub struct RegisteredSets {
    /// Site key → class ids.
    pub sites: SiteMap,
    /// Per-primitive-set counts (for the table-1 reproduction).
    pub counts: BTreeMap<&'static str, usize>,
    /// Total registered assertions.
    pub total: usize,
}

/// Register the requested assertion sets with `tesla` and return the
/// site map the kernel needs. Registering `&[AssertionSet::All]`
/// yields the full 96-assertion configuration.
///
/// # Errors
///
/// Returns a description of any compilation/registration failure.
pub fn register_sets(tesla: &Arc<Tesla>, sets: &[AssertionSet]) -> Result<RegisteredSets, String> {
    register_sets_in(tesla, sets, None)
}

/// [`register_sets`] with an optional context override: `Some(ctx)`
/// forces every assertion into `ctx` (the fig. 12 / scaling
/// experiments compare identical assertion sets in the per-thread vs
/// the global context).
///
/// # Errors
///
/// Returns a description of any compilation/registration failure.
pub fn register_sets_in(
    tesla: &Arc<Tesla>,
    sets: &[AssertionSet],
    context: Option<tesla_spec::Context>,
) -> Result<RegisteredSets, String> {
    let mut chosen: Vec<AssertionSet> = sets.iter().flat_map(|s| s.primitives()).collect();
    chosen.sort();
    chosen.dedup();
    let include_cross = sets.iter().any(|s| s.includes_cross());

    let mut sites: SiteMap = HashMap::new();
    let mut counts: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut total = 0usize;
    let mut register = |specs: Vec<Spec>, label: &'static str| -> Result<(), String> {
        // Compile the whole set, then register it as one batch so the
        // engine publishes a single dispatch snapshot per set.
        let mut automata = Vec::with_capacity(specs.len());
        let mut keys = Vec::with_capacity(specs.len());
        for mut spec in specs {
            if let Some(ctx) = context {
                spec.assertion.context = ctx;
            }
            automata.push(
                compile(&spec.assertion).map_err(|e| format!("{}: {e}", spec.assertion.name))?,
            );
            keys.push(spec.key);
        }
        let ids = tesla.register_batch(automata).map_err(|e| e.to_string())?;
        let n = ids.len();
        for (key, id) in keys.into_iter().zip(ids) {
            sites.entry(key).or_default().push(id);
        }
        *counts.entry(label).or_insert(0) += n;
        total += n;
        Ok(())
    };

    for set in chosen {
        match set {
            AssertionSet::MF => register(mf_specs(), "MF")?,
            AssertionSet::MS => register(ms_specs(), "MS")?,
            AssertionSet::MP => register(mp_specs(), "MP")?,
            AssertionSet::P => register(p_specs(), "P")?,
            AssertionSet::Infra => register(infra_specs(), "Infra")?,
            AssertionSet::M | AssertionSet::All => unreachable!("expanded above"),
        }
    }
    if include_cross {
        register(cross_specs(), "Cross")?;
    }
    Ok(RegisteredSets {
        sites,
        counts,
        total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_runtime::Config;

    fn engine() -> Arc<Tesla> {
        Arc::new(Tesla::new(Config::default()))
    }

    #[test]
    fn table1_counts() {
        // Primitive sets.
        assert_eq!(mf_specs().len(), 25);
        assert_eq!(ms_specs().len(), 11);
        assert_eq!(mp_specs().len(), 10);
        assert_eq!(p_specs().len(), 37);
        assert_eq!(infra_specs().len(), 11);
        assert_eq!(cross_specs().len(), 2);
        // Composite sets, as registered.
        let m = register_sets(&engine(), &[AssertionSet::M]).unwrap();
        assert_eq!(m.total, 48);
        let all = register_sets(&engine(), &[AssertionSet::All]).unwrap();
        assert_eq!(all.total, 96);
        let p = register_sets(&engine(), &[AssertionSet::P]).unwrap();
        assert_eq!(p.total, 37);
    }

    #[test]
    fn every_assertion_compiles_and_registers() {
        let t = engine();
        let r = register_sets(&t, &[AssertionSet::All]).unwrap();
        assert_eq!(t.n_classes(), 96);
        // The shared read site carries two classes (syscall + pfault).
        assert_eq!(r.sites["vnode/read"].len(), 2);
        assert_eq!(r.sites["socket/poll"].len(), 1);
        // proc/sugid carries the check assertion and the eventually
        // assertion.
        assert_eq!(r.sites["proc/sugid"].len(), 2);
    }

    #[test]
    fn sets_are_idempotent_unions() {
        let t = engine();
        let r = register_sets(&t, &[AssertionSet::MF, AssertionSet::M]).unwrap();
        // MF ⊂ M: registering both must not duplicate MF.
        assert_eq!(r.total, 48);
    }

    #[test]
    fn all_check_fns_cover_generated_assertions() {
        // Every check function referenced by an assertion appears in
        // ALL_CHECK_FNS (so the kernel pre-interns it).
        for specs in [mf_specs(), ms_specs(), mp_specs(), p_specs(), cross_specs()] {
            for spec in specs {
                spec.assertion.expr.for_each_event(&mut |e| {
                    if let tesla_spec::EventExpr::FunctionEvent { name, .. } = e {
                        if name != "vn_rdwr" {
                            assert!(
                                ALL_CHECK_FNS.contains(&name.as_str()),
                                "`{name}` missing from ALL_CHECK_FNS"
                            );
                        }
                    }
                });
            }
        }
    }
}
