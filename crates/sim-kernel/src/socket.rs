//! The socket layer, with the fig. 3 indirection chain.
//!
//! `sys_poll`/`sys_select`/`sys_kevent` all descend through
//! `fo_poll → soo_poll → sopoll → pru_sopoll → sopoll_generic`, where
//! `pru_sopoll` is a per-protocol function pointer — exactly the
//! "abstraction layers separate a check from the code it governs"
//! structure the paper motivates. The MAC check happens near the top
//! (`soo_poll`); the TESLA assertion in `sopoll_generic` (fig. 4)
//! verifies it actually happened, with the right credential.
//!
//! Seeded bugs: `kqueue_skips_mac_poll` omits the check on the
//! kevent path; `poll_passes_file_cred` makes the *select* path pass
//! the descriptor's cached `file_cred` to `sopoll_generic` where the
//! assertion expects `active_cred`.

use crate::mac::MacObject;
use crate::state::{FObj, FileDesc, Proto, SoState, Socket};
use crate::types::{Errno, Fd, KResult, Pid, SockId, Ucred};
use crate::Kernel;
use std::collections::VecDeque;
use tesla_spec::Value;

/// Which syscall initiated a poll — used only to model the paper's
/// per-path behaviours (and bugs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PollPath {
    Poll,
    Select,
    Kevent,
}

/// The per-protocol user-request table (`struct pr_usrreqs`): real
/// function pointers, preserving the dynamic dispatch of fig. 3.
struct PrUsrreqs {
    pru_sopoll: fn(&Kernel, &Ucred, SockId) -> KResult<i64>,
}

/// `protosw` rows for each protocol.
fn protosw(proto: Proto) -> &'static PrUsrreqs {
    // TCP and UDP share the generic implementation; UNIX-domain has
    // its own thin wrapper (calling the same generic code), mirroring
    // how FreeBSD routes protocol-specific behaviour.
    static GENERIC: PrUsrreqs = PrUsrreqs {
        pru_sopoll: Kernel::sopoll_generic,
    };
    static UNIX: PrUsrreqs = PrUsrreqs {
        pru_sopoll: Kernel::sopoll_unix,
    };
    match proto {
        Proto::Tcp | Proto::Udp => &GENERIC,
        Proto::Unix => &UNIX,
    }
}

impl Kernel {
    /// `socket(2)`.
    pub fn sys_socket(&self, pid: Pid, proto: Proto) -> KResult<Fd> {
        self.with_syscall(pid, || {
            let cred = self.cred_of(pid)?;
            self.mac_require(
                "mac_socket_check_create",
                "socket_create",
                &cred,
                Value(0),
                &MacObject::Socket { label: cred.label },
                &[],
            )?;
            let so = {
                let mut st = self.state.lock();
                let so = SockId(st.sockets.len() as u32);
                st.sockets.push(Socket {
                    proto,
                    state: SoState::Idle,
                    label: cred.label,
                    rx: VecDeque::new(),
                    accept_q: VecDeque::new(),
                    so_qstate: 0,
                });
                so
            };
            self.site("socket/create", &[])?;
            let mut st = self.state.lock();
            st.fd_alloc(
                pid,
                FileDesc {
                    obj: FObj::Socket(so),
                    file_cred: cred,
                    offset: 0,
                    flags: 0,
                },
            )
        })
    }

    fn socket_of(&self, pid: Pid, fd: Fd) -> KResult<(SockId, FileDesc)> {
        let desc = self.state.lock().fd_get(pid, fd)?;
        match desc.obj {
            FObj::Socket(so) => Ok((so, desc)),
            FObj::Vnode(_) => Err(Errno::ENOTSOCK.into()),
        }
    }

    /// A generic checked socket op: MAC check + site + effect.
    fn socket_op<T>(
        &self,
        pid: Pid,
        fd: Fd,
        check_fn: &'static str,
        op: &'static str,
        site_key: &'static str,
        effect: impl FnOnce(&mut crate::state::State, SockId) -> KResult<T>,
    ) -> KResult<T> {
        self.with_syscall(pid, || {
            let cred = self.cred_of(pid)?;
            let (so, _) = self.socket_of(pid, fd)?;
            let label = self.state.lock().socket(so)?.label;
            self.mac_require(
                check_fn,
                op,
                &cred,
                Value::from(so),
                &MacObject::Socket { label },
                &[],
            )?;
            self.site(site_key, &[Value::from(so)])?;
            let mut st = self.state.lock();
            effect(&mut st, so)
        })
    }

    /// `bind(2)`.
    pub fn sys_bind(&self, pid: Pid, fd: Fd) -> KResult<i64> {
        self.socket_op(
            pid,
            fd,
            "mac_socket_check_bind",
            "socket_bind",
            "socket/bind",
            |st, so| {
                st.socket_mut(so)?.state = SoState::Bound;
                Ok(0)
            },
        )
    }

    /// `listen(2)`.
    pub fn sys_listen(&self, pid: Pid, fd: Fd) -> KResult<i64> {
        self.socket_op(
            pid,
            fd,
            "mac_socket_check_listen",
            "socket_listen",
            "socket/listen",
            |st, so| {
                st.socket_mut(so)?.state = SoState::Listening;
                Ok(0)
            },
        )
    }

    /// `connect(2)`: connects to a listening socket.
    pub fn sys_connect(&self, pid: Pid, fd: Fd, to: SockId) -> KResult<i64> {
        self.socket_op(
            pid,
            fd,
            "mac_socket_check_connect",
            "socket_connect",
            "socket/connect",
            move |st, so| {
                if st.socket(to)?.state != SoState::Listening {
                    return Err(Errno::ENOTCONN.into());
                }
                st.socket_mut(so)?.state = SoState::Connected(to);
                st.socket_mut(to)?.accept_q.push_back(so);
                Ok(0)
            },
        )
    }

    /// `accept(2)`.
    pub fn sys_accept(&self, pid: Pid, fd: Fd) -> KResult<Fd> {
        let cred = self.cred_of(pid)?;
        let new = self.socket_op(
            pid,
            fd,
            "mac_socket_check_accept",
            "socket_accept",
            "socket/accept",
            |st, so| {
                let peer = st
                    .socket_mut(so)?
                    .accept_q
                    .pop_front()
                    .ok_or(Errno::ENOTCONN)?;
                let label = st.socket(so)?.label;
                let conn = SockId(st.sockets.len() as u32);
                st.sockets.push(Socket {
                    proto: st.socket(so)?.proto,
                    state: SoState::Connected(peer),
                    label,
                    rx: VecDeque::new(),
                    accept_q: VecDeque::new(),
                    so_qstate: 0,
                });
                st.socket_mut(peer)?.state = SoState::Connected(conn);
                Ok(conn)
            },
        )?;
        let mut st = self.state.lock();
        st.fd_alloc(
            pid,
            FileDesc {
                obj: FObj::Socket(new),
                file_cred: cred,
                offset: 0,
                flags: 0,
            },
        )
    }

    /// `send(2)`.
    pub fn sys_send(&self, pid: Pid, fd: Fd, data: &[u8]) -> KResult<i64> {
        let data = data.to_vec();
        self.socket_op(
            pid,
            fd,
            "mac_socket_check_send",
            "socket/send_op",
            "socket/send",
            move |st, so| {
                let n = data.len() as i64;
                match st.socket(so)?.state {
                    SoState::Connected(peer) => {
                        st.socket_mut(peer)?.rx.push_back(data);
                        Ok(n)
                    }
                    _ => Err(Errno::ENOTCONN.into()),
                }
            },
        )
    }

    /// `recv(2)`.
    pub fn sys_recv(&self, pid: Pid, fd: Fd) -> KResult<Option<Vec<u8>>> {
        self.socket_op(
            pid,
            fd,
            "mac_socket_check_receive",
            "socket_receive",
            "socket/receive",
            |st, so| Ok(st.socket_mut(so)?.rx.pop_front()),
        )
    }

    /// `getpeername(2)`-style visibility.
    pub fn sys_sockvisible(&self, pid: Pid, fd: Fd) -> KResult<i64> {
        self.socket_op(
            pid,
            fd,
            "mac_socket_check_visible",
            "socket_visible",
            "socket/visible",
            |st, so| match st.socket(so)?.state {
                SoState::Connected(peer) => Ok(i64::from(peer.0)),
                _ => Ok(-1),
            },
        )
    }

    /// `fstat(2)` on a socket.
    pub fn sys_sockstat(&self, pid: Pid, fd: Fd) -> KResult<i64> {
        self.socket_op(
            pid,
            fd,
            "mac_socket_check_stat",
            "socket_stat",
            "socket/stat",
            |st, so| Ok(st.socket(so)?.rx.len() as i64),
        )
    }

    /// `setsockopt(SO_LABEL)`-style relabel.
    pub fn sys_sockrelabel(&self, pid: Pid, fd: Fd, label: i32) -> KResult<i64> {
        self.socket_op(
            pid,
            fd,
            "mac_socket_check_relabel",
            "socket_relabel",
            "socket/relabel",
            move |st, so| {
                st.socket_mut(so)?.label = label;
                Ok(0)
            },
        )
    }

    // ----------------------------------------------------------------
    // The poll chain of fig. 3.
    // ----------------------------------------------------------------

    /// `poll(2)`.
    pub fn sys_poll(&self, pid: Pid, fd: Fd) -> KResult<i64> {
        self.with_syscall(pid, || self.fo_poll(pid, fd, PollPath::Poll))
    }

    /// `select(2)` — same chain; carries the seeded wrong-credential
    /// bug.
    pub fn sys_select(&self, pid: Pid, fds: &[Fd]) -> KResult<i64> {
        self.with_syscall(pid, || {
            let mut ready = 0;
            for fd in fds {
                ready += self.fo_poll(pid, *fd, PollPath::Select)?;
            }
            Ok(ready)
        })
    }

    /// `kevent(2)` — the path the paper found missing its MAC check.
    pub fn sys_kevent(&self, pid: Pid, fd: Fd) -> KResult<i64> {
        self.with_syscall(pid, || self.fo_poll(pid, fd, PollPath::Kevent))
    }

    /// `fo_poll`: file-ops dispatch (`fp->f_ops->fo_poll`).
    fn fo_poll(&self, pid: Pid, fd: Fd, path: PollPath) -> KResult<i64> {
        let active_cred = self.cred_of(pid)?;
        let (so, desc) = self.socket_of(pid, fd)?;
        self.soo_poll(&active_cred, &desc, so, path)
    }

    /// `soo_poll`: socket file-ops implementation — the layer that
    /// performs the MAC check (except on the buggy kevent path).
    fn soo_poll(
        &self,
        active_cred: &Ucred,
        desc: &FileDesc,
        so: SockId,
        path: PollPath,
    ) -> KResult<i64> {
        let skip_check = path == PollPath::Kevent && self.config().bugs.kqueue_skips_mac_poll;
        if !skip_check {
            let label = self.state.lock().socket(so)?.label;
            self.mac_require(
                "mac_socket_check_poll",
                "socket_poll",
                active_cred,
                Value::from(so),
                &MacObject::Socket { label },
                &[],
            )?;
        }
        self.sopoll(active_cred, desc, so, path)
    }

    /// `sopoll`: dispatches through the protocol's `pru_sopoll`
    /// function pointer. The wrong-credential bug lives here: on the
    /// select path it passes the descriptor's cached `file_cred`.
    fn sopoll(
        &self,
        active_cred: &Ucred,
        desc: &FileDesc,
        so: SockId,
        path: PollPath,
    ) -> KResult<i64> {
        let cred = if path == PollPath::Select && self.config().bugs.poll_passes_file_cred {
            // BUG (seeded, §3.5.2): "an error in one dynamic call
            // graph caused the cached file_cred to be passed down
            // instead of active_cred".
            desc.file_cred
        } else {
            *active_cred
        };
        let proto = self.state.lock().socket(so)?.proto;
        let pru = protosw(proto);
        (pru.pru_sopoll)(self, &cred, so)
    }

    /// `sopoll_generic`: the fig. 4 assertion site — "here, we expect
    /// that an access-control check has already been done", with the
    /// credential it was done *with*.
    fn sopoll_generic(&self, active_cred: &Ucred, so: SockId) -> KResult<i64> {
        self.site("socket/poll", &[active_cred.value(), Value::from(so)])?;
        let st = self.state.lock();
        Ok(st.socket(so)?.rx.len() as i64)
    }

    /// UNIX-domain `pru_sopoll`: protocol-specific wrapper that
    /// delegates to the generic implementation (a second dynamic call
    /// graph reaching the same assertion).
    fn sopoll_unix(&self, active_cred: &Ucred, so: SockId) -> KResult<i64> {
        self.sopoll_generic(active_cred, so)
    }

    /// Test/workload helper: make a connected TCP socket pair for
    /// `pid`, returning (client fd, server-side fd).
    pub fn socketpair(&self, pid: Pid) -> KResult<(Fd, Fd)> {
        let srv = self.sys_socket(pid, Proto::Tcp)?;
        self.sys_bind(pid, srv)?;
        self.sys_listen(pid, srv)?;
        let cli = self.sys_socket(pid, Proto::Tcp)?;
        let (srv_so, _) = self.socket_of(pid, srv)?;
        self.sys_connect(pid, cli, srv_so)?;
        let conn = self.sys_accept(pid, srv)?;
        Ok((cli, conn))
    }
}
