//! # tesla-sim-kernel — a FreeBSD-like kernel substrate for TESLA
//!
//! The paper's second case study (§3.5.2) annotates the FreeBSD
//! kernel with 84+ temporal assertions over the MAC framework and
//! inter-process security. This crate is the DESIGN.md substitution
//! for that kernel: a compact but structurally faithful simulator
//! with
//!
//! * processes, immutable credentials (`Ucred` with pointer-like
//!   identity), fork/exec/exit/wait, signals, ptrace, scheduling,
//!   cpusets, POSIX-RT knobs and a procfs-like facility;
//! * a VFS layer over a UFS-like filesystem (directories, regular
//!   files, extended attributes, ACLs stored *in* extended
//!   attributes, and the internal `vn_rdwr(IO_NOMACCHECK)` path of
//!   fig. 7);
//! * a socket layer with the full indirection chain of fig. 3
//!   (`fo_poll → soo_poll → sopoll → pru_sopoll → sopoll_generic`)
//!   behind function pointers;
//! * the MAC framework of [`mac`] with pluggable policies;
//! * syscall dispatch whose entry/exit are the `amd64_syscall`
//!   temporal bound of fig. 9, plus a `trap_pfault` path whose I/O is
//!   bounded separately (§3.5.2);
//! * the paper's seeded bugs behind [`Bugs`] flags: the kqueue path
//!   that misses `mac_socket_check_poll`, the dynamic call graph that
//!   passes the cached `file_cred` instead of `active_cred`, and a
//!   `setuid` that forgets to set `P_SUGID`;
//! * the table-1 assertion sets (96 assertions across MF/MS/MP/M/P)
//!   in [`assertions`], with every assertion site wired into the
//!   corresponding kernel code path.
//!
//! The kernel runs with or without TESLA: a `Kernel` built without an
//! engine is the "Release" configuration; with an engine but no
//! registered assertion sets it is "Infrastructure"; with sets it is
//! the instrumented kernel of fig. 11.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assertions;
pub mod fs;
pub mod mac;
pub mod proc;
pub mod scenario;
pub mod socket;
pub mod state;
pub mod types;

use mac::{MacFramework, MacObject};
use parking_lot::Mutex;
use state::State;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tesla_runtime::{NameId, Tesla};
use tesla_spec::{FieldOp, Value};
use types::{KError, KResult, Pid, Ucred};

pub use assertions::{AssertionSet, SiteMap};
pub use types::{Errno, Fd, SockId, VnodeId};

/// Seeded bugs from §3.5.2, each individually toggleable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bugs {
    /// The kqueue path does not invoke `mac_socket_check_poll` — the
    /// real bug TESLA found ("was being invoked for the select and
    /// poll system calls, but not kqueue").
    pub kqueue_skips_mac_poll: bool,
    /// One dynamic call graph passes the cached `file_cred` down
    /// instead of `active_cred` ("authorisation performed using the
    /// credential that created the associated file or socket").
    pub poll_passes_file_cred: bool,
    /// `setuid` forgets to set `P_SUGID` — violates the `eventually`
    /// side-effect assertion.
    pub setuid_skips_sugid: bool,
}

/// Kernel configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelConfig {
    /// Seeded bugs.
    pub bugs: Bugs,
    /// Simulate the cost of classic debug aids (WITNESS/INVARIANTS):
    /// per-syscall invariant sweeps (fig. 11's "Debug" bars).
    pub debug_checks: bool,
}

/// Pre-interned hook names — the callee-side instrumentation set the
/// TESLA instrumenter would produce for the registered assertions.
struct HookIds {
    amd64_syscall: NameId,
    trap_pfault: NameId,
    vn_rdwr: NameId,
    ufs_readdir: NameId,
    checks: HashMap<&'static str, NameId>,
}

/// The TESLA attachment: engine + hook ids + assertion-site map.
struct TeslaCtx {
    engine: Arc<Tesla>,
    ids: HookIds,
    sites: SiteMap,
}

/// The simulated kernel.
pub struct Kernel {
    tesla: Option<TeslaCtx>,
    mac_fw: Arc<MacFramework>,
    cfg: KernelConfig,
    pub(crate) state: Mutex<State>,
    next_cred_id: AtomicU64,
    /// Debug-mode invariant sweep accumulator (prevents the work
    /// being optimised away).
    debug_sink: AtomicU64,
}

impl Kernel {
    /// Boot a kernel. `tesla` attaches a libtesla engine with the
    /// sites previously registered via
    /// [`assertions::register_sets`]; `None` is the Release
    /// configuration.
    pub fn new(
        cfg: KernelConfig,
        mac_fw: MacFramework,
        tesla: Option<(Arc<Tesla>, SiteMap)>,
    ) -> Kernel {
        let tesla = tesla.map(|(engine, sites)| {
            let mut checks = HashMap::new();
            for name in assertions::ALL_CHECK_FNS {
                checks.insert(*name, engine.intern_fn(name));
            }
            let ids = HookIds {
                amd64_syscall: engine.intern_fn("amd64_syscall"),
                trap_pfault: engine.intern_fn("trap_pfault"),
                vn_rdwr: engine.intern_fn("vn_rdwr"),
                ufs_readdir: engine.intern_fn("ufs_readdir"),
                checks,
            };
            // Field hook names for the P_SUGID assertion.
            engine.intern_struct("proc");
            engine.intern_field("p_flag");
            TeslaCtx { engine, ids, sites }
        });
        let k = Kernel {
            tesla,
            mac_fw: Arc::new(mac_fw),
            cfg,
            state: Mutex::new(State::boot()),
            next_cred_id: AtomicU64::new(100),
            debug_sink: AtomicU64::new(0),
        };
        let init_cred = k.fresh_cred(0, 0, 10);
        k.state.lock().spawn_init(init_cred);
        k
    }

    /// Boot with no MAC policies and no TESLA (pure Release).
    pub fn release(cfg: KernelConfig) -> Kernel {
        Kernel::new(cfg, MacFramework::new(), None)
    }

    /// The configuration.
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// Mint a fresh immutable credential.
    pub fn fresh_cred(&self, uid: u32, gid: u32, label: i32) -> Ucred {
        Ucred {
            id: self.next_cred_id.fetch_add(1, Ordering::Relaxed),
            uid,
            gid,
            label,
        }
    }

    // --------------------------------------------------------------
    // TESLA plumbing
    // --------------------------------------------------------------

    #[inline]
    fn t(&self) -> Option<&TeslaCtx> {
        self.tesla.as_ref()
    }

    /// Run `f` inside the `amd64_syscall` temporal bound. The exit
    /// hook always runs (even when `f` fail-stops) so bound scopes
    /// stay balanced.
    pub(crate) fn with_syscall<T>(&self, pid: Pid, f: impl FnOnce() -> KResult<T>) -> KResult<T> {
        let args = [Value::from(pid)];
        if let Some(t) = self.t() {
            t.engine.fn_entry(t.ids.amd64_syscall, &args)?;
        }
        if self.cfg.debug_checks {
            self.debug_sweep();
        }
        let r = f();
        let exit = match self.t() {
            Some(t) => {
                let rv = match &r {
                    Ok(_) => Value(0),
                    Err(KError::Errno(e)) => Value::from_i64(*e as i64),
                    Err(KError::Tesla(_)) => Value(0),
                };
                t.engine
                    .fn_exit(t.ids.amd64_syscall, &args, rv)
                    .map_err(KError::from)
            }
            None => Ok(()),
        };
        match (r, exit) {
            (Err(e), _) => Err(e),
            (Ok(_), Err(e)) => Err(e),
            (Ok(v), Ok(())) => Ok(v),
        }
    }

    /// Run `f` inside the `trap_pfault` bound (§3.5.2's page-fault
    /// I/O path).
    pub(crate) fn with_pfault<T>(&self, pid: Pid, f: impl FnOnce() -> KResult<T>) -> KResult<T> {
        let args = [Value::from(pid)];
        if let Some(t) = self.t() {
            t.engine.fn_entry(t.ids.trap_pfault, &args)?;
        }
        let r = f();
        let exit = match self.t() {
            Some(t) => t
                .engine
                .fn_exit(t.ids.trap_pfault, &args, Value(0))
                .map_err(KError::from),
            None => Ok(()),
        };
        match (r, exit) {
            (Err(e), _) => Err(e),
            (Ok(_), Err(e)) => Err(e),
            (Ok(v), Ok(())) => Ok(v),
        }
    }

    /// Invoke a `mac_*_check_*` function: the framework hook of §2,
    /// instrumented callee-side. Returns 0 (allow) or an error code.
    pub(crate) fn mac_check(
        &self,
        check_fn: &'static str,
        op: &'static str,
        cred: &Ucred,
        obj_val: Value,
        obj: &MacObject,
        extra: &[Value],
    ) -> KResult<i64> {
        let mut args = [Value(0); 4];
        args[0] = cred.value();
        args[1] = obj_val;
        let mut n = 2;
        for e in extra.iter().take(2) {
            args[n] = *e;
            n += 1;
        }
        let args = &args[..n];
        if let Some(t) = self.t() {
            let id = t.ids.checks[check_fn];
            t.engine.fn_entry(id, args)?;
            let r = self.mac_fw.check(op, cred, obj);
            t.engine.fn_exit(id, args, Value::from_i64(r))?;
            Ok(r)
        } else {
            Ok(self.mac_fw.check(op, cred, obj))
        }
    }

    /// A `p_can*`/`cr_cansee` inter-process wrapper (hooked) around
    /// the optional inner MAC check (also hooked) — the two-layer
    /// authorisation structure FreeBSD uses for inter-process
    /// operations.
    pub(crate) fn p_can(
        &self,
        can_fn: &'static str,
        mac_fn: Option<&'static str>,
        op: &'static str,
        cred: &Ucred,
        obj_val: Value,
        obj: &MacObject,
    ) -> KResult<i64> {
        let args = [cred.value(), obj_val];
        if let Some(t) = self.t() {
            t.engine.fn_entry(t.ids.checks[can_fn], &args)?;
        }
        let r = match mac_fn {
            Some(m) => self.mac_check(m, op, cred, obj_val, obj, &[])?,
            None => self.mac_fw.check(op, cred, obj),
        };
        if let Some(t) = self.t() {
            t.engine
                .fn_exit(t.ids.checks[can_fn], &args, Value::from_i64(r))?;
        }
        Ok(r)
    }

    /// Like [`Kernel::mac_check`] but turns a denial into `EACCES`.
    pub(crate) fn mac_require(
        &self,
        check_fn: &'static str,
        op: &'static str,
        cred: &Ucred,
        obj_val: Value,
        obj: &MacObject,
        extra: &[Value],
    ) -> KResult<()> {
        if self.mac_check(check_fn, op, cred, obj_val, obj, extra)? != 0 {
            Err(types::Errno::EACCES.into())
        } else {
            Ok(())
        }
    }

    /// Reach a TESLA assertion site (every class registered under
    /// `key`; classes whose bound is not active ignore it).
    pub(crate) fn site(&self, key: &str, vals: &[Value]) -> KResult<()> {
        if let Some(t) = self.t() {
            if let Some(classes) = t.sites.get(key) {
                for c in classes {
                    t.engine.assertion_site(*c, vals)?;
                }
            }
        }
        Ok(())
    }

    /// The `vn_rdwr` internal-I/O hook pair (fig. 7).
    pub(crate) fn hook_vn_rdwr<T>(
        &self,
        vp: Value,
        ioflg: u64,
        f: impl FnOnce() -> KResult<T>,
    ) -> KResult<T> {
        let args = [vp, Value(ioflg)];
        if let Some(t) = self.t() {
            t.engine.fn_entry(t.ids.vn_rdwr, &args)?;
        }
        let r = f()?;
        if let Some(t) = self.t() {
            t.engine.fn_exit(t.ids.vn_rdwr, &args, Value(0))?;
        }
        Ok(r)
    }

    /// The `ufs_readdir` hook pair — maintained for the
    /// `incallstack(ufs_readdir)` guard (fig. 7).
    pub(crate) fn hook_ufs_readdir<T>(
        &self,
        vp: Value,
        f: impl FnOnce() -> KResult<T>,
    ) -> KResult<T> {
        let args = [vp];
        if let Some(t) = self.t() {
            t.engine.fn_entry(t.ids.ufs_readdir, &args)?;
        }
        let r = f();
        if let Some(t) = self.t() {
            t.engine.fn_exit(t.ids.ufs_readdir, &args, Value(0))?;
        }
        r
    }

    /// Report a `p_flag` field store to TESLA (the instrumented
    /// `p->p_flag |= P_SUGID` of §3.5.2).
    pub(crate) fn hook_pflag_store(&self, pid: Pid, op: FieldOp, value: u64) -> KResult<()> {
        if let Some(t) = self.t() {
            let s = t.engine.intern_struct("proc");
            let f = t.engine.intern_field("p_flag");
            t.engine
                .field_store(s, f, Value::from(pid), op, Value(value))?;
        }
        Ok(())
    }

    /// A WITNESS/INVARIANTS-style debug sweep: walk kernel tables and
    /// fold a checksum (models the accepted cost of classic dynamic
    /// debugging aids, fig. 11).
    fn debug_sweep(&self) {
        let st = self.state.lock();
        let mut acc: u64 = 0xcbf2_9ce4_8422_2325;
        for p in st.procs.values() {
            acc ^= u64::from(p.pid.0) ^ p.cred.id ^ p.p_flag;
            acc = acc.wrapping_mul(0x100_0000_01b3);
            for fd in p.fds.iter().flatten() {
                acc ^= fd.file_cred.id;
                acc = acc.wrapping_mul(0x100_0000_01b3);
            }
        }
        for v in &st.vnodes {
            acc ^= v.data.len() as u64 ^ u64::from(v.nlink);
            acc = acc.wrapping_mul(0x100_0000_01b3);
        }
        self.debug_sink.fetch_xor(acc, Ordering::Relaxed);
    }

    /// Look up a process's credential.
    pub fn cred_of(&self, pid: Pid) -> KResult<Ucred> {
        let st = self.state.lock();
        st.procs
            .get(&pid)
            .map(|p| p.cred)
            .ok_or_else(|| KError::from(types::Errno::ESRCH))
    }

    /// The init process.
    pub fn init_pid(&self) -> Pid {
        Pid(1)
    }

    /// Direct state access for tests and workload setup (e.g. forging
    /// credentials). Not part of the syscall surface.
    pub fn state_for_tests(&self) -> parking_lot::MutexGuard<'_, State> {
        self.state.lock()
    }
}
