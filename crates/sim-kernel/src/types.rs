//! Core kernel types: identifiers, credentials, error numbers.

use tesla_spec::Value;

/// Process id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

/// File-descriptor number within a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fd(pub u32);

/// Vnode id (the `struct vnode *` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct VnodeId(pub u32);

/// Socket id (the `struct socket *` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SockId(pub u32);

impl From<Pid> for Value {
    fn from(p: Pid) -> Value {
        Value(u64::from(p.0))
    }
}

impl From<VnodeId> for Value {
    fn from(v: VnodeId) -> Value {
        Value(u64::from(v.0))
    }
}

impl From<SockId> for Value {
    fn from(s: SockId) -> Value {
        Value(u64::from(s.0))
    }
}

/// A credential (`struct ucred`). Credentials are immutable and
/// identified by `id` — the pointer-identity analogue that TESLA
/// automata bind: two creds with the same uid but different ids are
/// *different* automaton bindings, which is how the wrong-credential
/// bug of §3.5.2 is detectable at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ucred {
    /// Identity (pointer analogue).
    pub id: u64,
    /// Effective uid.
    pub uid: u32,
    /// Effective gid.
    pub gid: u32,
    /// MAC integrity label (higher = more privileged).
    pub label: i32,
}

impl Ucred {
    /// The credential's identity as a TESLA value.
    pub fn value(&self) -> Value {
        Value(self.id)
    }

    /// Is this root?
    pub fn is_root(&self) -> bool {
        self.uid == 0
    }
}

/// UNIX error numbers (the subset the simulator uses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Errno {
    EPERM = 1,
    ENOENT = 2,
    ESRCH = 3,
    EBADF = 9,
    EACCES = 13,
    EEXIST = 17,
    ENOTDIR = 20,
    EISDIR = 21,
    EINVAL = 22,
    EMFILE = 24,
    ENOTSOCK = 38,
    ENOTCONN = 57,
}

impl std::fmt::Display for Errno {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Kernel operation failure: an errno, or a TESLA violation that
/// fail-stopped the "kernel".
#[derive(Debug, Clone, PartialEq)]
pub enum KError {
    /// UNIX error.
    Errno(Errno),
    /// A temporal assertion fired.
    Tesla(tesla_runtime::Violation),
}

impl From<Errno> for KError {
    fn from(e: Errno) -> KError {
        KError::Errno(e)
    }
}

impl From<tesla_runtime::Violation> for KError {
    fn from(v: tesla_runtime::Violation) -> KError {
        KError::Tesla(v)
    }
}

impl std::fmt::Display for KError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KError::Errno(e) => write!(f, "{e}"),
            KError::Tesla(v) => write!(f, "{v}"),
        }
    }
}

impl std::error::Error for KError {}

/// Kernel result type.
pub type KResult<T> = Result<T, KError>;

/// `open(2)` flags.
pub mod oflags {
    /// Read.
    pub const O_RDONLY: u64 = 0x0;
    /// Write.
    pub const O_WRONLY: u64 = 0x1;
    /// Read/write.
    pub const O_RDWR: u64 = 0x2;
    /// Create.
    pub const O_CREAT: u64 = 0x200;
}

/// I/O flags for the internal `vn_rdwr` path (fig. 7).
pub mod ioflags {
    /// Skip MAC checks — internal file-system I/O.
    pub const IO_NOMACCHECK: u64 = 0x80;
}

/// `p_flag` process flags.
pub mod pflags {
    /// Set-uid privilege tainting flag; must be set whenever the
    /// process credential changes (the §3.5.2 `eventually`
    /// assertion).
    pub const P_SUGID: u64 = 0x100;
}
