//! Timeline adapter: drive the simulated [`Kernel`] from declarative
//! scenario steps (`tesla scenario`, runner `sim-kernel`).
//!
//! Steps name kernel objects symbolically — processes and file
//! descriptors are bound to string handles when created (`as:`) and
//! referred to by handle afterwards — so timelines stay readable and
//! the fuzzer can permute them without tracking numeric ids:
//!
//! | op           | arguments                                                    |
//! |--------------|--------------------------------------------------------------|
//! | `mkdir`      | `path` (str), `label` (int, default 10)                      |
//! | `mkfile`     | `path`, `data` (str, default ""), `label` (default 10), `exec` (bool) |
//! | `fork`       | `pid` (handle, default `init`), `as` (new handle)            |
//! | `open`       | `pid`, `path`, `write`/`creat` (bools), `as` (fd handle)     |
//! | `close`      | `pid`, `fd` (handle)                                         |
//! | `read`       | `pid`, `fd`, `len` (int, default 1)                          |
//! | `write`      | `pid`, `fd`, `data` (str, default "x")                       |
//! | `stat`       | `pid`, `path`                                                |
//! | `exec`       | `pid`, `path`                                                |
//! | `socketpair` | `pid`, `cli` / `srv` (fd handles, default `cli`/`srv`)       |
//! | `poll`       | `pid`, `fd`                                                  |
//! | `select`     | `pid`, `fd`                                                  |
//! | `kevent`     | `pid`, `fd`                                                  |
//! | `send`       | `pid`, `fd`, `data`                                          |
//! | `recv`       | `pid`, `fd`                                                  |
//! | `setuid`     | `pid`, `uid` (int, default 1001)                             |
//! | `exit`       | `pid`, `code` (int, default 0)                               |
//! | `wait`       | `pid`, `child` (pid handle)                                  |
//!
//! A syscall returning an errno is an *outcome* recorded as a note —
//! the MAC framework denying an operation is exactly what many
//! scenarios assert — while an unknown op, ill-typed argument or
//! unbound handle is a step error that marks the scenario malformed.

use crate::types::{oflags, Fd, KError, Pid};
use crate::{assertions, Bugs, Kernel, KernelConfig, SiteMap};
use std::collections::BTreeMap;
use std::sync::Arc;
use tesla_runtime::scenario::Step;
use tesla_runtime::Tesla;

/// Scenario-driven kernel: the simulated kernel plus the symbolic
/// handle registries a timeline binds.
pub struct KernelScenario {
    kernel: Kernel,
    pids: BTreeMap<String, Pid>,
    fds: BTreeMap<String, Fd>,
    /// Human-readable outcome log, one line per observable effect.
    pub notes: Vec<String>,
}

impl KernelScenario {
    /// Boot a kernel with the given seeded bugs, attached to `tesla`
    /// (with its registered assertion-site map) when instrumented.
    /// The handle `init` is pre-bound to PID 1.
    pub fn new(bugs: Bugs, debug_checks: bool, tesla: Option<(Arc<Tesla>, SiteMap)>) -> KernelScenario {
        let kernel = Kernel::new(
            KernelConfig { bugs, debug_checks },
            crate::mac::MacFramework::new(),
            tesla,
        );
        let mut pids = BTreeMap::new();
        pids.insert("init".to_string(), kernel.init_pid());
        KernelScenario {
            kernel,
            pids,
            fds: BTreeMap::new(),
            notes: Vec::new(),
        }
    }

    /// Register the named assertion sets on `tesla` and return the
    /// site map [`KernelScenario::new`] wants — a convenience wrapper
    /// over [`assertions::register_sets`] for scenario loaders that
    /// configure sets by label (`mf`, `ms`, `mp`, `m`, `p`, `infra`,
    /// `all`).
    ///
    /// # Errors
    ///
    /// An unknown label, or a registration failure.
    pub fn register_sets_by_label(
        tesla: &Arc<Tesla>,
        labels: &[&str],
    ) -> Result<SiteMap, String> {
        let mut sets = Vec::new();
        for l in labels {
            sets.push(match *l {
                "mf" => assertions::AssertionSet::MF,
                "ms" => assertions::AssertionSet::MS,
                "mp" => assertions::AssertionSet::MP,
                "m" => assertions::AssertionSet::M,
                "p" => assertions::AssertionSet::P,
                "infra" => assertions::AssertionSet::Infra,
                "all" => assertions::AssertionSet::All,
                other => return Err(format!("unknown assertion set `{other}`")),
            });
        }
        if sets.is_empty() {
            sets.push(assertions::AssertionSet::All);
        }
        Ok(assertions::register_sets(tesla, &sets)?.sites)
    }

    fn pid(&self, step: &Step) -> Result<Pid, String> {
        let name = step.str_or("pid", "init")?;
        self.pids
            .get(name)
            .copied()
            .ok_or_else(|| format!("op `{}`: unbound pid handle `{name}`", step.op))
    }

    fn fd(&self, step: &Step, key: &str) -> Result<Fd, String> {
        let name = step.str_or(key, "fd")?;
        self.fds
            .get(name)
            .copied()
            .ok_or_else(|| format!("op `{}`: unbound fd handle `{name}`", step.op))
    }

    fn note<T>(&mut self, op: &str, r: Result<T, KError>, ok: impl FnOnce(&T) -> String) {
        match r {
            Ok(v) => self.notes.push(format!("{op}: {}", ok(&v))),
            Err(e) => self.notes.push(format!("{op}: error {e}")),
        }
    }

    /// Execute one timeline step.
    ///
    /// # Errors
    ///
    /// A description of the first malformed argument, unknown op or
    /// unbound handle.
    pub fn step(&mut self, step: &Step) -> Result<(), String> {
        match step.op.as_str() {
            "mkdir" => {
                let path = step.str_arg("path")?.to_string();
                let label = step.int_or("label", 10)? as i32;
                let r = self.kernel.mkdir_p(&path, label);
                self.note("mkdir", r, |v| format!("vnode {v:?}"));
            }
            "mkfile" => {
                let path = step.str_arg("path")?.to_string();
                let data = step.str_or("data", "")?.as_bytes().to_vec();
                let label = step.int_or("label", 10)? as i32;
                let exec = step.bool_or("exec", false)?;
                let r = self.kernel.mkfile(&path, &data, label, exec);
                self.note("mkfile", r, |v| format!("vnode {v:?}"));
            }
            "fork" => {
                let pid = self.pid(step)?;
                let name = step.str_arg("as")?.to_string();
                match self.kernel.sys_fork(pid) {
                    Ok(child) => {
                        self.notes.push(format!("fork: {name} = pid {}", child.0));
                        self.pids.insert(name, child);
                    }
                    Err(e) => self.notes.push(format!("fork: error {e}")),
                }
            }
            "open" => {
                let pid = self.pid(step)?;
                let path = step.str_arg("path")?.to_string();
                let mut flags = oflags::O_RDONLY;
                if step.bool_or("write", false)? {
                    flags |= oflags::O_WRONLY;
                }
                if step.bool_or("creat", false)? {
                    flags |= oflags::O_CREAT;
                }
                let name = step.str_or("as", "fd")?.to_string();
                match self.kernel.sys_open(pid, &path, flags) {
                    Ok(fd) => {
                        self.notes.push(format!("open: {name} = fd {}", fd.0));
                        self.fds.insert(name, fd);
                    }
                    Err(e) => self.notes.push(format!("open: error {e}")),
                }
            }
            "close" => {
                let pid = self.pid(step)?;
                let fd = self.fd(step, "fd")?;
                let r = self.kernel.sys_close(pid, fd);
                self.note("close", r, |_| "ok".to_string());
            }
            "read" => {
                let pid = self.pid(step)?;
                let fd = self.fd(step, "fd")?;
                let len = step.int_or("len", 1)?.clamp(0, 1 << 20) as usize;
                let r = self.kernel.sys_read(pid, fd, len);
                self.note("read", r, |v| format!("{} bytes", v.len()));
            }
            "write" => {
                let pid = self.pid(step)?;
                let fd = self.fd(step, "fd")?;
                let data = step.str_or("data", "x")?.as_bytes().to_vec();
                let r = self.kernel.sys_write(pid, fd, &data);
                self.note("write", r, |v| format!("{v} bytes"));
            }
            "stat" => {
                let pid = self.pid(step)?;
                let path = step.str_arg("path")?.to_string();
                let r = self.kernel.sys_stat(pid, &path);
                self.note("stat", r, |v| format!("{v}"));
            }
            "exec" => {
                let pid = self.pid(step)?;
                let path = step.str_arg("path")?.to_string();
                let r = self.kernel.sys_exec(pid, &path);
                self.note("exec", r, |_| "ok".to_string());
            }
            "socketpair" => {
                let pid = self.pid(step)?;
                let cli = step.str_or("cli", "cli")?.to_string();
                let srv = step.str_or("srv", "srv")?.to_string();
                match self.kernel.socketpair(pid) {
                    Ok((c, s)) => {
                        self.notes
                            .push(format!("socketpair: {cli} = fd {}, {srv} = fd {}", c.0, s.0));
                        self.fds.insert(cli, c);
                        self.fds.insert(srv, s);
                    }
                    Err(e) => self.notes.push(format!("socketpair: error {e}")),
                }
            }
            "poll" => {
                let pid = self.pid(step)?;
                let fd = self.fd(step, "fd")?;
                let r = self.kernel.sys_poll(pid, fd);
                self.note("poll", r, |v| format!("{v}"));
            }
            "select" => {
                let pid = self.pid(step)?;
                let fd = self.fd(step, "fd")?;
                let r = self.kernel.sys_select(pid, &[fd]);
                self.note("select", r, |v| format!("{v}"));
            }
            "kevent" => {
                let pid = self.pid(step)?;
                let fd = self.fd(step, "fd")?;
                let r = self.kernel.sys_kevent(pid, fd);
                self.note("kevent", r, |v| format!("{v}"));
            }
            "send" => {
                let pid = self.pid(step)?;
                let fd = self.fd(step, "fd")?;
                let data = step.str_or("data", "x")?.as_bytes().to_vec();
                let r = self.kernel.sys_send(pid, fd, &data);
                self.note("send", r, |v| format!("{v}"));
            }
            "recv" => {
                let pid = self.pid(step)?;
                let fd = self.fd(step, "fd")?;
                let r = self.kernel.sys_recv(pid, fd);
                self.note("recv", r, |v| match v {
                    Some(d) => format!("{} bytes", d.len()),
                    None => "empty".to_string(),
                });
            }
            "setuid" => {
                let pid = self.pid(step)?;
                let uid = step.int_or("uid", 1001)?.clamp(0, u32::MAX as i64) as u32;
                let r = self.kernel.sys_setuid(pid, uid);
                self.note("setuid", r, |v| format!("{v}"));
            }
            "exit" => {
                let pid = self.pid(step)?;
                let code = step.int_or("code", 0)?;
                let r = self.kernel.sys_exit(pid, code);
                self.note("exit", r, |_| "ok".to_string());
            }
            "wait" => {
                let pid = self.pid(step)?;
                let child_name = step.str_arg("child")?;
                let child = self
                    .pids
                    .get(child_name)
                    .copied()
                    .ok_or_else(|| format!("op `wait`: unbound pid handle `{child_name}`"))?;
                let r = self.kernel.sys_wait(pid, child);
                self.note("wait", r, |v| format!("status {v}"));
            }
            other => return Err(format!("sim-kernel runner: unknown op `{other}`")),
        }
        Ok(())
    }
}
