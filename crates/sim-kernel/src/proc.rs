//! Process lifecycle, inter-process operations and the facilities the
//! paper's 37 "P" assertions cover: signals, ptrace, wait,
//! scheduling, a procfs-like debug interface (19 assertions;
//! "a deprecated facility disabled by default"), CPUSET (2) and
//! POSIX real-time scheduling (5).
//!
//! Inter-process authorisation is layered as in FreeBSD: syscalls
//! call `p_cansee`/`p_cansignal`/`p_candebug`/`p_cansched`/
//! `p_canwait`/`cr_cansee`, which internally invoke the corresponding
//! `mac_proc_check_*` MAC hook. The MAC assertion set (MP) asserts
//! the inner checks; the inter-process set (P) asserts the `p_can*`
//! wrappers — two views of the same dynamic call graph.

use crate::mac::MacObject;
use crate::state::{Proc, ProcState};
use crate::types::{pflags, Errno, KResult, Pid};
use crate::Kernel;
use tesla_spec::{FieldOp, Value};

/// The procfs-like operations (19, matching the paper's count of
/// unexercised procfs assertions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum ProcfsOp {
    ReadMem,
    WriteMem,
    ReadRegs,
    WriteRegs,
    ReadDbRegs,
    ReadStatus,
    ReadMap,
    ReadCmdline,
    ReadEnv,
    ReadFile,
    WriteFile,
    Lookup,
    GetAttr,
    Ioctl,
    CtlAttach,
    CtlDetach,
    CtlStep,
    Note,
    Signal,
}

impl ProcfsOp {
    /// All ops, in a stable order.
    pub const ALL: [ProcfsOp; 19] = [
        ProcfsOp::ReadMem,
        ProcfsOp::WriteMem,
        ProcfsOp::ReadRegs,
        ProcfsOp::WriteRegs,
        ProcfsOp::ReadDbRegs,
        ProcfsOp::ReadStatus,
        ProcfsOp::ReadMap,
        ProcfsOp::ReadCmdline,
        ProcfsOp::ReadEnv,
        ProcfsOp::ReadFile,
        ProcfsOp::WriteFile,
        ProcfsOp::Lookup,
        ProcfsOp::GetAttr,
        ProcfsOp::Ioctl,
        ProcfsOp::CtlAttach,
        ProcfsOp::CtlDetach,
        ProcfsOp::CtlStep,
        ProcfsOp::Note,
        ProcfsOp::Signal,
    ];

    /// The assertion-site key for this op.
    pub fn site_key(self) -> &'static str {
        match self {
            ProcfsOp::ReadMem => "procfs/read_mem",
            ProcfsOp::WriteMem => "procfs/write_mem",
            ProcfsOp::ReadRegs => "procfs/read_regs",
            ProcfsOp::WriteRegs => "procfs/write_regs",
            ProcfsOp::ReadDbRegs => "procfs/read_dbregs",
            ProcfsOp::ReadStatus => "procfs/read_status",
            ProcfsOp::ReadMap => "procfs/read_map",
            ProcfsOp::ReadCmdline => "procfs/read_cmdline",
            ProcfsOp::ReadEnv => "procfs/read_env",
            ProcfsOp::ReadFile => "procfs/read_file",
            ProcfsOp::WriteFile => "procfs/write_file",
            ProcfsOp::Lookup => "procfs/lookup",
            ProcfsOp::GetAttr => "procfs/getattr",
            ProcfsOp::Ioctl => "procfs/ioctl",
            ProcfsOp::CtlAttach => "procfs/ctl_attach",
            ProcfsOp::CtlDetach => "procfs/ctl_detach",
            ProcfsOp::CtlStep => "procfs/ctl_step",
            ProcfsOp::Note => "procfs/note",
            ProcfsOp::Signal => "procfs/signal",
        }
    }

    /// Which interprocess check authorises it.
    pub fn check_fn(self) -> &'static str {
        match self {
            ProcfsOp::ReadStatus
            | ProcfsOp::ReadMap
            | ProcfsOp::ReadCmdline
            | ProcfsOp::ReadEnv
            | ProcfsOp::Lookup
            | ProcfsOp::GetAttr
            | ProcfsOp::ReadFile => "p_cansee",
            ProcfsOp::Signal | ProcfsOp::Note => "p_cansignal",
            _ => "p_candebug",
        }
    }
}

/// One inter-process operation's authorisation recipe.
struct IpOp {
    /// The `p_can*` wrapper.
    can_fn: &'static str,
    /// The inner `mac_proc_check_*` hook, if any.
    mac_fn: Option<&'static str>,
    /// Policy op string.
    op: &'static str,
    /// MAC-set assertion site.
    mp_site: Option<&'static str>,
    /// Inter-process-set assertion site.
    p_site: Option<&'static str>,
}

impl Kernel {
    fn target_obj(&self, target: Pid) -> KResult<(MacObject, Value)> {
        let st = self.state.lock();
        let p = st.proc_ref(target)?;
        Ok((
            MacObject::Proc {
                label: p.cred.label,
                uid: p.cred.uid,
            },
            Value::from(target),
        ))
    }

    /// Generic inter-process op: `p_can*` wrapper (hooked) around the
    /// MAC check (hooked), then the assertion sites, then the effect.
    fn proc_op<T>(
        &self,
        pid: Pid,
        target: Pid,
        recipe: &IpOp,
        effect: impl FnOnce(&mut crate::state::State, &mut Proc) -> KResult<T>,
    ) -> KResult<T> {
        self.with_syscall(pid, || self.proc_op_inner(pid, target, recipe, effect))
    }

    /// The body of [`Kernel::proc_op`], usable when already inside a
    /// syscall bound (process-group loops).
    fn proc_op_inner<T>(
        &self,
        pid: Pid,
        target: Pid,
        recipe: &IpOp,
        effect: impl FnOnce(&mut crate::state::State, &mut Proc) -> KResult<T>,
    ) -> KResult<T> {
        let cred = self.cred_of(pid)?;
        let (obj, tval) = self.target_obj(target)?;
        let r = self.p_can(recipe.can_fn, recipe.mac_fn, recipe.op, &cred, tval, &obj)?;
        if r != 0 {
            return Err(Errno::EACCES.into());
        }
        if let Some(site) = recipe.mp_site {
            self.site(site, &[tval])?;
        }
        if let Some(site) = recipe.p_site {
            self.site(site, &[tval])?;
        }
        let mut st = self.state.lock();
        // Split-borrow via remove/insert so effects may inspect the
        // rest of the process table.
        let mut p = st.procs.remove(&target).ok_or(Errno::ESRCH)?;
        let r = effect(&mut st, &mut p);
        st.procs.insert(target, p);
        r
    }

    /// `fork(2)`: child inherits descriptors (with their cached
    /// `file_cred`!) and gets a *copy* of the credential — a new cred
    /// identity, as `crcopy` makes a new `struct ucred`.
    pub fn sys_fork(&self, pid: Pid) -> KResult<Pid> {
        self.with_syscall(pid, || {
            let parent_cred = self.cred_of(pid)?;
            let child_cred = self.fresh_cred(parent_cred.uid, parent_cred.gid, parent_cred.label);
            let mut st = self.state.lock();
            let parent = st.proc_ref(pid)?.clone();
            let child_pid = Pid(st.next_pid);
            st.next_pid += 1;
            st.procs.insert(
                child_pid,
                Proc {
                    pid: child_pid,
                    parent: pid,
                    cred: child_cred,
                    p_flag: 0,
                    fds: parent.fds.clone(),
                    state: ProcState::Running,
                    siglist: Vec::new(),
                    cpuset: parent.cpuset,
                    rtprio: parent.rtprio,
                    nice: parent.nice,
                    pgid: parent.pgid,
                    ktrace: false,
                    traced_by: None,
                },
            );
            Ok(child_pid)
        })
    }

    /// `exit(2)`.
    pub fn sys_exit(&self, pid: Pid, status: i64) -> KResult<()> {
        self.with_syscall(pid, || {
            let mut st = self.state.lock();
            let p = st.proc_mut(pid)?;
            p.state = ProcState::Zombie(status);
            p.fds.clear();
            Ok(())
        })
    }

    /// `wait4(2)`: reap a zombie child.
    pub fn sys_wait(&self, pid: Pid, child: Pid) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_canwait",
            mac_fn: Some("mac_proc_check_wait"),
            op: "proc_wait",
            mp_site: Some("proc/wait"),
            p_site: Some("ip/wait"),
        };
        let status = self.proc_op(pid, child, &OP, move |_, p| {
            if p.parent != pid {
                return Err(Errno::EPERM.into());
            }
            match p.state {
                ProcState::Zombie(status) => Ok(status),
                ProcState::Running => Err(Errno::EINVAL.into()),
            }
        })?;
        self.state.lock().procs.remove(&child);
        Ok(status)
    }

    /// `kill(2)`.
    pub fn sys_kill(&self, pid: Pid, target: Pid, sig: i32) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_cansignal",
            mac_fn: Some("mac_proc_check_signal"),
            op: "proc_signal",
            mp_site: Some("proc/signal"),
            p_site: Some("ip/signal"),
        };
        self.proc_op(pid, target, &OP, move |_, p| {
            p.siglist.push(sig);
            Ok(0)
        })
    }

    /// `killpg(2)`: signal every member of a process group — one
    /// check (and one assertion-site visit) per member.
    pub fn sys_killpg(&self, pid: Pid, pgid: u32, sig: i32) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_cansignal",
            mac_fn: Some("mac_proc_check_signal"),
            op: "proc_signal",
            mp_site: None,
            p_site: Some("ip/signal_pgrp"),
        };
        self.with_syscall(pid, || {
            let members: Vec<Pid> = {
                let st = self.state.lock();
                st.procs
                    .values()
                    .filter(|p| p.pgid == pgid)
                    .map(|p| p.pid)
                    .collect()
            };
            let mut n = 0;
            for m in members {
                self.proc_op_inner(pid, m, &OP, |_, p| {
                    p.siglist.push(sig);
                    Ok(0)
                })?;
                n += 1;
            }
            Ok(n)
        })
    }

    /// `ptrace(PT_ATTACH)`.
    pub fn sys_ptrace_attach(&self, pid: Pid, target: Pid) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_candebug",
            mac_fn: Some("mac_proc_check_debug"),
            op: "proc_debug",
            mp_site: Some("proc/debug"),
            p_site: Some("ip/debug"),
        };
        self.proc_op(pid, target, &OP, move |_, p| {
            p.traced_by = Some(pid);
            Ok(0)
        })
    }

    /// `getpriority(2)` — visibility check.
    pub fn sys_getpriority(&self, pid: Pid, target: Pid) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_cansee",
            mac_fn: Some("mac_proc_check_see"),
            op: "proc_see",
            mp_site: Some("proc/see"),
            p_site: Some("ip/see"),
        };
        self.proc_op(pid, target, &OP, |_, p| Ok(i64::from(p.nice)))
    }

    /// `setpriority(2)` — scheduling check.
    pub fn sys_setpriority(&self, pid: Pid, target: Pid, nice: i32) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_cansched",
            mac_fn: Some("mac_proc_check_sched"),
            op: "proc_sched",
            mp_site: Some("proc/sched"),
            p_site: Some("ip/sched"),
        };
        self.proc_op(pid, target, &OP, move |_, p| {
            p.nice = nice;
            Ok(0)
        })
    }

    /// `ktrace(2)`.
    pub fn sys_ktrace(&self, pid: Pid, target: Pid) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_candebug",
            mac_fn: Some("mac_proc_check_ktrace"),
            op: "proc_ktrace",
            mp_site: Some("proc/ktrace"),
            p_site: Some("ip/ktrace"),
        };
        self.proc_op(pid, target, &OP, |_, p| {
            p.ktrace = true;
            Ok(0)
        })
    }

    /// `getpgid(2)`.
    pub fn sys_getpgid(&self, pid: Pid, target: Pid) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_cansee",
            mac_fn: None,
            op: "proc_see",
            mp_site: None,
            p_site: Some("ip/getpgid"),
        };
        self.proc_op(pid, target, &OP, |_, p| Ok(i64::from(p.pgid)))
    }

    /// `setpgid(2)`.
    pub fn sys_setpgid(&self, pid: Pid, target: Pid, pgid: u32) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_cansee",
            mac_fn: Some("mac_proc_check_setpgid"),
            op: "proc_setpgid",
            mp_site: Some("proc/setpgid"),
            p_site: Some("ip/setpgid"),
        };
        self.proc_op(pid, target, &OP, move |_, p| {
            p.pgid = pgid;
            Ok(0)
        })
    }

    /// `procctl(PROC_REAP_ACQUIRE)`-style reaper acquire.
    pub fn sys_reap_acquire(&self, pid: Pid, target: Pid) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_cansee",
            mac_fn: None,
            op: "proc_see",
            mp_site: None,
            p_site: Some("ip/reap"),
        };
        self.proc_op(pid, target, &OP, |_, _| Ok(0))
    }

    /// Credential-visibility query (`cr_cansee` path).
    pub fn sys_cred_visible(&self, pid: Pid, target: Pid) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "cr_cansee",
            mac_fn: None,
            op: "cansee",
            mp_site: None,
            p_site: Some("ip/cred_visible"),
        };
        self.proc_op(pid, target, &OP, |_, p| Ok(i64::from(p.cred.uid)))
    }

    /// `setuid(2)`: swaps in a fresh credential; the `eventually`
    /// assertion of §3.5.2 requires `P_SUGID` to be set before the
    /// syscall returns. The seeded bug skips it.
    pub fn sys_setuid(&self, pid: Pid, uid: u32) -> KResult<i64> {
        self.with_syscall(pid, || {
            let old = self.cred_of(pid)?;
            if !old.is_root() && old.uid != uid {
                return Err(Errno::EPERM.into());
            }
            self.mac_require(
                "mac_proc_check_setuid",
                "proc_setuid",
                &old,
                Value::from(pid),
                &MacObject::Proc {
                    label: old.label,
                    uid: old.uid,
                },
                &[Value(u64::from(uid))],
            )?;
            // The assertion site: from here, P_SUGID must eventually
            // be set within this syscall.
            self.site("proc/sugid", &[Value::from(pid)])?;
            let newcred = self.fresh_cred(uid, old.gid, old.label);
            {
                let mut st = self.state.lock();
                st.proc_mut(pid)?.cred = newcred;
            }
            if !self.config().bugs.setuid_skips_sugid {
                {
                    let mut st = self.state.lock();
                    let p = st.proc_mut(pid)?;
                    p.p_flag |= pflags::P_SUGID;
                }
                self.hook_pflag_store(pid, FieldOp::OrAssign, pflags::P_SUGID)?;
            }
            Ok(0)
        })
    }

    // ----------------------------------------------------------------
    // CPUSET (2 assertions; post-test-suite facility, §3.5.2)
    // ----------------------------------------------------------------

    /// `cpuset_getaffinity(2)`.
    pub fn sys_cpuset_get(&self, pid: Pid, target: Pid) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_cansched",
            mac_fn: None,
            op: "proc_sched",
            mp_site: None,
            p_site: Some("cpuset/get"),
        };
        self.proc_op(pid, target, &OP, |_, p| Ok(p.cpuset as i64))
    }

    /// `cpuset_setaffinity(2)`.
    pub fn sys_cpuset_set(&self, pid: Pid, target: Pid, mask: u64) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_cansched",
            mac_fn: None,
            op: "proc_sched",
            mp_site: None,
            p_site: Some("cpuset/set"),
        };
        self.proc_op(pid, target, &OP, move |_, p| {
            p.cpuset = mask;
            Ok(0)
        })
    }

    // ----------------------------------------------------------------
    // POSIX real-time scheduling (5 assertions)
    // ----------------------------------------------------------------

    /// `rtprio(RTP_LOOKUP)`.
    pub fn sys_rtprio_get(&self, pid: Pid, target: Pid) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_cansee",
            mac_fn: None,
            op: "proc_see",
            mp_site: None,
            p_site: Some("rt/rtprio_get"),
        };
        self.proc_op(pid, target, &OP, |_, p| Ok(i64::from(p.rtprio)))
    }

    /// `rtprio(RTP_SET)`.
    pub fn sys_rtprio_set(&self, pid: Pid, target: Pid, prio: i32) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_cansched",
            mac_fn: None,
            op: "proc_sched",
            mp_site: None,
            p_site: Some("rt/rtprio_set"),
        };
        self.proc_op(pid, target, &OP, move |_, p| {
            p.rtprio = prio;
            Ok(0)
        })
    }

    /// `sched_getparam(2)`.
    pub fn sys_sched_getparam(&self, pid: Pid, target: Pid) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_cansee",
            mac_fn: None,
            op: "proc_see",
            mp_site: None,
            p_site: Some("rt/sched_getparam"),
        };
        self.proc_op(pid, target, &OP, |_, p| Ok(i64::from(p.rtprio)))
    }

    /// `sched_setparam(2)`.
    pub fn sys_sched_setparam(&self, pid: Pid, target: Pid, prio: i32) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_cansched",
            mac_fn: None,
            op: "proc_sched",
            mp_site: None,
            p_site: Some("rt/sched_setparam"),
        };
        self.proc_op(pid, target, &OP, move |_, p| {
            p.rtprio = prio;
            Ok(0)
        })
    }

    /// `sched_setscheduler(2)`.
    pub fn sys_sched_setscheduler(&self, pid: Pid, target: Pid, policy: i32) -> KResult<i64> {
        const OP: IpOp = IpOp {
            can_fn: "p_cansched",
            mac_fn: None,
            op: "proc_sched",
            mp_site: None,
            p_site: Some("rt/sched_setscheduler"),
        };
        self.proc_op(pid, target, &OP, move |_, p| {
            p.rtprio = policy;
            Ok(0)
        })
    }

    // ----------------------------------------------------------------
    // procfs (19 assertions; "deprecated facility disabled by
    // default" — present, callable, unexercised by the standard
    // test-suite workload)
    // ----------------------------------------------------------------

    /// One procfs-like operation against `target`.
    pub fn sys_procfs(&self, pid: Pid, target: Pid, op: ProcfsOp) -> KResult<Vec<u8>> {
        let recipe = IpOp {
            can_fn: op.check_fn(),
            mac_fn: None,
            op: "proc_debug",
            mp_site: None,
            p_site: Some(op.site_key()),
        };
        self.proc_op(pid, target, &recipe, move |_, p| {
            // Minimal but real effects per op family.
            Ok(match op {
                ProcfsOp::ReadStatus => format!("pid {} uid {}", p.pid.0, p.cred.uid).into_bytes(),
                ProcfsOp::ReadCmdline => b"init".to_vec(),
                ProcfsOp::ReadEnv => b"PATH=/bin".to_vec(),
                ProcfsOp::ReadMem | ProcfsOp::ReadFile | ProcfsOp::ReadMap => vec![0u8; 16],
                ProcfsOp::ReadRegs | ProcfsOp::ReadDbRegs => vec![0u8; 8],
                ProcfsOp::Signal => {
                    p.siglist.push(19);
                    Vec::new()
                }
                ProcfsOp::CtlAttach => {
                    p.traced_by = Some(pid);
                    Vec::new()
                }
                ProcfsOp::CtlDetach => {
                    p.traced_by = None;
                    Vec::new()
                }
                _ => Vec::new(),
            })
        })
    }
}
