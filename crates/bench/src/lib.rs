//! # tesla-bench — shared harness for the evaluation reproduction
//!
//! Builders for the kernel/GUI configurations every table and figure
//! of §5 compares, used by both the criterion benches (`benches/`)
//! and the `repro` binary that prints paper-style rows.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use tesla::prelude::*;
use tesla::sim_gui::appkit::GuiBugs;
use tesla::sim_gui::{GuiApp, GuiMode};
use tesla::sim_kernel::assertions::{register_sets_in, AssertionSet};
use tesla::sim_kernel::mac::MacFramework;
use tesla::sim_kernel::{Bugs, Kernel, KernelConfig};

/// The kernel configurations of fig. 11 (and fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelCfg {
    /// Plain release kernel, no TESLA.
    Release,
    /// WITNESS/INVARIANTS-style debug aids, no TESLA.
    Debug,
    /// TESLA infrastructure + test assertions only.
    Infrastructure,
    /// MAC process assertions.
    MP,
    /// MAC process + socket assertions.
    MpMs,
    /// MAC process + socket + filesystem assertions.
    MpMsMf,
    /// All MAC assertions.
    M,
    /// Everything (96).
    All,
    /// Everything plus debug aids.
    AllDebug,
}

impl KernelCfg {
    /// All configurations in fig. 11a's bar order.
    pub const ALL: [KernelCfg; 9] = [
        KernelCfg::Release,
        KernelCfg::Debug,
        KernelCfg::Infrastructure,
        KernelCfg::MP,
        KernelCfg::MpMs,
        KernelCfg::MpMsMf,
        KernelCfg::M,
        KernelCfg::All,
        KernelCfg::AllDebug,
    ];

    /// Paper-style label.
    pub fn label(self) -> &'static str {
        match self {
            KernelCfg::Release => "Release",
            KernelCfg::Debug => "Debug",
            KernelCfg::Infrastructure => "Infrastructure",
            KernelCfg::MP => "MP",
            KernelCfg::MpMs => "MP+MS",
            KernelCfg::MpMsMf => "MP+MS+MF",
            KernelCfg::M => "M",
            KernelCfg::All => "All",
            KernelCfg::AllDebug => "All (Debug)",
        }
    }

    /// The assertion sets this configuration registers.
    pub fn sets(self) -> Vec<AssertionSet> {
        match self {
            KernelCfg::Release | KernelCfg::Debug => vec![],
            KernelCfg::Infrastructure => vec![AssertionSet::Infra],
            KernelCfg::MP => vec![AssertionSet::MP],
            KernelCfg::MpMs => vec![AssertionSet::MP, AssertionSet::MS],
            KernelCfg::MpMsMf => {
                vec![AssertionSet::MP, AssertionSet::MS, AssertionSet::MF]
            }
            KernelCfg::M => vec![AssertionSet::M],
            KernelCfg::All | KernelCfg::AllDebug => vec![AssertionSet::All],
        }
    }

    /// Does this configuration run the debug sweeps?
    pub fn debug_checks(self) -> bool {
        matches!(self, KernelCfg::Debug | KernelCfg::AllDebug)
    }
}

/// Build a kernel in the given configuration and initialisation mode.
pub fn make_kernel(cfg: KernelCfg, init_mode: InitMode) -> (Arc<Kernel>, Option<Arc<Tesla>>) {
    make_kernel_in(cfg, init_mode, FailMode::FailStop, None)
}

/// [`make_kernel`] with explicit fail mode and an optional context
/// override forcing every assertion into per-thread or global stores
/// (the fig. 12 / context-scaling comparisons).
pub fn make_kernel_in(
    cfg: KernelCfg,
    init_mode: InitMode,
    fail_mode: FailMode,
    context: Option<tesla::spec::Context>,
) -> (Arc<Kernel>, Option<Arc<Tesla>>) {
    let sets = cfg.sets();
    let kc = KernelConfig {
        bugs: Bugs::default(),
        debug_checks: cfg.debug_checks(),
    };
    if sets.is_empty() {
        (Arc::new(Kernel::new(kc, MacFramework::new(), None)), None)
    } else {
        let t = Arc::new(Tesla::new(Config {
            fail_mode,
            init_mode,
            instance_capacity: 64,
            ..Config::default()
        }));
        let reg = register_sets_in(&t, &sets, context).expect("sets register");
        let k = Arc::new(Kernel::new(
            kc,
            MacFramework::new(),
            Some((t.clone(), reg.sites)),
        ));
        (k, Some(t))
    }
}

/// [`make_kernel`] with the full telemetry stack attached: the
/// engine's lock-free metrics registry plus a flight recorder sized
/// at `recorder_capacity` events per thread. This is the
/// "observability on" configuration of the EXPERIMENTS.md telemetry
/// overhead table; `make_kernel` is its "off" baseline.
pub fn make_kernel_telemetry(
    cfg: KernelCfg,
    init_mode: InitMode,
    recorder_capacity: usize,
) -> (Arc<Kernel>, Option<Arc<Tesla>>, Option<Arc<FlightRecorder>>) {
    let sets = cfg.sets();
    let kc = KernelConfig {
        bugs: Bugs::default(),
        debug_checks: cfg.debug_checks(),
    };
    if sets.is_empty() {
        return (
            Arc::new(Kernel::new(kc, MacFramework::new(), None)),
            None,
            None,
        );
    }
    let t = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::FailStop,
        init_mode,
        instance_capacity: 64,
        telemetry: true,
        ..Config::default()
    }));
    let recorder = Arc::new(FlightRecorder::new(recorder_capacity));
    t.add_handler(recorder.clone());
    let reg = register_sets_in(&t, &sets, None).expect("sets register");
    let k = Arc::new(Kernel::new(
        kc,
        MacFramework::new(),
        Some((t.clone(), reg.sites)),
    ));
    (k, Some(t), Some(recorder))
}

/// [`make_kernel_telemetry`] with the adaptive overhead governor in
/// the loop: full telemetry (the governor's feedback signal) plus a
/// controller holding `slo_milli` (e.g. 1200 = 1.2×) with the given
/// tick period. `allow_shed` stays off — the EXPERIMENTS.md
/// governance row requires the violation list to stay byte-identical
/// to the ungoverned run, which the exact levels guarantee.
pub fn make_kernel_governed(
    cfg: KernelCfg,
    init_mode: InitMode,
    slo_milli: u32,
    tick_events: u32,
) -> (Arc<Kernel>, Option<Arc<Tesla>>) {
    let sets = cfg.sets();
    let kc = KernelConfig {
        bugs: Bugs::default(),
        debug_checks: cfg.debug_checks(),
    };
    if sets.is_empty() {
        return (Arc::new(Kernel::new(kc, MacFramework::new(), None)), None);
    }
    let t = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::FailStop,
        init_mode,
        instance_capacity: 64,
        governor: Some(GovernorConfig {
            slo_milli,
            tick_events,
            allow_shed: false,
        }),
        ..Config::default()
    }));
    let reg = register_sets_in(&t, &sets, None).expect("sets register");
    let k = Arc::new(Kernel::new(
        kc,
        MacFramework::new(),
        Some((t.clone(), reg.sites)),
    ));
    (k, Some(t))
}

/// The live-instance quota chaos kernels run under (per class).
pub const CHAOS_QUOTA: usize = 16;

/// [`make_kernel`] under a seeded fault plan: governed (quota of
/// [`CHAOS_QUOTA`] with LRU eviction and degraded mode),
/// log-and-continue so the workload completes through violations, and
/// fully telemetered so every absorbed fault is accounted. The
/// configurations with no assertions have nothing to govern, so this
/// builder requires one that registers some.
pub fn make_kernel_chaos(
    cfg: KernelCfg,
    init_mode: InitMode,
    seed: u64,
    spec: FaultSpec,
) -> (Arc<Kernel>, Arc<Tesla>) {
    tesla::runtime::faults::silence_injected_panics();
    let sets = cfg.sets();
    assert!(!sets.is_empty(), "chaos kernels need assertions to govern");
    let kc = KernelConfig {
        bugs: Bugs::default(),
        debug_checks: cfg.debug_checks(),
    };
    let t = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        init_mode,
        instance_capacity: 64,
        max_instances: Some(CHAOS_QUOTA),
        eviction: EvictionPolicy::Lru,
        telemetry: true,
        faults: Some(Arc::new(FaultPlan::new(seed, spec))),
        ..Config::default()
    }));
    let reg = register_sets_in(&t, &sets, None).expect("sets register");
    let k = Arc::new(Kernel::new(
        kc,
        MacFramework::new(),
        Some((t.clone(), reg.sites)),
    ));
    (k, t)
}

/// The GUI tiers of fig. 14, in bar order.
pub fn gui_tiers() -> Vec<(&'static str, GuiMode)> {
    vec![
        ("Baseline", GuiMode::Release),
        ("Tracing", GuiMode::TracingEnabled),
        ("Interposition", GuiMode::Interposed),
        ("TESLA", GuiMode::Tesla(Arc::new(Tesla::with_defaults()))),
    ]
}

/// Build a GUI app in a tier.
pub fn make_gui(mode: GuiMode) -> GuiApp {
    GuiApp::new(mode, GuiBugs::default())
}

/// Simple timing helper: median-of-runs wall time for `f`.
pub fn time_runs<F: FnMut()>(runs: usize, mut f: F) -> std::time::Duration {
    let mut samples = Vec::with_capacity(runs);
    for _ in 0..runs {
        let t0 = std::time::Instant::now();
        f();
        samples.push(t0.elapsed());
    }
    samples.sort();
    samples[samples.len() / 2]
}

/// Format a duration as adaptive human units.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// `x`× ratio string against a baseline.
pub fn ratio(x: std::time::Duration, base: std::time::Duration) -> String {
    if base.as_nanos() == 0 {
        return "n/a".into();
    }
    format!("{:.2}×", x.as_nanos() as f64 / base.as_nanos() as f64)
}
