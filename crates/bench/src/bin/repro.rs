//! `repro` — regenerate every table and figure of the paper's
//! evaluation (§5) against the simulated substrates.
//!
//! ```sh
//! cargo run --release -p tesla-bench --bin repro            # everything
//! cargo run --release -p tesla-bench --bin repro -- fig11a  # one experiment
//! ```
//!
//! Absolute numbers are laptop-and-simulator numbers; the *shapes*
//! (who is slower, by roughly what factor) are the reproduction
//! targets — see EXPERIMENTS.md.

use std::sync::Arc;
use std::time::Duration;
use tesla::pipeline::{BuildOptions, BuildSystem, ReinstrumentPolicy, StageTimings};
use tesla::prelude::*;
use tesla::sim_kernel::assertions::{register_sets, AssertionSet};
use tesla::workload::{buildload, lmbench, oltp, xnee};
use tesla_bench::{
    fmt_duration, gui_tiers, make_kernel, make_kernel_governed, make_kernel_in,
    make_kernel_telemetry, ratio, time_runs, KernelCfg,
};

fn main() {
    let which: Vec<String> = std::env::args().skip(1).collect();
    let all = which.is_empty() || which.iter().any(|w| w == "all");
    let want = |k: &str| all || which.iter().any(|w| w == k);

    if want("table1") {
        table1();
    }
    if want("fig9") {
        fig9();
    }
    if want("fig10") {
        fig10();
    }
    if want("build-kernel") {
        build_kernel();
    }
    if want("fig11a") {
        fig11a();
    }
    if want("fig11b") {
        fig11b();
    }
    if want("fig12") {
        fig12();
    }
    if want("fig13") {
        fig13();
    }
    if want("scaling") {
        scaling();
    }
    if want("fig14a") {
        fig14a();
    }
    if want("fig14b") {
        fig14b();
    }
    if want("telemetry") {
        telemetry();
    }
    if want("build-modes") {
        build_modes();
    }
    // CI smoke, not part of `all`: run it by name and it exits nonzero
    // if the delta build re-instruments more than the edited slice.
    if which.iter().any(|w| w == "delta-smoke") && !delta_smoke() {
        std::process::exit(1);
    }
    // CI chaos smoke, not part of `all`: seeded fault-injection sweep;
    // exits nonzero on any panic, quota breach, unreported absorbed
    // fault, or nondeterministic ledger.
    if which.iter().any(|w| w == "chaos") && !chaos() {
        std::process::exit(1);
    }
    // Governance smoke, not part of `all`: the adaptive overhead
    // governor must keep the violation list byte-identical to an
    // ungoverned run while holding its overhead SLO; exits nonzero on
    // any mismatch.
    if which.iter().any(|w| w == "governance") && !governance() {
        std::process::exit(1);
    }
    // Saturation smoke, not part of `all`: multi-producer dispatch
    // throughput, direct per-event hooks vs ring-buffered batched
    // drain, against the 96-assertion corpus; exits nonzero if the
    // 8-producer batched path is less than 2x the per-event baseline.
    if which.iter().any(|w| w == "saturation") && !saturation() {
        std::process::exit(1);
    }
}

fn header(title: &str) {
    println!("\n=== {title} ===");
}

/// Table 1: assertion sets.
fn table1() {
    header("Table 1: assertion sets");
    println!("{:<8} {:<28} {:>10}", "Symbol", "Description", "Assertions");
    let rows: [(&str, &str, &[AssertionSet]); 6] = [
        ("MF", "MAC (filesystem)", &[AssertionSet::MF]),
        ("MS", "MAC (sockets)", &[AssertionSet::MS]),
        ("MP", "MAC (processes)", &[AssertionSet::MP]),
        ("M", "All MAC assertions", &[AssertionSet::M]),
        ("P", "Process lifetimes", &[AssertionSet::P]),
        ("All", "All TESLA assertions", &[AssertionSet::All]),
    ];
    for (sym, desc, sets) in rows {
        let t = Arc::new(Tesla::with_defaults());
        let reg = register_sets(&t, sets).unwrap();
        println!("{sym:<8} {desc:<28} {:>10}", reg.total);
    }
}

/// Figure 9: the MAC-check automaton, weighted by a real run.
fn fig9() {
    header("Figure 9: weighted automaton for the fig. 4 assertion");
    let (k, t) = make_kernel(KernelCfg::MpMs, InitMode::Lazy);
    let t = t.unwrap();
    let counting = Arc::new(CountingHandler::new());
    t.add_handler(counting.clone());
    lmbench::setup(&k);
    lmbench::poll_loop(&k, k.init_pid(), 200).unwrap();
    // The socket/poll class: find it by name.
    let defs = t.class_defs();
    let (idx, def) = defs
        .iter()
        .enumerate()
        .find(|(_, d)| d.automaton.name == "socket/poll")
        .expect("class registered");
    let dfa = tesla::automata::Dfa::from_automaton(&def.automaton);
    let weigher = |from: u32, sym: u32| {
        counting.transition_count(
            idx as u32,
            dfa.states[from as usize],
            tesla::automata::SymbolId(sym),
        )
    };
    let dot = tesla::automata::dot::render(&def.automaton, &weigher);
    let _ = std::fs::create_dir_all("target");
    let path = "target/fig9.dot";
    std::fs::write(path, &dot).expect("write dot");
    println!("{dot}");
    println!("(written to {path}; render with `dot -Tpdf {path}`)");
}

/// Figure 10: OpenSSL-shaped build times, clean and incremental.
fn fig10() {
    header("Figure 10: build-time overhead (OpenSSL-shaped corpus, 30 units)");
    let project = tesla::corpus::openssl_like(40);
    let noverify = |mut o: BuildOptions| {
        o.verify = false;
        o
    };
    let clean = |opts: BuildOptions| {
        let project = project.clone();
        move || {
            let mut bs = BuildSystem::new(project.clone(), opts);
            bs.build().unwrap();
        }
    };
    let clean_default = time_runs(3, clean(noverify(BuildOptions::default_toolchain())));
    let clean_tesla = time_runs(3, clean(noverify(BuildOptions::tesla_toolchain())));

    let incr = |opts: BuildOptions| {
        let mut bs = BuildSystem::new(project.clone(), opts);
        bs.build().unwrap();
        let mut n = 0u32;
        time_runs(3, move || {
            bs.touch(&format!("ssl/layer{}.c", 1 + n % 5));
            n += 1;
            bs.build().unwrap();
        })
    };
    let incr_default = incr(noverify(BuildOptions::default_toolchain()));
    let incr_tesla = incr(noverify(BuildOptions::tesla_toolchain()));

    println!(
        "{:<22} {:>12} {:>12} {:>9}",
        "", "Default", "TESLA", "slowdown"
    );
    println!(
        "{:<22} {:>12} {:>12} {:>9}",
        "Clean build",
        fmt_duration(clean_default),
        fmt_duration(clean_tesla),
        ratio(clean_tesla, clean_default)
    );
    println!(
        "{:<22} {:>12} {:>12} {:>9}",
        "Incremental build",
        fmt_duration(incr_default),
        fmt_duration(incr_tesla),
        ratio(incr_tesla, incr_default)
    );
    println!("(paper: clean ≈2.5×; incremental ≈500× — one edited file re-instruments every unit)");
}

/// §5.2.1: kernel-shaped corpus build times.
fn build_kernel() {
    header("§5.2.1: kernel build overhead (kernel-shaped corpus, 20 units, 85 assertions)");
    let with_asserts = tesla::corpus::kernel_like(20, 85);
    let without_asserts = tesla::corpus::kernel_like(20, 0);

    let clean = |p: &tesla::pipeline::Project, opts: BuildOptions| {
        let p = p.clone();
        time_runs(3, move || {
            let mut bs = BuildSystem::new(p.clone(), opts);
            bs.build().unwrap();
        })
    };
    let nv = |mut o: BuildOptions| {
        o.verify = false;
        o
    };
    let c_default = clean(&with_asserts, nv(BuildOptions::default_toolchain()));
    let c_tesla = clean(&with_asserts, nv(BuildOptions::tesla_toolchain()));

    let incr = |p: &tesla::pipeline::Project, opts: BuildOptions| {
        let mut bs = BuildSystem::new(p.clone(), opts);
        bs.build().unwrap();
        time_runs(3, move || {
            bs.touch("subsys/unit1.c");
            bs.build().unwrap();
        })
    };
    let i_default = incr(&with_asserts, nv(BuildOptions::default_toolchain()));
    let i_none = incr(&without_asserts, nv(BuildOptions::tesla_toolchain()));
    let i_full = incr(&with_asserts, nv(BuildOptions::tesla_toolchain()));

    println!(
        "clean: default {} vs TESLA {} ({})",
        fmt_duration(c_default),
        fmt_duration(c_tesla),
        ratio(c_tesla, c_default)
    );
    println!(
        "incremental: default {} | TESLA no assertions {} ({}) | TESLA 85 assertions {} ({})",
        fmt_duration(i_default),
        fmt_duration(i_none),
        ratio(i_none, i_default),
        fmt_duration(i_full),
        ratio(i_full, i_default)
    );
    println!("(paper: 2.2× clean; 3.5× incremental w/o assertions; 37× with 85)");
}

/// Figure 11a: lmbench open/close across kernel configurations.
fn fig11a() {
    header("Figure 11a: open/close microbenchmark across kernel configurations");
    const ITERS: usize = 3_000;
    let mut base = Duration::ZERO;
    println!("{:<16} {:>12} {:>9}", "Config", "per op", "vs Release");
    for cfg in KernelCfg::ALL {
        let (k, _t) = make_kernel(cfg, InitMode::Lazy);
        lmbench::setup(&k);
        let pid = k.init_pid();
        // Warm up.
        lmbench::open_close_loop(&k, pid, 100).unwrap();
        let d = time_runs(3, || lmbench::open_close_loop(&k, pid, ITERS).unwrap());
        let per_op = d / ITERS as u32;
        if cfg == KernelCfg::Release {
            base = per_op;
        }
        println!(
            "{:<16} {:>12} {:>9}",
            cfg.label(),
            fmt_duration(per_op),
            ratio(per_op, base)
        );
    }
    println!("(paper: TESLA microbenchmark overhead measurable; Debug ≈3× on micro)");
}

/// Figure 11b: macrobenchmarks, normalised.
fn fig11b() {
    header("Figure 11b: macrobenchmarks (normalised run time)");
    let configs = [
        KernelCfg::Release,
        KernelCfg::Debug,
        KernelCfg::Infrastructure,
        KernelCfg::MpMsMf,
        KernelCfg::M,
        KernelCfg::All,
    ];
    println!(
        "{:<16} {:>14} {:>14}",
        "Config", "OLTP (socket)", "Build (FS/CPU)"
    );
    let mut oltp_base = Duration::ZERO;
    let mut build_base = Duration::ZERO;
    for cfg in configs {
        let (k, _t) = make_kernel(cfg, InitMode::Lazy);
        let params = oltp::OltpParams {
            threads: 4,
            transactions: 60,
            socket_ops: 3,
            compute: 4000,
        };
        let oltp_d = time_runs(3, || {
            oltp::run(&k, params);
        });
        let (k2, _t2) = make_kernel(cfg, InitMode::Lazy);
        let bp = buildload::BuildParams {
            files: 40,
            compute: 400,
        };
        let build_d = time_runs(3, || {
            buildload::run(&k2, bp);
        });
        if cfg == KernelCfg::Release {
            oltp_base = oltp_d;
            build_base = build_d;
        }
        println!(
            "{:<16} {:>14} {:>14}",
            cfg.label(),
            ratio(oltp_d, oltp_base),
            ratio(build_d, build_base)
        );
    }
    println!("(paper: macro overhead ≲1.35×, comparable to accepted debug aids)");
}

/// Figure 12: per-thread vs global context cost.
fn fig12() {
    header("Figure 12: per-thread vs global context (explicit synchronisation)");
    const THREADS: usize = 8;
    const EVENTS: usize = 40_000;
    let mut results = Vec::new();
    for (label, global) in [("Per-thread", false), ("Global", true)] {
        let d = time_runs(3, || {
            let t = Arc::new(Tesla::new(Config {
                fail_mode: FailMode::Log,
                instance_capacity: 256,
                ..Config::default()
            }));
            let mut b = AssertionBuilder::bounded(
                tesla::spec::StaticEvent::Call("job".into()),
                tesla::spec::StaticEvent::ReturnFrom("job".into()),
            )
            .named("ctx");
            if global {
                b = b.global();
            }
            let a = b
                .previously(call("produce").arg_var("item").returns(0))
                .build()
                .unwrap();
            let id = t.register(compile(&a).unwrap()).unwrap();
            let job = t.intern_fn("job");
            let produce = t.intern_fn("produce");
            let mut handles = Vec::new();
            for th in 0..THREADS as u64 {
                let t = t.clone();
                handles.push(std::thread::spawn(move || {
                    t.fn_entry(job, &[]).unwrap();
                    for i in 0..(EVENTS / THREADS) as u64 {
                        let item = th * 1_000_000 + (i % 192);
                        let args = [Value(item)];
                        t.fn_entry(produce, &args).unwrap();
                        t.fn_exit(produce, &args, Value(0)).unwrap();
                        t.assertion_site(id, &[Value(item)]).unwrap();
                    }
                    t.fn_exit(job, &[], Value(0)).unwrap();
                    tesla::runtime::engine::reset_thread_state();
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
        });
        println!(
            "{label:<12} {:>12} ({EVENTS} events, {THREADS} threads)",
            fmt_duration(d)
        );
        results.push(d);
    }
    println!("global/per-thread: {}", ratio(results[1], results[0]));
    println!("(paper: global assertions pay for explicit serialisation)");
}

/// Figure 13: naive vs lazy initialisation.
fn fig13() {
    header("Figure 13: lazy-initialisation optimisation (pre vs post)");
    const ITERS: usize = 2_000;
    // Microbenchmark: open/close under MAC and all sets.
    println!(
        "{:<22} {:>12} {:>12} {:>9}",
        "Microbenchmark", "Pre (naive)", "Post (lazy)", "speedup"
    );
    for (label, cfg) in [
        ("MAC (M)", KernelCfg::M),
        ("All assertions", KernelCfg::All),
    ] {
        let mut per = Vec::new();
        for init in [InitMode::Naive, InitMode::Lazy] {
            let (k, _t) = make_kernel(cfg, init);
            lmbench::setup(&k);
            let pid = k.init_pid();
            lmbench::open_close_loop(&k, pid, 100).unwrap();
            per.push(
                time_runs(3, || lmbench::open_close_loop(&k, pid, ITERS).unwrap()) / ITERS as u32,
            );
        }
        println!(
            "{:<22} {:>12} {:>12} {:>9}",
            label,
            fmt_duration(per[0]),
            fmt_duration(per[1]),
            ratio(per[0], per[1])
        );
    }
    // Macrobenchmarks.
    println!(
        "{:<22} {:>12} {:>12} {:>9}",
        "Macrobenchmark", "Pre (naive)", "Post (lazy)", "speedup"
    );
    for (label, which) in [("OLTP", 0), ("Clang-ish build", 1)] {
        let mut per = Vec::new();
        for init in [InitMode::Naive, InitMode::Lazy] {
            let (k, _t) = make_kernel(KernelCfg::All, init);
            let d = if which == 0 {
                let params = oltp::OltpParams {
                    threads: 4,
                    transactions: 40,
                    socket_ops: 3,
                    compute: 4000,
                };
                time_runs(3, || {
                    oltp::run(&k, params);
                })
            } else {
                let bp = buildload::BuildParams {
                    files: 30,
                    compute: 300,
                };
                time_runs(3, || {
                    buildload::run(&k, bp);
                })
            };
            per.push(d);
        }
        println!(
            "{:<22} {:>12} {:>12} {:>9}",
            label,
            fmt_duration(per[0]),
            fmt_duration(per[1]),
            ratio(per[0], per[1])
        );
    }
    println!("(paper: micro ~100×→<7×; Clang build 2×→<1.1×; OLTP 10×→ small)");
}

/// Context scaling: OLTP throughput at 1/2/4/8 threads,
/// uninstrumented vs per-thread vs global context (all 96 assertions,
/// Log mode). The EXPERIMENTS.md `context_scaling` table records
/// these rows before and after the sharded-store/snapshot dispatch
/// work.
fn scaling() {
    header("Context scaling: OLTP txn/s at 1/2/4/8 threads");
    const TXNS: usize = 400;
    println!(
        "{:<8} {:<16} {:>12} {:>12}",
        "threads", "config", "time", "txn/s"
    );
    for threads in [1usize, 2, 4, 8] {
        for (label, ctx) in [
            ("uninstrumented", None),
            ("per-thread", Some(tesla::spec::Context::PerThread)),
            ("global", Some(tesla::spec::Context::Global)),
        ] {
            let d = time_runs(3, || {
                let k = match ctx {
                    None => {
                        make_kernel_in(KernelCfg::Release, InitMode::Lazy, FailMode::Log, None).0
                    }
                    Some(c) => {
                        make_kernel_in(KernelCfg::All, InitMode::Lazy, FailMode::Log, Some(c)).0
                    }
                };
                let params = oltp::OltpParams {
                    threads,
                    transactions: TXNS,
                    socket_ops: 4,
                    compute: 600,
                };
                oltp::run(&k, params);
            });
            let total = (threads * TXNS) as f64;
            println!(
                "{:<8} {:<16} {:>12} {:>12.0}",
                threads,
                label,
                fmt_duration(d),
                total / d.as_secs_f64()
            );
        }
    }
    println!("(snapshot dispatch + sharded global stores: global ≈ per-thread at every width)");
}

/// Telemetry overhead: OLTP with the full observability stack
/// (metrics registry + hook timers + flight recorder) versus the
/// plain instrumented kernel, at 1/2/4/8 threads. The EXPERIMENTS.md
/// telemetry table records these rows; the acceptance budget is ≤5%
/// on the 4-thread row.
fn telemetry() {
    header("Telemetry overhead: OLTP txn/s, observability on vs off");
    // Two parameterizations of the same workload:
    //
    //  - "hook-dense" is the fig. 11b macro setup (compute=4000):
    //    roughly one instrumented event per 160 ns of application
    //    work, far denser than any real program — it exposes the
    //    per-event marginal cost of the observability stack.
    //  - "app-weight" (compute=80000) matches the event density of
    //    the paper's macrobenchmarks (one syscall per ~1 µs of real
    //    work, as in the MySQL/SysBench run); the ≤5% budget is
    //    measured here. The compute=600 stress density of fig. 13 is
    //    hook-bound by design and reported separately by `repro
    //    fig13`.
    const TXNS: usize = 400;
    for (label, compute) in [
        ("hook-dense (fig. 11b)", 4_000usize),
        ("app-weight", 80_000),
    ] {
        println!("-- {label}: compute={compute} per transaction --");
        println!(
            "{:<8} {:>12} {:>12} {:>9} {:>14}",
            "threads", "off", "on", "on/off", "events seen"
        );
        for threads in [1usize, 2, 4, 8] {
            let params = oltp::OltpParams {
                threads,
                transactions: TXNS,
                socket_ops: 3,
                compute,
            };
            let off = time_runs(7, || {
                let (k, _t) = make_kernel(KernelCfg::All, InitMode::Lazy);
                oltp::run(&k, params);
            });
            let mut events = 0u64;
            let on = time_runs(7, || {
                let (k, t, rec) = make_kernel_telemetry(KernelCfg::All, InitMode::Lazy, 1 << 12);
                oltp::run(&k, params);
                events = t.unwrap().metrics().events_total();
                let _ = rec.unwrap().snapshot();
            });
            println!(
                "{:<8} {:>12} {:>12} {:>9} {:>14}",
                threads,
                fmt_duration(off),
                fmt_duration(on),
                ratio(on, off),
                events
            );
        }
    }
    println!("(budget: ≤1.05× at app-weight with metrics, hook timers and recorder attached)");
}

/// Build modes: the Naive/Fingerprint/Delta reinstrumentation sweep
/// over both build corpora, with a per-stage wall-clock breakdown of
/// the incremental rebuild. The EXPERIMENTS.md "build modes" table
/// records these rows; the acceptance targets are delta ≤5× clean and
/// ≤10× incremental on the kernel corpus.
fn build_modes() {
    header("Build modes: naive vs fingerprint vs delta reinstrumentation");
    let nv = |mut o: BuildOptions| {
        o.verify = false;
        o
    };
    let corpora = [
        (
            "OpenSSL-shaped (fig. 10, 40 units)",
            tesla::corpus::openssl_like(40),
            "ssl/layer1.c",
        ),
        (
            "kernel-shaped (§5.2.1, 20 units, 85 assertions)",
            tesla::corpus::kernel_like(20, 85),
            "subsys/unit1.c",
        ),
    ];
    let policies = [
        ("naive", ReinstrumentPolicy::Naive),
        ("fingerprint", ReinstrumentPolicy::Fingerprint),
        ("delta", ReinstrumentPolicy::Delta),
    ];
    for (name, project, touch) in &corpora {
        println!("\n-- {name}; incremental = touch {touch} --");
        let clean_of = |opts: BuildOptions| {
            let p = project.clone();
            time_runs(3, move || {
                BuildSystem::new(p.clone(), opts).build().unwrap();
            })
        };
        let incr_of = |opts: BuildOptions| {
            let mut bs = BuildSystem::new(project.clone(), opts);
            bs.build().unwrap();
            let mut stages = StageTimings::default();
            let mut rewoven = 0usize;
            let d = time_runs(3, || {
                bs.touch(touch);
                let art = bs.build().unwrap();
                stages = art.timings;
                rewoven = art.stats.instrumented_units;
            });
            (d, stages, rewoven)
        };
        let base_clean = clean_of(nv(BuildOptions::default_toolchain()));
        let (base_incr, _, _) = incr_of(nv(BuildOptions::default_toolchain()));
        println!(
            "{:<13} {:>11} {:>8} {:>11} {:>8} {:>8}",
            "mode", "clean", "vs def", "incr", "vs def", "rewoven"
        );
        println!(
            "{:<13} {:>11} {:>8} {:>11} {:>8} {:>8}",
            "default",
            fmt_duration(base_clean),
            "-",
            fmt_duration(base_incr),
            "-",
            "-"
        );
        for (label, policy) in policies {
            let opts = BuildOptions {
                reinstrument: policy,
                ..nv(BuildOptions::tesla_toolchain())
            };
            let clean_d = clean_of(opts);
            let (incr_d, st, rewoven) = incr_of(opts);
            println!(
                "{:<13} {:>11} {:>8} {:>11} {:>8} {:>8}",
                label,
                fmt_duration(clean_d),
                ratio(clean_d, base_clean),
                fmt_duration(incr_d),
                ratio(incr_d, base_incr),
                rewoven
            );
            println!(
                "{:<13} incr stages: frontend {} | analyse {} | model-check {} | instrument {} | link {}",
                "",
                fmt_duration(st.frontend),
                fmt_duration(st.analyse),
                fmt_duration(st.model_check),
                fmt_duration(st.instrument),
                fmt_duration(st.link)
            );
        }
    }
    println!("\n(targets: delta ≤5× clean, ≤10× incremental on the kernel corpus)");
}

/// CI smoke for the incremental delta path: the §5.2.1 scenario
/// (kernel corpus, touch one subsystem unit, rebuild under
/// `ReinstrumentPolicy::Delta`) must re-instrument strictly fewer
/// units than the corpus holds. Returns false — and `main` exits
/// nonzero — if the build-cache regresses to rebuilding the world.
fn delta_smoke() -> bool {
    header("delta-smoke: §5.2.1 incremental rebuild under delta");
    let units = 20usize;
    let project = tesla::corpus::kernel_like(units, 85);
    let mut bs = BuildSystem::new(project, BuildOptions::delta_toolchain());
    bs.build().expect("clean build");
    bs.touch("subsys/unit1.c");
    let art = bs.build().expect("incremental build");
    println!(
        "touched 1 of {units} units: recompiled {}, re-instrumented {} (cache: {} hits, {} misses)",
        art.stats.compiled_units,
        art.stats.instrumented_units,
        bs.compile_cache().hits(),
        bs.compile_cache().misses()
    );
    let ok = art.stats.instrumented_units < units && art.stats.instrumented_units > 0;
    println!(
        "{}",
        if ok {
            "OK: delta rebuild stayed incremental"
        } else {
            "FAIL: delta rebuild re-instrumented the world"
        }
    );
    ok
}

/// One governed chaos run: the lmbench poll workload on an MP+MS
/// kernel under a full-menu fault plan. Returns `None` if a panic
/// escaped into the harness (an automatic failure), otherwise the
/// plan's ledger and the engine's metrics snapshot.
fn chaos_run(seed: u64) -> Option<(FaultLedger, MetricsSnapshot)> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    catch_unwind(AssertUnwindSafe(|| {
        let (k, t) = tesla_bench::make_kernel_chaos(
            KernelCfg::MpMs,
            InitMode::Lazy,
            seed,
            FaultSpec::default_chaos(),
        );
        lmbench::setup(&k);
        let _ = lmbench::poll_loop(&k, k.init_pid(), 200);
        let ledger = t.fault_plan().expect("chaos kernels carry a plan").ledger();
        (ledger, t.metrics().snapshot())
    }))
    .ok()
}

/// CI chaos smoke: three fixed seeds through [`chaos_run`], each run
/// twice. Fails (returns false, `main` exits nonzero) on any panic
/// that escapes the engine, any class whose live-instance gauge ever
/// exceeded the quota, any injected fault the telemetry did not
/// report absorbed, and any seed whose two runs disagree on the
/// ledger (the determinism contract).
fn chaos() -> bool {
    header("chaos: seeded fault-injection sweep (governed kernel)");
    const SEEDS: [u64; 3] = [11, 29, 4242];
    let quota = tesla_bench::CHAOS_QUOTA as u64;
    let mut ok = true;
    println!(
        "{:<8} {:>9} {:>9} {:>10} {:>8} {:>7}",
        "Seed", "injected", "absorbed", "reported", "peak", "verdict"
    );
    for seed in SEEDS {
        let Some((ledger, snap)) = chaos_run(seed) else {
            println!(
                "{seed:<8} {:>9} {:>9} {:>10} {:>8} {:>7}",
                "-", "-", "-", "-", "PANIC"
            );
            ok = false;
            continue;
        };
        let peak = snap
            .classes
            .iter()
            .map(|c| c.high_watermark)
            .max()
            .unwrap_or(0);
        let balanced = ledger.balanced();
        let reported = snap.faults_absorbed == ledger.total_injected();
        let bounded = peak <= quota;
        let deterministic = match chaos_run(seed) {
            Some((again, _)) => again == ledger,
            None => false,
        };
        let pass = balanced && reported && bounded && deterministic;
        ok &= pass;
        println!(
            "{seed:<8} {:>9} {:>9} {:>10} {:>8} {:>7}",
            ledger.total_injected(),
            ledger.total_absorbed(),
            snap.faults_absorbed,
            format!("{peak}/{quota}"),
            if pass { "ok" } else { "FAIL" }
        );
        if !balanced {
            println!("  FAIL: injected/absorbed ledger unbalanced: {ledger}");
        }
        if !reported {
            println!(
                "  FAIL: telemetry reported {} absorbed, plan injected {}",
                snap.faults_absorbed,
                ledger.total_injected()
            );
        }
        if !bounded {
            println!("  FAIL: live-instance gauge peaked at {peak} > quota {quota}");
        }
        if !deterministic {
            println!("  FAIL: identical seed produced a different ledger");
        }
    }
    println!(
        "{}",
        if ok {
            "OK: chaos sweep clean under all seeds"
        } else {
            "FAIL: chaos sweep"
        }
    );
    ok
}

/// Figure 14a: Objective-C message-send microbenchmark.
fn fig14a() {
    header("Figure 14a: message-send microbenchmark (tight loop)");
    const SENDS: usize = 50_000;
    let mut base = Duration::ZERO;
    println!("{:<16} {:>12} {:>9}", "Mode", "per send", "vs base");
    for (label, mode) in gui_tiers() {
        let mut app = tesla_bench::make_gui(mode);
        let sel = app.world.sels.set_line_width;
        let ctx = app.world.ctx;
        // Warm-up; for the TESLA tier also enter the tracing bound so
        // the automaton does per-event work in the loop.
        app.run_loop_iteration(&[]).unwrap();
        let d = time_runs(3, || {
            for i in 0..SENDS {
                tesla::sim_gui::objc::objc_msg_send(&mut app.world, ctx, sel, &[(i % 5) as i64])
                    .unwrap();
            }
        }) / SENDS as u32;
        if base.is_zero() {
            base = d;
        }
        println!("{label:<16} {:>12} {:>9}", fmt_duration(d), ratio(d, base));
    }
    println!("(paper: up to 16× on the tight loop)");
}

/// Figure 14b: window redraw times under replay.
fn fig14b() {
    header("Figure 14b: window redraw times (Xnee-like replay, 200 iterations)");
    let script = xnee::session(200);
    println!(
        "{:<16} {:>12} {:>12} {:>12}",
        "Mode", "median", "p95", "max"
    );
    for (label, mode) in gui_tiers() {
        let mut app = tesla_bench::make_gui(mode);
        let mut times = xnee::replay(&mut app, &script);
        times.sort();
        let median = times[times.len() / 2];
        let p95 = times[times.len() * 95 / 100];
        let max = *times.last().unwrap();
        println!(
            "{label:<16} {:>12} {:>12} {:>12}",
            fmt_duration(median),
            fmt_duration(p95),
            fmt_duration(max)
        );
    }
    println!("(paper: longest redraw 54 ms with full tracing — still smooth animation)");
}

/// Drive a deterministic mixed workload (healthy traffic plus seeded
/// violating assertion sites) through one engine and return the
/// rendered violation list plus the governor's exit state.
fn governance_drive(governor: Option<(u32, u32)>) -> (Vec<String>, u32, u64, usize) {
    let engine = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        telemetry: true,
        governor: governor.map(|(slo_milli, tick_events)| GovernorConfig {
            slo_milli,
            tick_events,
            allow_shed: false,
        }),
        ..Config::default()
    }));
    let assertion = AssertionBuilder::within("txn")
        .named("governance/checked-before-use")
        .previously(call("check").arg_var("x").returns(0))
        .build()
        .unwrap();
    let class = engine
        .register(tesla::automata::compile(&assertion).unwrap())
        .unwrap();
    let txn = engine.intern_fn("txn");
    let check = engine.intern_fn("check");
    for i in 0..20_000u64 {
        engine.fn_entry(txn, &[]).unwrap();
        let x = Value(i % 8);
        engine.fn_entry(check, &[x]).unwrap();
        engine.fn_exit(check, &[x], Value(0)).unwrap();
        engine.assertion_site(class, &[x]).unwrap();
        if i % 97 == 0 {
            // A value `check` never blessed: a Site violation, logged
            // and continued past.
            engine.assertion_site(class, &[Value(10_000 + i)]).unwrap();
        }
        engine.fn_exit(txn, &[], Value(0)).unwrap();
    }
    let violations: Vec<String> = engine.violations().iter().map(|v| v.to_string()).collect();
    let (level, overhead, decisions) = match engine.governor() {
        Some(g) => (
            g.level(),
            g.estimate_overhead_milli(engine.metrics()),
            g.decisions().len(),
        ),
        None => (0, 0, 0),
    };
    (violations, level, overhead, decisions)
}

/// Governance smoke: (a) the governor's exact levels must leave the
/// violation list byte-identical to an ungoverned run; (b) under
/// hook-dense load it must escalate and cost no more than ungoverned
/// telemetry; (c) its report surfaces must be populated.
fn governance() -> bool {
    use tesla::runtime::telemetry::analysis::fmt_overhead;
    header("Governance: adaptive overhead governor vs ungoverned telemetry");
    let mut ok = true;

    // -- Soundness: byte-identical violations under a tight SLO. --
    let (base_viol, _, _, _) = governance_drive(None);
    let (gov_viol, level, overhead, decisions) = governance_drive(Some((1050, 64)));
    println!(
        "soundness: {} violations ungoverned, {} governed; lists {}",
        base_viol.len(),
        gov_viol.len(),
        if base_viol == gov_viol {
            "byte-identical"
        } else {
            "DIVERGED"
        }
    );
    if base_viol.is_empty() || base_viol != gov_viol {
        eprintln!("governance: FAIL (violation lists must be nonempty and identical)");
        ok = false;
    }
    println!(
        "governor: level {level} after {decisions} decision(s); exit estimate {}",
        fmt_overhead(overhead)
    );
    // The workload is almost pure hook dispatch, so a 1.05x SLO must
    // drive the controller up its exact ladder (and never past it).
    if decisions == 0 || level == 0 || level > 7 {
        eprintln!("governance: FAIL (expected escalation within the exact levels)");
        ok = false;
    }

    // -- Overhead: governed vs ungoverned telemetry on OLTP. --
    const TXNS: usize = 400;
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>8} {:>8} {:>7}",
        "workload", "off", "on", "governed", "on/off", "gov/off", "level"
    );
    let mut governed_not_slower = true;
    for (label, compute) in [
        ("hook-dense (fig. 11b)", 4_000usize),
        ("app-weight", 80_000),
    ] {
        let params = oltp::OltpParams {
            threads: 4,
            transactions: TXNS,
            socket_ops: 3,
            compute,
        };
        let off = time_runs(5, || {
            let (k, _t) = make_kernel(KernelCfg::All, InitMode::Lazy);
            oltp::run(&k, params);
        });
        let on = time_runs(5, || {
            let (k, _t, _rec) = make_kernel_telemetry(KernelCfg::All, InitMode::Lazy, 1 << 12);
            oltp::run(&k, params);
        });
        let mut level = 0u32;
        let gov = time_runs(5, || {
            let (k, t) = make_kernel_governed(KernelCfg::All, InitMode::Lazy, 1200, 1024);
            oltp::run(&k, params);
            level = t.unwrap().governor().unwrap().level();
        });
        println!(
            "{label:<24} {:>10} {:>10} {:>10} {:>8} {:>8} {:>7}",
            fmt_duration(off),
            fmt_duration(on),
            fmt_duration(gov),
            ratio(on, off),
            ratio(gov, off),
            level
        );
        // Generous noise slack: the claim is "the governor never makes
        // a telemetered run meaningfully slower", not a microbenchmark.
        if gov.as_secs_f64() > on.as_secs_f64() * 1.25 {
            governed_not_slower = false;
        }
    }
    if !governed_not_slower {
        eprintln!("governance: FAIL (governed run >1.25x slower than ungoverned telemetry)");
        ok = false;
    }
    println!("(SLO 1.2x; exact levels only — clone shedding disabled)");
    ok
}

/// The saturation corpus: 96 Global-context assertions (the size of
/// the kernel's `All` configuration), each a scope with one watched
/// call, round-robined by the producers so every class sees traffic.
const SAT_CLASSES: usize = 96;

fn saturation_engine(compiled: bool) -> (Arc<Tesla>, Vec<(NameId, NameId)>) {
    let engine = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        telemetry: true,
        ..Config::default()
    }));
    let automata: Vec<_> = (0..SAT_CLASSES)
        .map(|i| {
            let a = AssertionBuilder::within(&format!("scope_{i}"))
                .global()
                .named(&format!("saturation/{i}"))
                .previously(call(&format!("check_{i}")).arg_var("x").returns(0))
                .build()
                .unwrap();
            tesla::automata::compile(&a).unwrap()
        })
        .collect();
    if compiled {
        engine.register_batch(automata).unwrap();
    } else {
        // The pre-PR world: interpreted NFA stepping, no DFA matrix.
        let pairs = automata
            .into_iter()
            .map(|a| (Arc::new(a), None::<Arc<tesla::automata::CompiledDfa>>))
            .collect();
        engine.register_batch_compiled(pairs).unwrap();
    }
    let names = (0..SAT_CLASSES)
        .map(|i| {
            (
                engine.intern_fn(&format!("scope_{i}")),
                engine.intern_fn(&format!("check_{i}")),
            )
        })
        .collect();
    (engine, names)
}

/// The per-producer event script: `rounds` scope open / watched call
/// / scope close cycles, 4 events each, phase-shifted per thread.
fn sat_script(t: usize, r: usize, names: &[(NameId, NameId)]) -> (NameId, NameId) {
    names[(t + r) % SAT_CLASSES]
}

/// Words one script round occupies on a producer ring: a bare
/// `fn_entry` header, a 1-arg `fn_entry`, a 1-arg + ret `fn_exit`
/// and a ret-only `fn_exit`.
const SAT_ROUND_WORDS: usize = 1 + 2 + 3 + 2;

/// Baseline: every producer thread calls the instrumentation hooks
/// directly — interpreted NFA stepping plus a snapshot load,
/// telemetry sampling and a Global shard lock *per event*, all
/// threads contending. This is the pre-batching architecture: the
/// hook path IS the dispatch path, so its wall time measures both.
/// Chunked like the staged run so thread-spawn overhead cancels.
fn saturation_per_event(threads: usize, rounds: usize) -> Duration {
    let (engine, names) = saturation_engine(false);
    let mut hook = Duration::ZERO;
    let mut r0 = 0;
    while r0 < rounds {
        let chunk = SAT_CHUNK.min(rounds - r0);
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for t in 0..threads {
                let engine = &engine;
                let names = &names;
                s.spawn(move || {
                    let v = [Value(t as u64)];
                    for r in r0..r0 + chunk {
                        let (scope, check) = sat_script(t, r, names);
                        let _ = engine.fn_entry(scope, &[]);
                        let _ = engine.fn_entry(check, &v);
                        let _ = engine.fn_exit(check, &v, Value(0));
                        let _ = engine.fn_exit(scope, &[], Value(0));
                    }
                });
            }
        });
        hook += t0.elapsed();
        r0 += chunk;
    }
    hook
}

/// Rounds per staged chunk — sized so a whole chunk fits every
/// producer ring and pushes can never backpressure mid-measurement.
const SAT_CHUNK: usize = 4_000;

/// Batched architecture, both halves measured separately:
///
/// * **hook path** — producer threads stage packed events on their
///   per-thread rings (a few word writes and one release-store each);
///   this is all the instrumented application pays per event, and its
///   wall time bounds how hard the app can hammer hooks.
/// * **drain** — the engine decodes the rings and dispatches through
///   the compiled-DFA batch path: one snapshot load, one shard-lock
///   streak, two clock reads and one counter flush per batch instead
///   of per event. Its rate is the dispatcher's retire throughput.
///
/// On a multicore host the two halves overlap (producers keep
/// hammering while a drain core retires), so sustained system
/// throughput is `min(hook-path, drain)` — each measured here on its
/// own so the row is meaningful even on a single-core runner.
fn saturation_batched(threads: usize, rounds: usize) -> (Duration, Duration) {
    let (engine, names) = saturation_engine(true);
    let ingress = BatchIngress::new(SAT_CHUNK * SAT_ROUND_WORDS + 64);
    let mut producers: Vec<EventProducer> = (0..threads).map(|_| ingress.producer()).collect();
    let mut hook = Duration::ZERO;
    let mut drain = Duration::ZERO;
    let mut r0 = 0;
    while r0 < rounds {
        let chunk = SAT_CHUNK.min(rounds - r0);
        let t0 = std::time::Instant::now();
        std::thread::scope(|s| {
            for (t, p) in producers.iter_mut().enumerate() {
                let names = &names;
                s.spawn(move || {
                    let v = [Value(t as u64)];
                    for r in r0..r0 + chunk {
                        let (scope, check) = sat_script(t, r, names);
                        // Rings are sized for a whole chunk — a failed
                        // push here is a harness bug, not backpressure.
                        assert!(p.fn_entry(scope, &[]));
                        assert!(p.fn_entry(check, &v));
                        assert!(p.fn_exit(check, &v, Value(0)));
                        assert!(p.fn_exit(scope, &[], Value(0)));
                    }
                });
            }
        });
        hook += t0.elapsed();
        let t1 = std::time::Instant::now();
        while engine
            .drain_ingress(&ingress)
            .expect("saturation corpus is violation-free")
            > 0
        {}
        drain += t1.elapsed();
        r0 += chunk;
    }
    (hook, drain)
}

/// Saturation smoke: how hard can 1/2/4/8 producer threads hammer
/// the instrumentation before dispatch saturates them? Per-event
/// interpreted hooks (dispatch inline on the hook path) vs the
/// batched architecture (staged hook path + compiled-DFA drain), on
/// the 96-assertion Global corpus with telemetry on. The
/// EXPERIMENTS.md saturation table records these rows; the in-run
/// gate is a >= 2x hook-path ratio at 8 producers (the PR targets
/// >= 3x).
fn saturation() -> bool {
    header("Saturation: hook-path + dispatch throughput, per-event interpreted vs batched compiled (96 assertions, Global)");
    const ROUNDS: usize = 12_000; // 4 events per round per producer
    println!(
        "{:<8} {:>16} {:>14} {:>13} {:>8}",
        "threads", "per-event ev/s", "staged ev/s", "drain ev/s", "ratio"
    );
    let mut ratio8 = 0.0f64;
    for threads in [1usize, 2, 4, 8] {
        let events = (threads * ROUNDS * 4) as f64;
        let per = saturation_per_event(threads, ROUNDS);
        let (hook, drain) = saturation_batched(threads, ROUNDS);
        let r = per.as_secs_f64() / hook.as_secs_f64();
        println!(
            "{:<8} {:>16.0} {:>14.0} {:>13.0} {:>7.2}x",
            threads,
            events / per.as_secs_f64(),
            events / hook.as_secs_f64(),
            events / drain.as_secs_f64(),
            r
        );
        if threads == 8 {
            ratio8 = r;
        }
    }
    if ratio8 < 2.0 {
        eprintln!("saturation: FAIL (8-producer staged/per-event hook-path ratio {ratio8:.2}x < 2x)");
        return false;
    }
    println!("(staged hooks take dispatch off the producers' critical path; the drain retires events through compiled DFA matrices, amortising snapshot, shard-lock and telemetry costs per batch)");
    true
}
