//! Batched dispatch — the compiled-automata drain against per-event
//! hook dispatch, on the 96-assertion Global saturation corpus with
//! telemetry attached. Three shapes:
//!
//! * `per_event/*` — the pre-batching architecture: every hook pays
//!   the full prologue inline, interpreted or compiled stepping.
//! * `stage_drain/N` — producer stages one chunk on its ring, the
//!   engine drains it in batches of `N` (the `Config::batch_size`
//!   knob); the pair is one iteration since criterion cannot split.
//! * `dispatch_batch/256` — the batch dispatcher alone on a prebuilt
//!   [`BatchBuf`], isolating the amortised hook prologue from ring
//!   decode.
//!
//! The companion table lives in EXPERIMENTS.md; `repro saturation`
//! prints the multi-producer rows and gates the 8-producer ratio.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::sync::Arc;
use tesla::prelude::*;
use tesla::runtime::BatchBuf;

const CLASSES: usize = 96;
const ROUNDS: usize = 1_024; // 4 events per round

/// The saturation corpus on a fresh engine: 96 Global scope/call
/// assertions, telemetry on. `compiled: false` registers without DFA
/// matrices (interpreted NFA stepping — the pre-PR dispatch).
fn engine(compiled: bool, batch_size: usize) -> (Arc<Tesla>, Vec<(NameId, NameId)>) {
    let mut config = Config {
        fail_mode: FailMode::Log,
        telemetry: true,
        ..Config::default()
    };
    config.batch_size = batch_size;
    let engine = Arc::new(Tesla::new(config));
    let automata: Vec<_> = (0..CLASSES)
        .map(|i| {
            let a = AssertionBuilder::within(&format!("scope_{i}"))
                .global()
                .named(&format!("saturation/{i}"))
                .previously(call(&format!("check_{i}")).arg_var("x").returns(0))
                .build()
                .unwrap();
            tesla::automata::compile(&a).unwrap()
        })
        .collect();
    if compiled {
        engine.register_batch(automata).unwrap();
    } else {
        let pairs = automata
            .into_iter()
            .map(|a| (Arc::new(a), None::<Arc<tesla::automata::CompiledDfa>>))
            .collect();
        engine.register_batch_compiled(pairs).unwrap();
    }
    let names = (0..CLASSES)
        .map(|i| {
            (
                engine.intern_fn(&format!("scope_{i}")),
                engine.intern_fn(&format!("check_{i}")),
            )
        })
        .collect();
    (engine, names)
}

fn bench_batched_dispatch(c: &mut Criterion) {
    let mut g = c.benchmark_group("batched_dispatch");
    g.sample_size(20);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.throughput(Throughput::Elements((ROUNDS * 4) as u64));

    for (label, compiled) in [("interpreted", false), ("compiled", true)] {
        let (e, names) = engine(compiled, 256);
        g.bench_function(format!("per_event/{label}"), |b| {
            b.iter(|| {
                let v = [Value(0)];
                for r in 0..ROUNDS {
                    let (scope, check) = names[r % CLASSES];
                    let _ = e.fn_entry(scope, &[]);
                    let _ = e.fn_entry(check, &v);
                    let _ = e.fn_exit(check, &v, Value(0));
                    let _ = e.fn_exit(scope, &[], Value(0));
                }
            })
        });
    }

    for batch_size in [64usize, 256, 1024] {
        let (e, names) = engine(true, batch_size);
        let ingress = BatchIngress::new(ROUNDS * 8 + 64);
        let mut producer = ingress.producer();
        g.bench_function(format!("stage_drain/{batch_size}"), |b| {
            b.iter(|| {
                let v = [Value(0)];
                for r in 0..ROUNDS {
                    let (scope, check) = names[r % CLASSES];
                    assert!(producer.fn_entry(scope, &[]));
                    assert!(producer.fn_entry(check, &v));
                    assert!(producer.fn_exit(check, &v, Value(0)));
                    assert!(producer.fn_exit(scope, &[], Value(0)));
                }
                while e.drain_ingress(&ingress).unwrap() > 0 {}
            })
        });
    }
    g.finish();

    let mut core = c.benchmark_group("batched_dispatch_core");
    core.throughput(Throughput::Elements(256));
    let (e, names) = engine(true, 256);
    let mut batch = BatchBuf::with_capacity(256);
    let v = [Value(0)];
    for r in 0..64 {
        let (scope, check) = names[r % CLASSES];
        batch.push_fn_entry(scope, &[]);
        batch.push_fn_entry(check, &v);
        batch.push_fn_exit(check, &v, Value(0));
        batch.push_fn_exit(scope, &[], Value(0));
    }
    core.bench_function("dispatch_batch/256", |b| {
        b.iter(|| e.dispatch_batch(&batch).unwrap())
    });
    core.finish();
}

criterion_group!(benches, bench_batched_dispatch);
criterion_main!(benches);
