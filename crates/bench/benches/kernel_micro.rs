//! Fig. 11a — the lmbench-style `open close` microbenchmark across
//! the kernel configurations of table 1.

use criterion::{criterion_group, criterion_main, Criterion};
use tesla::prelude::InitMode;
use tesla::workload::lmbench;
use tesla_bench::{make_kernel, KernelCfg};

fn bench_kernel_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11a_open_close");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for cfg in KernelCfg::ALL {
        let (k, _t) = make_kernel(cfg, InitMode::Lazy);
        lmbench::setup(&k);
        let pid = k.init_pid();
        lmbench::open_close_loop(&k, pid, 50).unwrap();
        g.bench_function(cfg.label(), |b| {
            b.iter(|| lmbench::open_close(&k, pid).unwrap())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("fig11a_poll");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for cfg in [
        KernelCfg::Release,
        KernelCfg::Infrastructure,
        KernelCfg::M,
        KernelCfg::All,
    ] {
        let (k, _t) = make_kernel(cfg, InitMode::Lazy);
        lmbench::setup(&k);
        let pid = k.init_pid();
        let (fd, _) = k.socketpair(pid).unwrap();
        g.bench_function(cfg.label(), |b| b.iter(|| k.sys_poll(pid, fd).unwrap()));
    }
    g.finish();
}

criterion_group!(benches, bench_kernel_micro);
criterion_main!(benches);
