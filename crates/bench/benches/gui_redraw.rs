//! Fig. 14b — window redraw times under an Xnee-like replayed session
//! across the instrumentation tiers.

use criterion::{criterion_group, criterion_main, Criterion};
use tesla::workload::xnee;
use tesla_bench::{gui_tiers, make_gui};

fn bench_gui_redraw(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14b_redraw");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    let script = xnee::session(50);
    for (label, mode) in gui_tiers() {
        let mut app = make_gui(mode);
        g.bench_function(label, |b| {
            b.iter(|| {
                for batch in &script {
                    app.run_loop_iteration(batch).unwrap();
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_gui_redraw);
criterion_main!(benches);
