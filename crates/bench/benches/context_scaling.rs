//! Context scaling — OLTP macrobenchmark throughput at 1/2/4/8
//! threads, uninstrumented vs the per-thread context vs the global
//! (sharded, snapshot-dispatched) context. The companion table lives
//! in EXPERIMENTS.md; the `repro` binary prints the same rows.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tesla::prelude::*;
use tesla::sim_kernel::Kernel;
use tesla::workload::oltp;
use tesla_bench::{make_kernel_in, KernelCfg};

fn kernel_for(ctx: Option<tesla::spec::Context>) -> Arc<Kernel> {
    match ctx {
        // `Release` registers nothing: the uninstrumented baseline.
        None => make_kernel_in(KernelCfg::Release, InitMode::Lazy, FailMode::Log, None).0,
        Some(c) => make_kernel_in(KernelCfg::All, InitMode::Lazy, FailMode::Log, Some(c)).0,
    }
}

fn bench_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("context_scaling");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    for threads in [1usize, 2, 4, 8] {
        for (label, ctx) in [
            ("uninstrumented", None),
            ("per_thread", Some(tesla::spec::Context::PerThread)),
            ("global", Some(tesla::spec::Context::Global)),
        ] {
            let params = oltp::OltpParams {
                threads,
                transactions: 100,
                socket_ops: 4,
                compute: 600,
            };
            g.bench_function(format!("{label}/{threads}t"), |b| {
                b.iter(|| {
                    let k = kernel_for(ctx);
                    oltp::run(&k, params);
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
