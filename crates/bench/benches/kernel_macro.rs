//! Fig. 11b — macrobenchmarks: OLTP-like (socket-intensive) and
//! build-like (FS/compute-intensive) workloads across configurations.

use criterion::{criterion_group, criterion_main, Criterion};
use tesla::prelude::InitMode;
use tesla::workload::{buildload, oltp};
use tesla_bench::{make_kernel, KernelCfg};

fn bench_kernel_macro(c: &mut Criterion) {
    let configs = [
        KernelCfg::Release,
        KernelCfg::Debug,
        KernelCfg::Infrastructure,
        KernelCfg::All,
    ];

    let mut g = c.benchmark_group("fig11b_oltp");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    g.sample_size(10);
    for cfg in configs {
        let (k, _t) = make_kernel(cfg, InitMode::Lazy);
        let params = oltp::OltpParams {
            threads: 4,
            transactions: 25,
            socket_ops: 3,
            compute: 4000,
        };
        g.bench_function(cfg.label(), |b| b.iter(|| oltp::run(&k, params)));
    }
    g.finish();

    let mut g = c.benchmark_group("fig11b_build");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    g.sample_size(10);
    for cfg in configs {
        let (k, _t) = make_kernel(cfg, InitMode::Lazy);
        let params = buildload::BuildParams {
            files: 25,
            compute: 250,
        };
        g.bench_function(cfg.label(), |b| b.iter(|| buildload::run(&k, params)));
    }
    g.finish();
}

criterion_group!(benches, bench_kernel_macro);
criterion_main!(benches);
