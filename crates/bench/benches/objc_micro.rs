//! Fig. 14a — message-send cost across the four instrumentation
//! tiers: release runtime, tracing-enabled runtime, trivial
//! interposition, full TESLA automaton.

use criterion::{criterion_group, criterion_main, Criterion};
use tesla_bench::{gui_tiers, make_gui};

fn bench_objc_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig14a_msg_send");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for (label, mode) in gui_tiers() {
        let mut app = make_gui(mode);
        // Enter the run-loop bound once so the TESLA tier's automaton
        // is live during the loop.
        app.run_loop_iteration(&[]).unwrap();
        let sel = app.world.sels.set_line_width;
        let ctx = app.world.ctx;
        let mut i = 0i64;
        g.bench_function(label, |b| {
            b.iter(|| {
                i += 1;
                tesla::sim_gui::objc::objc_msg_send(&mut app.world, ctx, sel, &[i % 5]).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_objc_micro);
criterion_main!(benches);
