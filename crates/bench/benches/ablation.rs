//! Ablations beyond the paper's headline figures:
//!
//! * naive vs fingerprint-based re-instrumentation (the §5.1 "could
//!   be pared down through further build optimisation");
//! * instance-table capacity sweep (preallocation sizing, §4.4.1);
//! * OR cross-product width (automaton compilation cost, §3.4.2);
//! * dispatch cost with no subscribers (the "Infrastructure" floor).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tesla::pipeline::{BuildOptions, BuildSystem, ReinstrumentPolicy};
use tesla::prelude::*;

fn bench_reinstrument_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_reinstrument");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    g.sample_size(10);
    let project = tesla::corpus::openssl_like(20);
    for (name, policy) in [
        ("naive", ReinstrumentPolicy::Naive),
        ("fingerprint", ReinstrumentPolicy::Fingerprint),
        ("delta", ReinstrumentPolicy::Delta),
    ] {
        g.bench_function(name, |b| {
            let mut opts = BuildOptions::tesla_toolchain();
            opts.reinstrument = policy;
            opts.verify = false;
            let mut bs = BuildSystem::new(project.clone(), opts);
            bs.build().unwrap();
            b.iter(|| {
                // Touch a file whose change does NOT alter the merged
                // manifest: fingerprint mode can skip re-instrumenting
                // the world.
                bs.touch("ssl/layer1.c");
                bs.build().unwrap()
            })
        });
    }
    g.finish();
}

fn bench_capacity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_capacity");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for capacity in [8usize, 64, 512] {
        g.bench_function(format!("distinct_bindings_cap{capacity}"), |b| {
            b.iter_batched(
                || {
                    let t = Tesla::new(Config {
                        fail_mode: FailMode::Log,
                        instance_capacity: capacity,
                        ..Config::default()
                    });
                    let a = AssertionBuilder::syscall()
                        .named("cap")
                        .previously(call("check").arg_var("x").returns(0))
                        .build()
                        .unwrap();
                    t.register(compile(&a).unwrap()).unwrap();
                    t
                },
                |t| {
                    let syscall = t.intern_fn("amd64_syscall");
                    let check = t.intern_fn("check");
                    t.fn_entry(syscall, &[]).unwrap();
                    for x in 0..256u64 {
                        let args = [Value(x)];
                        t.fn_entry(check, &args).unwrap();
                        t.fn_exit(check, &args, Value(0)).unwrap();
                    }
                    t.fn_exit(syscall, &[], Value(0)).unwrap();
                },
                BatchSize::PerIteration,
            )
        });
    }
    g.finish();
}

fn bench_or_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_or_compile");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for width in [2usize, 4, 6] {
        g.bench_function(format!("or_width_{width}"), |b| {
            b.iter(|| {
                let mut e = ExprBuilder::from(call("c0").arg_var("vp").returns(0));
                for i in 1..width {
                    e = e.or(call(&format!("c{i}")).arg_var("vp").returns(0));
                }
                let a = AssertionBuilder::syscall().previously(e).build().unwrap();
                compile(&a).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_dispatch_floor(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_dispatch_floor");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    // No subscribers at all: the cheapest possible hook.
    let t = Tesla::with_defaults();
    let f = t.intern_fn("unhooked_function");
    g.bench_function("fn_entry_no_subscribers", |b| {
        b.iter(|| t.fn_entry(f, &[Value(1)]).unwrap())
    });
    // A bound function with 96 classes registered (Infrastructure+).
    let t2 = std::sync::Arc::new(Tesla::with_defaults());
    tesla::sim_kernel::assertions::register_sets(
        &t2,
        &[tesla::sim_kernel::assertions::AssertionSet::All],
    )
    .unwrap();
    let sys = t2.intern_fn("amd64_syscall");
    g.bench_function("syscall_bound_96_classes", |b| {
        b.iter(|| {
            t2.fn_entry(sys, &[]).unwrap();
            t2.fn_exit(sys, &[], Value(0)).unwrap();
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_reinstrument_policy,
    bench_capacity,
    bench_or_width,
    bench_dispatch_floor,
    bench_instr_side
);
criterion_main!(benches);

/// Caller-side vs callee-side instrumentation (§4.2): the same
/// property enforced by hooking the callee's entry/exit blocks vs
/// wrapping every call site, run through the full pipeline +
/// interpreter.
fn bench_instr_side(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_instr_side");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for (name, modifier) in [("callee", ""), ("caller", "caller")] {
        let body = if modifier.is_empty() {
            "previously(check(x) == 0)".to_string()
        } else {
            format!("previously({modifier}(check(x) == 0))")
        };
        let src = format!(
            "int check(int x) {{ return 0; }}\n\
             int main(int x) {{\n\
                 int i = 0;\n\
                 while (i < 100) {{ check(x); i += 1; }}\n\
                 TESLA_WITHIN(main, {body});\n\
                 return 0;\n\
             }}"
        );
        let mut opts = BuildOptions::tesla_toolchain();
        opts.verify = false;
        let mut bs = BuildSystem::new(
            tesla::pipeline::Project::from_sources(&[("m.c", &src)]),
            opts,
        );
        let art = bs.build().unwrap();
        g.bench_function(name, |b| {
            b.iter(|| {
                let t = Tesla::with_defaults();
                tesla::pipeline::run_with_tesla(&art, &t, "main", &[3], 10_000_000).unwrap()
            })
        });
    }
    g.finish();
}
