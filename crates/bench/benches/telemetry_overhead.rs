//! Telemetry overhead — the full observability stack (lock-free
//! metrics registry, hook-latency timers, per-thread flight recorder)
//! against the plain instrumented kernel, on the OLTP macrobenchmark
//! at 1/2/4/8 threads. The acceptance budget for this PR is ≤5%
//! slowdown with everything attached; the companion table lives in
//! EXPERIMENTS.md and the `repro telemetry` subcommand prints the
//! same rows.

use criterion::{criterion_group, criterion_main, Criterion};
use tesla::prelude::*;
use tesla::workload::oltp;
use tesla_bench::{make_kernel, make_kernel_telemetry, KernelCfg};

fn bench_telemetry(c: &mut Criterion) {
    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(2));
    // Two event densities, matching `repro telemetry`: "dense" is
    // fig. 11b's macro parameterization (exposes per-event marginal
    // cost), "app" is the realistic SysBench-like density where the
    // ≤5% acceptance budget is measured.
    for (label, compute) in [("dense", 4_000usize), ("app", 80_000)] {
        for threads in [1usize, 2, 4, 8] {
            let params = oltp::OltpParams {
                threads,
                transactions: 100,
                socket_ops: 3,
                compute,
            };
            g.bench_function(format!("{label}/off/{threads}t"), |b| {
                b.iter(|| {
                    let (k, _t) = make_kernel(KernelCfg::All, InitMode::Lazy);
                    oltp::run(&k, params);
                })
            });
            g.bench_function(format!("{label}/on/{threads}t"), |b| {
                b.iter(|| {
                    let (k, t, rec) =
                        make_kernel_telemetry(KernelCfg::All, InitMode::Lazy, 1 << 12);
                    oltp::run(&k, params);
                    // Snapshotting is part of the observability cost.
                    let _ = t.unwrap().metrics().snapshot();
                    let _ = rec.unwrap().snapshot();
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_telemetry);
criterion_main!(benches);
