//! Fig. 10 / §5.2.1 — clean and incremental build times, default vs
//! TESLA toolchain, on the OpenSSL- and kernel-shaped corpora.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tesla::pipeline::{BuildOptions, BuildSystem};

fn noverify(mut o: BuildOptions) -> BuildOptions {
    o.verify = false;
    o
}

fn bench_build_time(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_build_time");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    g.sample_size(10);
    let project = tesla::corpus::openssl_like(20);

    for (name, opts) in [
        ("clean/default", noverify(BuildOptions::default_toolchain())),
        ("clean/tesla", noverify(BuildOptions::tesla_toolchain())),
        (
            "clean/tesla-delta",
            noverify(BuildOptions::delta_toolchain()),
        ),
    ] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || BuildSystem::new(project.clone(), opts),
                |mut bs| bs.build().unwrap(),
                BatchSize::PerIteration,
            )
        });
    }
    for (name, opts) in [
        (
            "incremental/default",
            noverify(BuildOptions::default_toolchain()),
        ),
        (
            "incremental/tesla",
            noverify(BuildOptions::tesla_toolchain()),
        ),
        (
            "incremental/tesla-delta",
            noverify(BuildOptions::delta_toolchain()),
        ),
    ] {
        g.bench_function(name, |b| {
            let mut bs = BuildSystem::new(project.clone(), opts);
            bs.build().unwrap();
            b.iter(|| {
                bs.touch("ssl/layer1.c");
                bs.build().unwrap()
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("sec521_kernel_build");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    g.sample_size(10);
    let kernel = tesla::corpus::kernel_like(12, 48);
    for (name, opts) in [
        (
            "incremental/default",
            noverify(BuildOptions::default_toolchain()),
        ),
        (
            "incremental/tesla48",
            noverify(BuildOptions::tesla_toolchain()),
        ),
        (
            "incremental/tesla48-delta",
            noverify(BuildOptions::delta_toolchain()),
        ),
    ] {
        g.bench_function(name, |b| {
            let mut bs = BuildSystem::new(kernel.clone(), opts);
            bs.build().unwrap();
            b.iter(|| {
                bs.touch("subsys/unit1.c");
                bs.build().unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build_time);
criterion_main!(benches);
