//! §7 "static analysis" — run-time benefit of instrumentation
//! elision. The patched OpenSSL-shaped client is proved safe by the
//! flow-sensitive model checker; the static toolchain therefore
//! weaves *no* hooks for it. This bench compares executing the same
//! program built three ways: uninstrumented baseline, full dynamic
//! TESLA instrumentation, and the statically-elided build (which
//! should sit near the baseline — the per-event overhead is gone,
//! not just reduced).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tesla::pipeline::{run_with_tesla, BuildOptions, BuildSystem};
use tesla::runtime::Tesla;

fn noverify(mut o: BuildOptions) -> BuildOptions {
    o.verify = false;
    o
}

fn bench_static_elision(c: &mut Criterion) {
    let mut g = c.benchmark_group("sec7_static_elision");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    let project = tesla::corpus::openssl_like_patched(8);

    let builds: Vec<(&str, _)> = [
        (
            "baseline/uninstrumented",
            noverify(BuildOptions::default_toolchain()),
        ),
        (
            "dynamic/instrumented",
            noverify(BuildOptions::tesla_toolchain()),
        ),
        ("static/elided", noverify(BuildOptions::static_toolchain())),
    ]
    .into_iter()
    .map(|(name, opts)| {
        let mut bs = BuildSystem::new(project.clone(), opts);
        (name, bs.build().unwrap())
    })
    .collect();

    // Sanity: elision actually happened, so the comparison is real.
    assert_eq!(builds[2].1.stats.sites_elided, 1);
    assert!(builds[1].1.stats.hooks_inserted > builds[2].1.stats.hooks_inserted);

    for (name, art) in &builds {
        g.bench_function(*name, |b| {
            b.iter_batched(
                Tesla::with_defaults,
                |t| {
                    let rc = run_with_tesla(art, &t, "main", &[9], 100_000_000).unwrap();
                    assert!(t.violations().is_empty());
                    rc
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench_static_elision);
criterion_main!(benches);
