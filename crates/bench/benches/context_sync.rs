//! Fig. 12 — the cost of the global (explicitly synchronised) context
//! vs the per-thread context, single-threaded and contended.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use tesla::prelude::*;

fn engine(global: bool) -> (Arc<Tesla>, ClassId) {
    let t = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        instance_capacity: 256,
        ..Config::default()
    }));
    let mut b = AssertionBuilder::bounded(
        tesla::spec::StaticEvent::Call("job".into()),
        tesla::spec::StaticEvent::ReturnFrom("job".into()),
    )
    .named("ctx");
    if global {
        b = b.global();
    }
    let a = b
        .previously(call("produce").arg_var("item").returns(0))
        .build()
        .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    (t, id)
}

fn bench_context(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig12_context");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for (name, global) in [("per_thread", false), ("global", true)] {
        // Single-threaded event cost.
        let (t, id) = engine(global);
        let job = t.intern_fn("job");
        let produce = t.intern_fn("produce");
        t.fn_entry(job, &[]).unwrap();
        let mut i = 0u64;
        g.bench_function(format!("{name}/single"), |b| {
            b.iter(|| {
                i = (i + 1) % 64;
                let args = [Value(i)];
                t.fn_entry(produce, &args).unwrap();
                t.fn_exit(produce, &args, Value(0)).unwrap();
                t.assertion_site(id, &[Value(i)]).unwrap();
            })
        });

        // Contended: 4 threads × 2000 events per iteration.
        g.sample_size(10);
        g.bench_function(format!("{name}/contended_4x2000"), |b| {
            b.iter(|| {
                let (t, id) = engine(global);
                let job = t.intern_fn("job");
                let produce = t.intern_fn("produce");
                let mut handles = Vec::new();
                for th in 0..4u64 {
                    let t = t.clone();
                    handles.push(std::thread::spawn(move || {
                        t.fn_entry(job, &[]).unwrap();
                        for i in 0..2000u64 {
                            let item = th * 1_000_000 + (i % 128);
                            let args = [Value(item)];
                            t.fn_entry(produce, &args).unwrap();
                            t.fn_exit(produce, &args, Value(0)).unwrap();
                            t.assertion_site(id, &[Value(item)]).unwrap();
                        }
                        t.fn_exit(job, &[], Value(0)).unwrap();
                        tesla::runtime::engine::reset_thread_state();
                    }));
                }
                for h in handles {
                    h.join().unwrap();
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_context);
criterion_main!(benches);
