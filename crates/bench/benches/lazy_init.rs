//! Fig. 13 — the lazy-initialisation optimisation: naive (eager
//! per-bound init of every class) vs lazy (first-event init), on
//! syscall-bound micro and macro workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use tesla::prelude::InitMode;
use tesla::workload::{lmbench, oltp};
use tesla_bench::{make_kernel, KernelCfg};

fn bench_lazy_init(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig13_micro_open_close");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    for (name, init) in [
        ("pre_naive", InitMode::Naive),
        ("post_lazy", InitMode::Lazy),
    ] {
        let (k, _t) = make_kernel(KernelCfg::All, init);
        lmbench::setup(&k);
        let pid = k.init_pid();
        lmbench::open_close_loop(&k, pid, 50).unwrap();
        g.bench_function(name, |b| b.iter(|| lmbench::open_close(&k, pid).unwrap()));
    }
    g.finish();

    let mut g = c.benchmark_group("fig13_macro_oltp");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(300));
    g.measurement_time(std::time::Duration::from_secs(1));
    g.sample_size(10);
    for (name, init) in [
        ("pre_naive", InitMode::Naive),
        ("post_lazy", InitMode::Lazy),
    ] {
        let (k, _t) = make_kernel(KernelCfg::All, init);
        let params = oltp::OltpParams {
            threads: 4,
            transactions: 20,
            socket_ops: 3,
            compute: 4000,
        };
        g.bench_function(name, |b| b.iter(|| oltp::run(&k, params)));
    }
    g.finish();
}

criterion_group!(benches, bench_lazy_init);
criterion_main!(benches);
