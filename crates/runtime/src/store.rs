//! Automata instance storage (§4.4.1).
//!
//! Each store (one global, one per thread) holds, for every automaton
//! class, a *preallocated, fixed-capacity* table of instances. An
//! instance is a current NFA state set plus a partial variable→value
//! binding; the instance "name" of the paper — `(∗)`, `(vp₁)`, … — is
//! exactly that binding.
//!
//! The lifecycle:
//!
//! * **Init** — entering the temporal bound creates the unnamed `(∗)`
//!   instance (eagerly in naive mode; lazily on the class's first
//!   event in optimised mode, §5.2.2).
//! * **Clone** — an event that binds a variable the instance does not
//!   know *clones* it: the original stays general, the clone is
//!   specialised (`(∗)` → `(vp₁)` in state 2, fig. 9).
//! * **Update** — an event whose bindings agree with the instance
//!   moves its state set in place.
//! * **Error** — an assertion-site event that no instance can take is
//!   a violation.
//! * **Cleanup** — leaving the bound finalises every instance:
//!   acceptance if its state set intersects the cleanup-safe set,
//!   violation otherwise; then the table is expunged.

use crate::engine::{ClassDef, EvictionPolicy};
use crate::event::{LifecycleEvent, Violation, ViolationKind};
use crate::faults::FaultKind;
use crate::handlers::Dispatch;
use crate::MAX_VARS;
use tesla_automata::compiled::DEAD;
use tesla_automata::{Guard, StateSet, SymbolId};
use tesla_spec::Value;

/// [`Instance::dfa`] sentinel: this instance is not tracked by a
/// compiled transition matrix and steps the interpreted NFA.
pub const NO_DFA: u16 = u16::MAX;

/// One automaton instance: a state set plus a partial binding.
#[derive(Debug, Clone, Copy)]
pub struct Instance {
    /// Current NFA states.
    pub states: StateSet,
    /// Variable values; only slots with the corresponding `known` bit
    /// set are meaningful.
    pub bindings: [Value; MAX_VARS],
    /// Bitmask of bound variables.
    pub known: u8,
    /// Store tick of the last event that touched this instance —
    /// the recency key for LRU eviction under
    /// [`crate::Config::max_instances`].
    pub touch: u64,
    /// Compiled-matrix state mirroring [`Instance::states`], or
    /// [`NO_DFA`] when the class has no matrix (guards) or the
    /// instance left the matrix's reachable set. `states` stays
    /// authoritative for every report and verdict; this is purely the
    /// dispatch accelerator.
    pub dfa: u16,
}

impl Instance {
    /// The unnamed `(∗)` instance in the automaton's start state.
    pub fn unnamed(start: StateSet) -> Instance {
        Instance {
            states: start,
            bindings: [Value::NULL; MAX_VARS],
            known: 0,
            touch: 0,
            dfa: NO_DFA,
        }
    }

    /// The instance's "name" for diagnostics: `(∗)` or `(v₀=3, v₂=7)`.
    pub fn name(&self, var_names: &[String]) -> String {
        if self.known == 0 {
            return "(∗)".to_string();
        }
        let mut parts = Vec::new();
        for (i, name) in var_names.iter().enumerate() {
            if self.known & (1 << i) != 0 {
                parts.push(format!("{name}={}", self.bindings[i]));
            }
        }
        format!("({})", parts.join(", "))
    }

    /// Bound values in variable order (unknown slots omitted).
    pub fn known_values(&self) -> Vec<Value> {
        (0..MAX_VARS)
            .filter(|i| self.known & (1 << i) != 0)
            .map(|i| self.bindings[i])
            .collect()
    }
}

/// Per-class state within one store.
#[derive(Debug, Default)]
pub struct ClassState {
    /// Live instances (preallocated to the class capacity on first
    /// use; cleared, not shrunk, at cleanup).
    pub instances: Vec<Instance>,
    /// The bound epoch this class was last materialised in (lazy
    /// initialisation, §5.2.2). 0 = never.
    pub epoch: u64,
    /// Degraded mode: set when the quota evicted an instance this
    /// epoch; a sampled share of further clones is shed and site
    /// misses are suppressed (they may be eviction artefacts). Reset
    /// at materialisation and finalisation.
    pub degraded: bool,
    /// Degraded-mode clone counter driving the 1-in-`degraded_sample`
    /// shed decision.
    pub shed_tick: u32,
}

/// Per-bound-group scope state within one store.
#[derive(Debug, Default)]
pub struct GroupState {
    /// Bound nesting depth (recursive bound functions).
    pub depth: u32,
    /// Monotonic epoch; bumped at every outermost bound entry.
    pub epoch: u64,
    /// Classes materialised this epoch (lazy mode): only these need
    /// finalisation at cleanup.
    pub materialized: Vec<u32>,
}

/// All automata state for one context (global, or one thread).
#[derive(Debug, Default)]
pub struct Store {
    /// Indexed by class id.
    pub classes: Vec<ClassState>,
    /// Indexed by group id.
    pub groups: Vec<GroupState>,
    /// Monotonic event clock; stamps [`Instance::touch`].
    pub tick: u64,
}

/// What `apply_event` observed.
#[derive(Debug, Default)]
pub struct ApplyOutcome {
    /// At least one instance took the transition (in place or via
    /// clone).
    pub matched: bool,
    /// A violation, if one was detected.
    pub violation: Option<Violation>,
}

impl Store {
    /// Grow to cover `n_classes` classes and `n_groups` groups.
    pub fn ensure(&mut self, n_classes: usize, n_groups: usize) {
        if self.classes.len() < n_classes {
            self.classes.resize_with(n_classes, ClassState::default);
        }
        if self.groups.len() < n_groups {
            self.groups.resize_with(n_groups, GroupState::default);
        }
    }

    /// Create the `(∗)` instance for `class` if it has not been
    /// materialised in the current epoch of its bound group.
    /// Returns `true` if an instance was created.
    pub fn materialize(&mut self, class: u32, def: &ClassDef, d: &Dispatch<'_>) -> bool {
        let epoch = self.groups[def.group as usize].epoch;
        let tick = self.tick;
        let cs = &mut self.classes[class as usize];
        if cs.epoch == epoch {
            return false;
        }
        // Instances surviving from an earlier epoch that was never
        // finalised (unbalanced bound exit, a dropped bound-end event,
        // or a fail-stop that abandoned the scope) must not leak into
        // the new epoch. They are *reclaimed*, not silently dropped:
        // each emits an `Evicted` event so the live-instance gauge
        // stays exact — the quota property ("live never exceeds
        // `max_instances`") has to survive abandoned scopes too.
        if !cs.instances.is_empty() {
            for slot in 0..cs.instances.len() {
                d.notify(&LifecycleEvent::Evicted {
                    class,
                    instance: slot as u32,
                });
            }
            cs.instances.clear();
        }
        if let Some(fp) = d.faults() {
            if fp.draw(FaultKind::AllocFailure) {
                // Allocation denied: report it as an overflow (the
                // §4.4.1 "adjust preallocation" signal) and leave the
                // class unmaterialised — the epoch is not recorded,
                // so the next event retries.
                fp.absorbed(FaultKind::AllocFailure);
                d.metrics().note_fault_absorbed();
                d.notify(&LifecycleEvent::Overflow { class });
                return false;
            }
        }
        cs.epoch = epoch;
        cs.degraded = false;
        cs.shed_tick = 0;
        if cs.instances.capacity() < def.capacity {
            cs.instances
                .reserve_exact(def.capacity - cs.instances.capacity());
        }
        let slot = cs.instances.len() as u32;
        let mut star = Instance::unnamed(def.automaton.initial_states());
        star.touch = tick;
        if let Some(c) = def.compiled.as_deref() {
            star.dfa = c.start();
        }
        cs.instances.push(star);
        self.groups[def.group as usize].materialized.push(class);
        // Events are built once and shared by every handler: handler
        // count must scale at the cost of a virtual call, not of
        // re-materialising (and for clones, re-allocating) payloads.
        d.notify(&LifecycleEvent::New {
            class,
            instance: slot,
        });
        true
    }

    /// Deliver one symbol occurrence to `class` with the event's
    /// dynamic bindings, implementing the clone-on-specialise
    /// semantics. `is_site` marks assertion-site events, whose failure
    /// to match is a violation.
    #[allow(clippy::too_many_arguments)]
    pub fn apply_event(
        &mut self,
        class: u32,
        def: &ClassDef,
        sym: SymbolId,
        bindings: &[(usize, Value)],
        is_site: bool,
        guard_ok: &mut dyn FnMut(&Guard) -> bool,
        d: &Dispatch<'_>,
    ) -> ApplyOutcome {
        let auto = &def.automaton;
        self.tick += 1;
        let tick = self.tick;
        let cs = &mut self.classes[class as usize];
        let mut out = ApplyOutcome::default();
        // Clones created this event: (source slot, instance).
        let mut clones: Vec<(u32, Instance)> = Vec::new();
        let n = cs.instances.len();
        for i in 0..n {
            let inst = cs.instances[i];
            // Binding compatibility: known variables must agree;
            // unknown ones specialise.
            let mut specialise_known: u8 = 0;
            let mut specialise_vals = [Value::NULL; MAX_VARS];
            let mut compatible = true;
            for &(var, val) in bindings {
                debug_assert!(var < MAX_VARS);
                let bit = 1u8 << var;
                if inst.known & bit != 0 {
                    if inst.bindings[var] != val {
                        compatible = false;
                        break;
                    }
                } else {
                    specialise_known |= bit;
                    specialise_vals[var] = val;
                }
            }
            if !compatible {
                continue;
            }
            // Compiled fast path: one dense matrix load instead of the
            // per-symbol transition-list walk. Equivalent by
            // construction — the matrix row was precomputed with
            // exactly `auto.step` over a guard-free automaton.
            let (next, next_dfa) = match def.compiled.as_deref() {
                Some(c) if inst.dfa != NO_DFA => {
                    let nd = c.step(inst.dfa, sym);
                    if nd == DEAD {
                        (StateSet::EMPTY, NO_DFA)
                    } else {
                        (c.states(nd), nd)
                    }
                }
                _ => (auto.step(&inst.states, sym, &mut *guard_ok), NO_DFA),
            };
            if next.is_empty() {
                if auto.strict && !is_site {
                    let v = def.violation(
                        ViolationKind::Strict,
                        inst.known_values(),
                        format!(
                            "instance {} has no transition on {}",
                            inst.name(&auto.var_names),
                            auto.symbols[sym.0 as usize].kind
                        ),
                    );
                    d.notify(&LifecycleEvent::Error {
                        violation: v.clone(),
                    });
                    out.violation = Some(v);
                    // Stop delivering the event, but fall through to
                    // commit clones already queued by earlier
                    // instances: in Log mode the caller continues, and
                    // those specialisations must survive for later
                    // events.
                    break;
                }
                // Irrelevant at this instance's progress: ignore.
                continue;
            }
            if specialise_known == 0 {
                let from = inst.states;
                cs.instances[i].states = next;
                cs.instances[i].dfa = next_dfa;
                cs.instances[i].touch = tick;
                out.matched = true;
                // The governor may sample these hot-path notifications
                // (observation only: the state advance above already
                // happened and is never shed).
                if d.admits_update() {
                    d.notify(&LifecycleEvent::Update {
                        class,
                        instance: i as u32,
                        sym,
                        from_states: from,
                        to_states: next,
                    });
                }
            } else {
                let mut clone = inst;
                clone.known |= specialise_known;
                for v in 0..MAX_VARS {
                    if specialise_known & (1 << v) != 0 {
                        clone.bindings[v] = specialise_vals[v];
                    }
                }
                clone.states = next;
                clone.dfa = next_dfa;
                clone.touch = tick;
                out.matched = true;
                clones.push((i as u32, clone));
            }
        }
        // The effective instance bound: the governance quota, if set,
        // never exceeds the preallocation capacity.
        let limit = def.quota.map_or(def.capacity, |q| q.min(def.capacity));
        for (src, clone) in clones {
            // Shed a sampled share of new specialisations — bounded
            // work in exchange for bounded memory (degraded mode) or a
            // held overhead SLO (governor with `allow_shed`). Each
            // source draws its own sampler: degraded mode phases per
            // scope epoch (unchanged quota semantics), while the
            // governor's phase rolls across scope generations so a
            // one-clone-per-scope workload still sheds its share.
            // In-place updates above are never shed, so the instances
            // we keep are tracked exactly.
            if cs.degraded {
                cs.shed_tick = cs.shed_tick.wrapping_add(1);
                if cs.shed_tick % def.degraded_sample == 0 {
                    d.notify(&LifecycleEvent::Shed { class });
                    continue;
                }
            }
            if d.shed_clone() {
                d.notify(&LifecycleEvent::Shed { class });
                continue;
            }
            // Deduplicate: an instance with identical bindings may
            // already exist (e.g. the same check ran twice); merge
            // state sets instead of duplicating.
            if let Some(j) = cs
                .instances
                .iter()
                .position(|e| e.known == clone.known && same_bindings(e, &clone))
            {
                let from = cs.instances[j].states;
                cs.instances[j].states.union_with(&clone.states);
                cs.instances[j].touch = tick;
                let to = cs.instances[j].states;
                // A merged set may leave the matrix's reachable space;
                // re-resolve, falling back to interpretation when it
                // does.
                cs.instances[j].dfa = def
                    .compiled
                    .as_deref()
                    .and_then(|c| c.resolve(&to))
                    .unwrap_or(NO_DFA);
                if from != to && !d.is_empty() {
                    d.notify(&LifecycleEvent::Update {
                        class,
                        instance: j as u32,
                        sym,
                        from_states: from,
                        to_states: to,
                    });
                }
            } else if cs.instances.len() < limit {
                let slot = cs.instances.len() as u32;
                cs.instances.push(clone);
                if !d.is_empty() {
                    // A clone is also a consumed transition: report it
                    // for coverage/weighted graphs.
                    d.notify(&LifecycleEvent::Clone {
                        class,
                        from_instance: src,
                        to_instance: slot,
                        bound: bindings.to_vec(),
                        states: clone.states,
                    });
                    d.notify(&LifecycleEvent::Update {
                        class,
                        instance: slot,
                        sym,
                        from_states: cs.instances[src as usize].states,
                        to_states: clone.states,
                    });
                }
            } else if def.eviction == EvictionPolicy::Lru {
                // Quota full: evict the least-recently-touched
                // instance and take its slot. Evict *before*
                // reporting the clone so the live gauge never reads
                // above the quota.
                let j = (0..cs.instances.len())
                    .min_by_key(|&i| cs.instances[i].touch)
                    .expect("limit >= 1 implies a live instance");
                let from_states = cs.instances[src as usize].states;
                cs.instances[j] = clone;
                cs.degraded = true;
                d.notify(&LifecycleEvent::Evicted {
                    class,
                    instance: j as u32,
                });
                if !d.is_empty() {
                    d.notify(&LifecycleEvent::Clone {
                        class,
                        from_instance: src,
                        to_instance: j as u32,
                        bound: bindings.to_vec(),
                        states: clone.states,
                    });
                    d.notify(&LifecycleEvent::Update {
                        class,
                        instance: j as u32,
                        sym,
                        from_states,
                        to_states: clone.states,
                    });
                }
            } else {
                d.notify(&LifecycleEvent::Overflow { class });
            }
        }
        if !out.matched && is_site && out.violation.is_none() {
            if cs.degraded || d.governed_shed() != 0 {
                // The matching instance may have been evicted or its
                // clone shed (by degraded mode or the governor): a
                // site miss while shedding is not evidence of a bug.
                // Count the suppressed check as shed work instead of
                // reporting a false positive.
                d.notify(&LifecycleEvent::Shed { class });
                return out;
            }
            let values: Vec<Value> = bindings.iter().map(|(_, v)| *v).collect();
            let v = def.violation(
                ViolationKind::Site,
                values.clone(),
                format!(
                    "assertion site reached with ({}) but no automaton instance can accept it",
                    describe_bindings(&auto.var_names, bindings)
                ),
            );
            d.notify(&LifecycleEvent::Error {
                violation: v.clone(),
            });
            out.violation = Some(v);
        }
        out
    }

    /// Finalise and expunge every instance of `class` («cleanup»).
    /// Returns the first cleanup violation, if any.
    pub fn finalise_class(
        &mut self,
        class: u32,
        def: &ClassDef,
        d: &Dispatch<'_>,
    ) -> Option<Violation> {
        let auto = &def.automaton;
        let cs = &mut self.classes[class as usize];
        let mut violation = None;
        for (i, inst) in cs.instances.iter().enumerate() {
            let accepted = auto.finalise_ok(&inst.states);
            d.notify(&LifecycleEvent::Finalise {
                class,
                instance: i as u32,
                accepted,
            });
            if !accepted && violation.is_none() {
                let v = def.violation(
                    ViolationKind::Cleanup,
                    inst.known_values(),
                    format!(
                        "instance {} finalised with a pending obligation",
                        inst.name(&auto.var_names)
                    ),
                );
                d.notify(&LifecycleEvent::Error {
                    violation: v.clone(),
                });
                violation = Some(v);
            }
        }
        cs.instances.clear();
        cs.epoch = 0;
        cs.degraded = false;
        cs.shed_tick = 0;
        violation
    }

    /// Live instance count for a class (tests, introspection).
    pub fn live_instances(&self, class: u32) -> usize {
        self.classes
            .get(class as usize)
            .map(|c| c.instances.len())
            .unwrap_or(0)
    }
}

fn same_bindings(a: &Instance, b: &Instance) -> bool {
    for v in 0..MAX_VARS {
        if b.known & (1 << v) != 0 && a.bindings[v] != b.bindings[v] {
            return false;
        }
    }
    true
}

fn describe_bindings(var_names: &[String], bindings: &[(usize, Value)]) -> String {
    bindings
        .iter()
        .map(|(i, v)| {
            let name = var_names.get(*i).map(String::as_str).unwrap_or("?");
            format!("{name}={v}")
        })
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unnamed_instance_has_star_name() {
        let i = Instance::unnamed(StateSet::singleton(0));
        assert_eq!(i.name(&["so".into()]), "(∗)");
    }

    #[test]
    fn named_instance_lists_bindings() {
        let mut i = Instance::unnamed(StateSet::singleton(1));
        i.known = 0b101;
        i.bindings[0] = Value(7);
        i.bindings[2] = Value(9);
        assert_eq!(i.name(&["a".into(), "b".into(), "c".into()]), "(a=7, c=9)");
        assert_eq!(i.known_values(), vec![Value(7), Value(9)]);
    }

    // Full store behaviour is exercised through the engine tests,
    // which own ClassDef construction.
}
