//! The libtesla engine: registration, dispatch and instrumentation
//! hooks.
//!
//! At class-registration time the engine compiles every automaton
//! symbol into *translator entries* — the runtime analogue of the
//! instrumenter's generated event translators (§4.2): per
//! (function, direction), (field), or (selector, direction) key, a
//! list of `(class, symbol, static checks, variable extractions)`.
//! At run time a hook does one table lookup; if nothing subscribes to
//! the event it returns immediately (the cost measured by the
//! "Infrastructure" kernel configuration of fig. 11).
//!
//! # Concurrency model
//!
//! The hook hot path is contention-free:
//!
//! * **Snapshot publication** — all dispatch state (tables, class
//!   definitions, handlers) lives in an immutable [`Snapshot`].
//!   Registration clones the current snapshot, mutates the copy and
//!   swaps in a fresh `Arc` under a brief write lock, bumping a
//!   version counter. Hooks keep a thread-local `Arc<Snapshot>` and
//!   revalidate it with one atomic load per event; the lock is only
//!   touched when the version moved. Concurrent threads never share a
//!   reader-writer lock on the dispatch tables.
//! * **Sharded Global store** — the Global-context store is striped
//!   over [`Config::global_shards`] mutexes. A bound group (and every
//!   class in it) maps deterministically to one shard
//!   (`group % n_shards`), so threads driving disjoint bound groups
//!   never contend, and a contended group only serialises its own
//!   shard, not all Global state.
//! * **Per-thread handles** — each thread caches its store, shadow
//!   call stack and snapshot in a single `EngineTls` record with a
//!   one-slot fast path, so steady-state hooks skip the per-event
//!   HashMap lookup entirely.
//!
//! Temporal bounds are tracked per *bound group* (classes sharing the
//! same start/end events and context). Two strategies, matching
//! §5.2.2 and fig. 13:
//!
//! * [`InitMode::Naive`] — on every bound entry, eagerly create a
//!   `(∗)` instance for **every** class in the group; on exit, touch
//!   every class again. Per-syscall work scales with the number of
//!   registered assertions — the paper's first implementation, almost
//!   2× slower Clang builds and 10× slower OLTP.
//! * [`InitMode::Lazy`] — bound entry bumps a per-group epoch;
//!   classes materialise their `(∗)` instance on their first real
//!   event, and only materialised classes are finalised at exit.

use crate::event::{Violation, ViolationKind};
use crate::faults::{FaultKind, FaultPlan, INJECTED_PANIC};
use crate::handlers::{Dispatch, EventHandler};
use crate::ingress::batch::{BatchBuf, BatchItem};
use crate::intern::{Interner, NameId};
use crate::store::Store;
use crate::telemetry::metrics::{HookKind, HookTimer, MetricsRegistry, N_HOOKS};
use crate::telemetry::{Governor, GovernorConfig};
use crate::{RegisterError, MAX_VARS};
use parking_lot::{Mutex, RwLock};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::Mutex as StdMutex;
use tesla_automata::{Automaton, CompiledDfa, Direction, Guard, Symbol, SymbolId, SymbolKind};
use tesla_spec::{ArgPattern, Context, FieldOp, Value};

/// Identifies a registered automaton class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClassId(pub u32);

/// Violation disposition (§4.4.2): fail-stop by default, or log and
/// continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailMode {
    /// Hooks return `Err(Violation)` — the program fail-stops.
    #[default]
    FailStop,
    /// Violations are recorded (see [`Tesla::violations`]) and
    /// execution continues.
    Log,
    /// Violations are recorded and then the hook panics — the
    /// kernel-style `panic()` disposition of §4.4.2 for hosts that
    /// cannot thread a `Result` out of instrumented code.
    Panic,
}

/// What happens when a class's live-instance quota
/// ([`Config::max_instances`]) is full and another clone arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Refuse the clone and emit [`crate::LifecycleEvent::Overflow`]
    /// — the paper's preallocation semantics; no tracked instance is
    /// ever discarded.
    #[default]
    Error,
    /// Evict the least-recently-touched instance to admit the clone,
    /// and put the class in degraded mode (shedding a sampled share
    /// of further clones) for the rest of the bound epoch. Violation
    /// detection stays sound for the instances that remain.
    Lru,
}

/// A [`Config`] the engine refused at construction (zero-sized limit
/// that would otherwise surface as a divide/modulo panic or a
/// zero-capacity store deep inside a hook).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `global_shards` was 0 — the shard index is `group % shards`.
    ZeroGlobalShards,
    /// `instance_capacity` was 0 — no class could ever materialise.
    ZeroInstanceCapacity,
    /// `max_instances` was `Some(0)` — every instance would be shed.
    ZeroMaxInstances,
    /// `degraded_sample` was 0 — the shed sampler divides by it.
    ZeroDegradedSample,
    /// The governor SLO was at or below 1.0× — no instrumented run
    /// can hold an overhead below "no overhead at all".
    GovernorSlo,
    /// The governor tick period was 0 — the controller divides by it.
    ZeroGovernorTick,
    /// `batch_size` was 0 — the batched drain could never make
    /// progress.
    ZeroBatchSize,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroGlobalShards => write!(f, "global_shards must be at least 1"),
            ConfigError::ZeroInstanceCapacity => {
                write!(f, "instance_capacity must be at least 1")
            }
            ConfigError::ZeroMaxInstances => {
                write!(f, "max_instances, when set, must be at least 1")
            }
            ConfigError::ZeroDegradedSample => {
                write!(f, "degraded_sample must be at least 1")
            }
            ConfigError::GovernorSlo => {
                write!(
                    f,
                    "governor slo_milli must exceed 1000 (an overhead SLO above 1.0x)"
                )
            }
            ConfigError::ZeroGovernorTick => {
                write!(f, "governor tick_events must be at least 1")
            }
            ConfigError::ZeroBatchSize => {
                write!(f, "batch_size must be at least 1")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Automaton-instance initialisation strategy (§5.2.2, fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InitMode {
    /// Eager per-bound-entry initialisation of every class.
    Naive,
    /// Lazy initialisation on the class's first event.
    #[default]
    Lazy,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Violation disposition.
    pub fail_mode: FailMode,
    /// Initialisation strategy.
    pub init_mode: InitMode,
    /// Instance-table capacity per class per store (§4.4.1
    /// preallocation).
    pub instance_capacity: usize,
    /// Number of mutex stripes over the Global-context store. Each
    /// bound group maps to one shard; threads touching disjoint
    /// groups never contend. Clamped to at least 1.
    pub global_shards: usize,
    /// Enable telemetry: the engine attaches its
    /// [`MetricsRegistry`] as a lifecycle handler and times every
    /// instrumentation hook into its latency histograms. The
    /// recording path is lock-free (relaxed atomics on preallocated
    /// arrays), preserving the contention-free dispatch invariant.
    pub telemetry: bool,
    /// Per-class live-instance quota (per store). `None` leaves only
    /// the preallocation bound ([`Config::instance_capacity`]); when
    /// set, the effective bound is the minimum of the two and
    /// [`Config::eviction`] decides what happens at the quota.
    pub max_instances: Option<usize>,
    /// Disposition when the quota is full and another clone arrives.
    pub eviction: EvictionPolicy,
    /// Degraded-mode shed rate: once a class has evicted, one in
    /// every `degraded_sample` subsequent clones for it is dropped
    /// (with a [`crate::LifecycleEvent::Shed`] event) until the bound
    /// epoch ends. Must be at least 1.
    pub degraded_sample: u32,
    /// Optional seeded fault-injection plan (chaos testing). The
    /// engine draws from it at every fault's absorption site; `None`
    /// costs one branch per site.
    pub faults: Option<Arc<FaultPlan>>,
    /// Optional adaptive overhead governor
    /// ([`crate::telemetry::Governor`]). Setting this forces
    /// [`Config::telemetry`] on — the controller's feedback signal is
    /// the hook-latency telemetry.
    pub governor: Option<GovernorConfig>,
    /// Maximum events drained per batch by [`Tesla::drive`] and
    /// [`Tesla::dispatch_batch`]. Batched drain amortises snapshot
    /// loads, telemetry counter updates and Global-shard locking over
    /// the whole batch; `1` disables batching (every event pays the
    /// full per-event prologue, exactly as the direct hook calls do).
    pub batch_size: usize,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            fail_mode: FailMode::FailStop,
            init_mode: InitMode::Lazy,
            instance_capacity: 64,
            global_shards: 8,
            telemetry: false,
            max_instances: None,
            eviction: EvictionPolicy::Error,
            degraded_sample: 4,
            faults: None,
            governor: None,
            batch_size: 256,
        }
    }
}

/// A registered class: compiled automaton plus bookkeeping.
pub struct ClassDef {
    /// The compiled automaton. Shared with the compile cache (and any
    /// other engine registered from it) rather than cloned per
    /// registration.
    pub automaton: Arc<Automaton>,
    /// Dense `(state × symbol) → state` transition matrix for the
    /// guard-free fragment ([`CompiledDfa`]); `None` keeps this class
    /// on the interpreted NFA path. Never a semantic fork: compiled
    /// instances keep materialising the same [`tesla_automata::StateSet`]s
    /// the interpreter would.
    pub compiled: Option<Arc<CompiledDfa>>,
    /// Bound-group id.
    pub group: u32,
    /// Instance-table capacity.
    pub capacity: usize,
    /// How often this class's assertion site was reached (coverage).
    pub site_hits: AtomicU64,
    /// Violations attributed to this class.
    pub violation_count: AtomicU64,
    /// `incallstack` guard targets with their interned ids, so guard
    /// evaluation needs no interner lookup on the hot path.
    pub guard_fns: Vec<(String, NameId)>,
    /// Live-instance quota ([`Config::max_instances`]).
    pub quota: Option<usize>,
    /// Quota disposition ([`Config::eviction`]).
    pub eviction: EvictionPolicy,
    /// Degraded-mode shed rate ([`Config::degraded_sample`]).
    pub degraded_sample: u32,
}

impl ClassDef {
    /// Build a violation record for this class.
    pub fn violation(&self, kind: ViolationKind, values: Vec<Value>, detail: String) -> Violation {
        self.violation_count.fetch_add(1, Ordering::Relaxed);
        Violation {
            assertion: self.automaton.name.clone(),
            kind,
            loc: self.automaton.loc.clone(),
            source: self.automaton.source.clone(),
            values,
            detail,
        }
    }
}

/// A static check compiled from an argument pattern.
#[derive(Debug, Clone, Copy)]
enum Check {
    Const(Value),
    Flags(u64),
    Bitmask(u64),
}

impl Check {
    #[inline]
    fn ok(&self, v: Value) -> bool {
        match self {
            Check::Const(c) => *c == v,
            Check::Flags(required) => v.0 & required == *required,
            Check::Bitmask(mask) => v.0 & !mask == 0,
        }
    }
}

/// Where an event value comes from.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Arg(u8),
    Ret,
    Receiver,
    Object,
    StoredValue,
}

/// One compiled event translator: the static-check chain plus the
/// dynamic variable extraction of §4.2.
#[derive(Debug, Clone)]
struct Translator {
    class: u32,
    sym: SymbolId,
    context: Context,
    /// Minimum argument count for the pattern to apply.
    min_args: u8,
    checks: Vec<(Slot, Check)>,
    binds: Vec<(u8, Slot)>,
    /// Field events: required struct type (None = wildcard) and
    /// operator.
    struct_filter: Option<NameId>,
    field_op: Option<FieldOp>,
}

/// Per-function dispatch row.
#[derive(Debug, Default, Clone)]
struct FnTable {
    entry: Vec<Translator>,
    exit: Vec<Translator>,
    /// Bound groups whose scope starts at this function's entry/exit.
    bound_start_entry: Vec<u32>,
    bound_start_exit: Vec<u32>,
    /// Bound groups whose scope ends at this function's entry/exit.
    bound_end_entry: Vec<u32>,
    bound_end_exit: Vec<u32>,
    /// Maintain the shadow call stack for this function (it appears in
    /// an `incallstack` guard).
    push_stack: bool,
}

/// Per-selector dispatch row.
#[derive(Debug, Default, Clone)]
struct SelTable {
    entry: Vec<Translator>,
    exit: Vec<Translator>,
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GroupKey {
    start_fn: NameId,
    start_dir: Direction,
    end_fn: NameId,
    end_dir: Direction,
    context: Context,
}

/// A bound group: classes sharing the same temporal bounds + context.
#[derive(Debug, Clone)]
struct GroupDef {
    context: Context,
    classes: Vec<u32>,
}

#[derive(Default, Clone)]
struct Tables {
    fn_tables: Vec<FnTable>,
    field_tables: Vec<Vec<Translator>>,
    sel_tables: Vec<SelTable>,
    groups: Vec<GroupDef>,
    group_index: HashMap<GroupKey, u32>,
}

impl Tables {
    fn fn_table_mut(&mut self, f: NameId) -> &mut FnTable {
        let i = f.0 as usize;
        if self.fn_tables.len() <= i {
            self.fn_tables.resize_with(i + 1, FnTable::default);
        }
        &mut self.fn_tables[i]
    }

    fn field_table_mut(&mut self, f: NameId) -> &mut Vec<Translator> {
        let i = f.0 as usize;
        if self.field_tables.len() <= i {
            self.field_tables.resize_with(i + 1, Vec::new);
        }
        &mut self.field_tables[i]
    }

    fn sel_table_mut(&mut self, s: NameId) -> &mut SelTable {
        let i = s.0 as usize;
        if self.sel_tables.len() <= i {
            self.sel_tables.resize_with(i + 1, SelTable::default);
        }
        &mut self.sel_tables[i]
    }
}

/// An immutable, atomically-published view of all dispatch state.
/// Hooks work against one snapshot for the whole event; registration
/// never mutates a published snapshot.
#[derive(Default)]
struct Snapshot {
    tables: Tables,
    classes: Vec<Arc<ClassDef>>,
    handlers: Vec<Arc<dyn EventHandler>>,
}

/// Per-thread, per-engine cached state: the last snapshot seen, the
/// PerThread store and the shadow call stack.
struct EngineTls {
    /// Snapshot version this thread last observed.
    version: Cell<u64>,
    snap: RefCell<Arc<Snapshot>>,
    store: Rc<RefCell<Store>>,
    stack: Rc<RefCell<Vec<NameId>>>,
}

impl EngineTls {
    fn new() -> Rc<EngineTls> {
        Rc::new(EngineTls {
            version: Cell::new(0),
            snap: RefCell::new(Arc::new(Snapshot::default())),
            store: Rc::new(RefCell::new(Store::default())),
            stack: Rc::new(RefCell::new(Vec::new())),
        })
    }
}

/// Global-shard lock state threaded through one hook invocation — or,
/// on the batched drain, through a whole batch.
///
/// Per-event hooks use [`ShardCache::per_event`]: every store access
/// locks and unlocks its shard, exactly the pre-batching behaviour
/// (including the lock-poison fault draw). The batched drain uses
/// [`ShardCache::batched`], which *coalesces* consecutive accesses to
/// the same shard into one held guard: a run of events against one
/// bound group pays one lock acquisition, not one per store access.
/// Coalescing is disabled whenever a fault plan is configured — the
/// lock-poison fault must be drawn at every acquisition site, and a
/// panic while a coalesced guard spans several events would poison
/// more state than the per-event path ever could.
struct ShardCache<'a> {
    coalesce: bool,
    shard: usize,
    guard: Option<std::sync::MutexGuard<'a, Store>>,
}

impl<'a> ShardCache<'a> {
    /// Lock-per-access semantics (the per-event hook path).
    fn per_event() -> ShardCache<'a> {
        ShardCache {
            coalesce: false,
            shard: usize::MAX,
            guard: None,
        }
    }

    /// Guard-coalescing semantics for the batched drain. `coalesce`
    /// must be `false` when a fault plan is configured.
    fn batched(coalesce: bool) -> ShardCache<'a> {
        ShardCache {
            coalesce,
            shard: usize::MAX,
            guard: None,
        }
    }

    /// Release any held guard (the batch flush point).
    fn release(&mut self) {
        self.guard = None;
        self.shard = usize::MAX;
    }
}

/// The libtesla engine handle. Cheap to share via `Arc`; all hook
/// methods take `&self`.
pub struct Tesla {
    id: u64,
    config: Config,
    interner: Interner,
    /// Published dispatch state. The write lock doubles as the
    /// registration lock; readers only take it after a version miss.
    snapshot: RwLock<Arc<Snapshot>>,
    /// Bumped (while the write lock is held) on every publish; hooks
    /// revalidate their cached snapshot against it with one atomic
    /// load.
    snap_version: AtomicU64,
    /// Striped Global-context stores; a bound group lives entirely in
    /// shard `group % len`. Deliberately `std::sync::Mutex`: its
    /// poisoning is the detection mechanism the lock-poison recovery
    /// path (and the chaos harness) relies on.
    global_shards: Box<[StdMutex<Store>]>,
    violation_log: Mutex<Vec<Violation>>,
    /// The engine's metrics registry. Always present (so callers can
    /// plumb values like `sites_elided` unconditionally); only
    /// attached as an event handler — and only fed hook timings —
    /// when [`Config::telemetry`] is set.
    metrics: Arc<MetricsRegistry>,
    /// The adaptive overhead governor, present only when
    /// [`Config::governor`] was set. Ticked from the hook prologue;
    /// its actuators reach the store through [`Dispatch`].
    governor: Option<Arc<Governor>>,
}

thread_local! {
    /// One-slot fast path: the engine this thread talked to last.
    static TL_ACTIVE: RefCell<Option<(u64, Rc<EngineTls>)>> = const { RefCell::new(None) };
    /// Fallback for threads using several engines, keyed by engine id.
    static TL_ENGINES: RefCell<HashMap<u64, Rc<EngineTls>>> =
        RefCell::new(HashMap::new());
}

static NEXT_ENGINE_ID: AtomicU64 = AtomicU64::new(1);

impl Tesla {
    /// Create an engine with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration — use [`Tesla::try_new`]
    /// where the configuration is not statically known to be valid.
    pub fn new(config: Config) -> Tesla {
        match Tesla::try_new(config) {
            Ok(engine) => engine,
            Err(e) => panic!("invalid TESLA configuration: {e}"),
        }
    }

    /// Create an engine, validating the configuration's sizing limits
    /// up front so a zero shard count (or any other zero-sized limit)
    /// is a typed error here rather than a modulo-by-zero panic in
    /// the first instrumentation hook.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] naming the offending field.
    pub fn try_new(mut config: Config) -> Result<Tesla, ConfigError> {
        if config.global_shards == 0 {
            return Err(ConfigError::ZeroGlobalShards);
        }
        if config.instance_capacity == 0 {
            return Err(ConfigError::ZeroInstanceCapacity);
        }
        if config.max_instances == Some(0) {
            return Err(ConfigError::ZeroMaxInstances);
        }
        if config.degraded_sample == 0 {
            return Err(ConfigError::ZeroDegradedSample);
        }
        if config.batch_size == 0 {
            return Err(ConfigError::ZeroBatchSize);
        }
        if let Some(g) = config.governor {
            if g.slo_milli <= 1000 {
                return Err(ConfigError::GovernorSlo);
            }
            if g.tick_events == 0 {
                return Err(ConfigError::ZeroGovernorTick);
            }
            // The governor's feedback signal *is* the hook-latency
            // telemetry: a governed engine is a telemetered engine.
            config.telemetry = true;
        }
        let n_shards = config.global_shards;
        let governor = config.governor.map(|g| Arc::new(Governor::new(g)));
        let engine = Tesla {
            id: NEXT_ENGINE_ID.fetch_add(1, Ordering::Relaxed),
            config,
            interner: Interner::new(),
            snapshot: RwLock::new(Arc::new(Snapshot::default())),
            // Start at 1: a fresh `EngineTls` (version 0) always
            // pulls the current snapshot on first use.
            snap_version: AtomicU64::new(1),
            global_shards: (0..n_shards)
                .map(|_| StdMutex::new(Store::default()))
                .collect(),
            violation_log: Mutex::new(Vec::new()),
            metrics: Arc::new(MetricsRegistry::new()),
            governor,
        };
        if engine.config.telemetry {
            engine.add_handler(engine.metrics.clone());
        }
        Ok(engine)
    }

    /// Create with the default configuration (fail-stop, lazy init).
    pub fn with_defaults() -> Tesla {
        Tesla::new(Config::default())
    }

    /// The engine's name interner.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// Intern a function name for use with the function hooks.
    pub fn intern_fn(&self, name: &str) -> NameId {
        self.interner.intern(name)
    }

    /// Intern a structure field name.
    pub fn intern_field(&self, name: &str) -> NameId {
        self.interner.intern(name)
    }

    /// Intern a structure type name.
    pub fn intern_struct(&self, name: &str) -> NameId {
        self.interner.intern(name)
    }

    /// Intern an Objective-C-style selector.
    pub fn intern_selector(&self, name: &str) -> NameId {
        self.interner.intern(name)
    }

    /// Add a lifecycle-event handler (§4.4.2). Publishes a new
    /// snapshot; events already in flight keep the handler set they
    /// started with. Classes registered before the handler are
    /// replayed through [`EventHandler::on_register`], so aggregating
    /// handlers see every class no matter the attach order.
    pub fn add_handler(&self, h: Arc<dyn EventHandler>) {
        let mut slot = self.snapshot.write();
        let mut next = Snapshot {
            tables: slot.tables.clone(),
            classes: slot.classes.clone(),
            handlers: slot.handlers.clone(),
        };
        for (i, c) in next.classes.iter().enumerate() {
            if catch_unwind(AssertUnwindSafe(|| h.on_register(i as u32, &c.automaton))).is_err() {
                self.metrics.note_handler_panic();
            }
        }
        next.handlers.push(h);
        *slot = Arc::new(next);
        self.snap_version.fetch_add(1, Ordering::Release);
    }

    /// The engine's metrics registry (always present; populated by
    /// dispatch only under [`Config::telemetry`]). External
    /// aggregates — e.g. the static checker's `sites_elided` — can be
    /// recorded here regardless of the telemetry flag.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Whether this engine was configured with telemetry enabled.
    pub fn telemetry_enabled(&self) -> bool {
        self.config.telemetry
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Hook prologue timing guard: `Some` only under telemetry *and*
    /// when this invocation was picked by the latency sampler —
    /// unsampled hooks pay no clock read and drop no guard. Also
    /// counts the event into the governor's controller, which may run
    /// a feedback tick here (every `tick_events` hook events).
    #[inline]
    fn hook_timer(&self, kind: HookKind) -> Option<HookTimer<'_>> {
        if let Some(g) = &self.governor {
            g.on_event(&self.metrics);
        }
        if self.config.telemetry {
            self.metrics.timer(kind)
        } else {
            None
        }
    }

    /// The adaptive overhead governor, when configured
    /// ([`Config::governor`]): inspect its decision log, current
    /// escalation level and overhead estimate.
    pub fn governor(&self) -> Option<&Governor> {
        self.governor.as_deref()
    }

    /// Violations recorded in [`FailMode::Log`] mode (fail-stop mode
    /// records them here too, before returning them).
    pub fn violations(&self) -> Vec<Violation> {
        self.violation_log.lock().clone()
    }

    /// Drop recorded violations.
    pub fn clear_violations(&self) {
        self.violation_log.lock().clear();
    }

    /// Register a compiled automaton class. Returns its id, used by
    /// the [`Tesla::assertion_site`] hook.
    ///
    /// Publishes one new snapshot; for many classes prefer
    /// [`Tesla::register_batch`], which publishes once for the whole
    /// batch.
    ///
    /// # Errors
    ///
    /// Returns [`RegisterError`] if the automaton exceeds engine
    /// limits.
    pub fn register(&self, automaton: Automaton) -> Result<ClassId, RegisterError> {
        self.register_batch(vec![automaton]).map(|ids| ids[0])
    }

    /// Register several automata, building and publishing a single
    /// snapshot. Returns the class ids in argument order. On error
    /// nothing is registered.
    ///
    /// # Errors
    ///
    /// Returns [`RegisterError`] if any automaton exceeds engine
    /// limits.
    pub fn register_batch(&self, automata: Vec<Automaton>) -> Result<Vec<ClassId>, RegisterError> {
        let pairs = automata
            .into_iter()
            .map(|a| {
                let compiled = CompiledDfa::build(&a).map(Arc::new);
                (Arc::new(a), compiled)
            })
            .collect();
        self.register_batch_compiled(pairs)
    }

    /// [`Tesla::register_batch`] over pre-shared automata with their
    /// memoised transition matrices, as produced by
    /// [`tesla_automata::CompileCache::compile_manifest_with_dfas`] —
    /// the batch path that never re-runs subset construction for an
    /// automaton the cache has already compiled (or already proved
    /// uncompilable).
    ///
    /// # Errors
    ///
    /// Returns [`RegisterError`] if any automaton exceeds engine
    /// limits; on error nothing is registered.
    pub fn register_batch_compiled(
        &self,
        pairs: Vec<(Arc<Automaton>, Option<Arc<CompiledDfa>>)>,
    ) -> Result<Vec<ClassId>, RegisterError> {
        for (a, _) in &pairs {
            if a.var_names.len() > MAX_VARS {
                return Err(RegisterError::TooManyVariables(a.var_names.len()));
            }
        }
        let mut slot = self.snapshot.write();
        let mut next = Snapshot {
            tables: slot.tables.clone(),
            classes: slot.classes.clone(),
            handlers: slot.handlers.clone(),
        };
        let mut ids = Vec::with_capacity(pairs.len());
        for (a, c) in pairs {
            ids.push(ClassId(self.register_into(&mut next, a, c)));
        }
        *slot = Arc::new(next);
        self.snap_version.fetch_add(1, Ordering::Release);
        Ok(ids)
    }

    /// Wire one automaton into a snapshot under construction.
    fn register_into(
        &self,
        next: &mut Snapshot,
        automaton: Arc<Automaton>,
        compiled: Option<Arc<CompiledDfa>>,
    ) -> u32 {
        let tables = &mut next.tables;
        let class = next.classes.len() as u32;

        // Bound group.
        let gk = GroupKey {
            start_fn: self.interner.intern(&automaton.bound.start_fn),
            start_dir: automaton.bound.start_dir,
            end_fn: self.interner.intern(&automaton.bound.end_fn),
            end_dir: automaton.bound.end_dir,
            context: automaton.context,
        };
        let group = match tables.group_index.get(&gk) {
            Some(g) => {
                let g = *g;
                tables.groups[g as usize].classes.push(class);
                g
            }
            None => {
                let g = tables.groups.len() as u32;
                tables.groups.push(GroupDef {
                    context: automaton.context,
                    classes: vec![class],
                });
                tables.group_index.insert(gk.clone(), g);
                // Wire the bound events into the function tables.
                match gk.start_dir {
                    Direction::Entry => tables.fn_table_mut(gk.start_fn).bound_start_entry.push(g),
                    Direction::Exit => tables.fn_table_mut(gk.start_fn).bound_start_exit.push(g),
                }
                match gk.end_dir {
                    Direction::Entry => tables.fn_table_mut(gk.end_fn).bound_end_entry.push(g),
                    Direction::Exit => tables.fn_table_mut(gk.end_fn).bound_end_exit.push(g),
                }
                g
            }
        };

        // Guard functions need shadow-stack maintenance.
        let mut guard_fns: Vec<(String, NameId)> = Vec::new();
        for t in &automaton.transitions {
            if let Some(Guard::InCallStack(f)) = &t.guard {
                let id = self.interner.intern(f);
                tables.fn_table_mut(id).push_stack = true;
                if !guard_fns.iter().any(|(_, g)| *g == id) {
                    guard_fns.push((f.clone(), id));
                }
            }
        }

        // Event translators.
        for sym in &automaton.symbols {
            match &sym.kind {
                SymbolKind::Function {
                    name,
                    args,
                    direction,
                    ret,
                    ..
                } => {
                    let t =
                        compile_fn_translator(class, sym, args, ret.as_ref(), automaton.context);
                    let id = self.interner.intern(name);
                    let ft = tables.fn_table_mut(id);
                    match direction {
                        Direction::Entry => ft.entry.push(t),
                        Direction::Exit => ft.exit.push(t),
                    }
                }
                SymbolKind::FieldAssign {
                    struct_name,
                    field_name,
                    object,
                    op,
                    value,
                } => {
                    let struct_filter = if struct_name.is_empty() {
                        None
                    } else {
                        Some(self.interner.intern(struct_name))
                    };
                    let mut t = Translator {
                        class,
                        sym: sym.id,
                        context: automaton.context,
                        min_args: 0,
                        checks: Vec::new(),
                        binds: Vec::new(),
                        struct_filter,
                        field_op: Some(*op),
                    };
                    compile_pattern(object, Slot::Object, &mut t);
                    compile_pattern(value, Slot::StoredValue, &mut t);
                    let id = self.interner.intern(field_name);
                    tables.field_table_mut(id).push(t);
                }
                SymbolKind::Message {
                    receiver,
                    selector,
                    args,
                    direction,
                    ret,
                } => {
                    let mut t =
                        compile_fn_translator(class, sym, args, ret.as_ref(), automaton.context);
                    compile_pattern(receiver, Slot::Receiver, &mut t);
                    let id = self.interner.intern(selector);
                    let st = tables.sel_table_mut(id);
                    match direction {
                        Direction::Entry => st.entry.push(t),
                        Direction::Exit => st.exit.push(t),
                    }
                }
                SymbolKind::Site | SymbolKind::BoundStart | SymbolKind::BoundEnd => {}
            }
        }

        next.classes.push(Arc::new(ClassDef {
            automaton,
            compiled,
            group,
            capacity: self.config.instance_capacity,
            site_hits: AtomicU64::new(0),
            violation_count: AtomicU64::new(0),
            guard_fns,
            quota: self.config.max_instances,
            eviction: self.config.eviction,
            degraded_sample: self.config.degraded_sample,
        }));
        // Cold path: let aggregating handlers build their dense
        // per-class tables before any event for this class fires.
        let def = &next.classes[class as usize];
        for h in &next.handlers {
            if catch_unwind(AssertUnwindSafe(|| h.on_register(class, &def.automaton))).is_err() {
                self.metrics.note_handler_panic();
            }
        }
        class
    }

    /// Compile and register a [`tesla_spec::Assertion`] in one step.
    ///
    /// # Errors
    ///
    /// Returns a string describing compilation or registration
    /// failure.
    pub fn register_assertion(&self, assertion: &tesla_spec::Assertion) -> Result<ClassId, String> {
        let a = tesla_automata::compile(assertion).map_err(|e| e.to_string())?;
        self.register(a).map_err(|e| e.to_string())
    }

    /// The registered class definitions (introspection, DOT output).
    pub fn class_defs(&self) -> Vec<Arc<ClassDef>> {
        self.snapshot.read().classes.clone()
    }

    // ------------------------------------------------------------------
    // Instrumentation hooks
    // ------------------------------------------------------------------

    /// Function-entry hook.
    ///
    /// # Errors
    ///
    /// In fail-stop mode, returns the violation that this event
    /// exposed.
    #[inline]
    pub fn fn_entry(&self, f: NameId, args: &[Value]) -> Result<(), Violation> {
        let _t = self.hook_timer(HookKind::FnEntry);
        let (tls, snap) = self.tls();
        let mut cache = ShardCache::per_event();
        let mut out = Ok(());
        for _ in 0..self.chaos_reps(HookKind::FnEntry) {
            let r = self.fn_entry_inner(&tls, &snap, &mut cache, f, args);
            if out.is_ok() {
                out = r;
            }
        }
        out
    }

    /// Dispatch-table miss triage: distinguish "interned but not
    /// instrumented" (a legal no-op — the common fast path for
    /// uninstrumented functions) from "never interned" (a malformed
    /// event: a typo'd replay trace or an id minted by another
    /// engine, which previously passed vacuously). One relaxed atomic
    /// load on the happy path; the exact interner length is consulted
    /// only when the lower bound cannot vouch for the id.
    #[inline]
    fn check_known(&self, id: NameId, what: &str) -> Result<(), Violation> {
        let idx = id.0 as usize;
        if idx < self.interner.len_lower_bound() || idx < self.interner.len() {
            return Ok(());
        }
        Err(Violation::unknown_name(what, &format!("#{}", id.0)))
    }

    fn fn_entry_inner<'a>(
        &'a self,
        tls: &EngineTls,
        snap: &Snapshot,
        cache: &mut ShardCache<'a>,
        f: NameId,
        args: &[Value],
    ) -> Result<(), Violation> {
        let Some(ft) = snap.tables.fn_tables.get(f.0 as usize) else {
            return self.check_known(f, "function");
        };
        if ft.push_stack {
            tls.stack.borrow_mut().push(f);
        }
        if ft.bound_start_entry.is_empty() && ft.bound_end_entry.is_empty() && ft.entry.is_empty() {
            return Ok(());
        }
        let mut first = None;
        for &g in &ft.bound_start_entry {
            self.enter_group(snap, tls, cache, g);
        }
        self.run_translators(snap, tls, cache, &ft.entry, args, None, None, None, &mut first);
        for &g in &ft.bound_end_entry {
            self.exit_group(snap, tls, cache, g, &mut first);
        }
        self.dispose(first)
    }

    /// Function-exit hook; `args` are the entry arguments, `ret` the
    /// return value.
    ///
    /// The shadow call stack is popped *after* exit translators and
    /// bound ends run, so an `incallstack(f)` guard evaluated during
    /// `f`'s own exit event still sees `f` on the stack — symmetric
    /// with the entry event, which pushes before running translators.
    ///
    /// # Errors
    ///
    /// In fail-stop mode, returns the violation that this event
    /// exposed.
    #[inline]
    pub fn fn_exit(&self, f: NameId, args: &[Value], ret: Value) -> Result<(), Violation> {
        let _t = self.hook_timer(HookKind::FnExit);
        let (tls, snap) = self.tls();
        let mut cache = ShardCache::per_event();
        let mut out = Ok(());
        for _ in 0..self.chaos_reps(HookKind::FnExit) {
            let r = self.fn_exit_inner(&tls, &snap, &mut cache, f, args, ret);
            if out.is_ok() {
                out = r;
            }
        }
        out
    }

    fn fn_exit_inner<'a>(
        &'a self,
        tls: &EngineTls,
        snap: &Snapshot,
        cache: &mut ShardCache<'a>,
        f: NameId,
        args: &[Value],
        ret: Value,
    ) -> Result<(), Violation> {
        let Some(ft) = snap.tables.fn_tables.get(f.0 as usize) else {
            return self.check_known(f, "function");
        };
        let mut first = None;
        let active =
            !ft.bound_start_exit.is_empty() || !ft.bound_end_exit.is_empty() || !ft.exit.is_empty();
        if active {
            for &g in &ft.bound_start_exit {
                self.enter_group(snap, tls, cache, g);
            }
            self.run_translators(
                snap,
                tls,
                cache,
                &ft.exit,
                args,
                Some(ret),
                None,
                None,
                &mut first,
            );
            for &g in &ft.bound_end_exit {
                self.exit_group(snap, tls, cache, g, &mut first);
            }
        }
        if ft.push_stack {
            let mut s = tls.stack.borrow_mut();
            if let Some(pos) = s.iter().rposition(|x| *x == f) {
                s.remove(pos);
            }
        }
        if active {
            self.dispose(first)
        } else {
            Ok(())
        }
    }

    /// Structure-field-assignment hook (§4.2 "Field assignment"):
    /// the structure type, the field, the containing object and the
    /// assigned value, plus the operator for compound assignments.
    ///
    /// # Errors
    ///
    /// In fail-stop mode, returns the violation that this event
    /// exposed.
    #[inline]
    pub fn field_store(
        &self,
        struct_id: NameId,
        field_id: NameId,
        object: Value,
        op: FieldOp,
        value: Value,
    ) -> Result<(), Violation> {
        let _t = self.hook_timer(HookKind::FieldStore);
        let (tls, snap) = self.tls();
        let mut cache = ShardCache::per_event();
        let mut out = Ok(());
        for _ in 0..self.chaos_reps(HookKind::FieldStore) {
            let r =
                self.field_store_inner(&tls, &snap, &mut cache, struct_id, field_id, object, op, value);
            if out.is_ok() {
                out = r;
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn field_store_inner<'a>(
        &'a self,
        tls: &EngineTls,
        snap: &Snapshot,
        cache: &mut ShardCache<'a>,
        struct_id: NameId,
        field_id: NameId,
        object: Value,
        op: FieldOp,
        value: Value,
    ) -> Result<(), Violation> {
        let Some(entries) = snap.tables.field_tables.get(field_id.0 as usize) else {
            return self
                .check_known(struct_id, "struct")
                .and_then(|()| self.check_known(field_id, "field"));
        };
        if entries.is_empty() {
            return Ok(());
        }
        let mut first = None;
        self.run_translators(
            snap,
            tls,
            cache,
            entries,
            &[],
            None,
            Some((struct_id, object, op, value)),
            None,
            &mut first,
        );
        self.dispose(first)
    }

    /// Message-send (method entry) hook (§4.3).
    ///
    /// # Errors
    ///
    /// In fail-stop mode, returns the violation that this event
    /// exposed.
    #[inline]
    pub fn msg_entry(&self, sel: NameId, receiver: Value, args: &[Value]) -> Result<(), Violation> {
        let _t = self.hook_timer(HookKind::MsgEntry);
        let (tls, snap) = self.tls();
        let mut cache = ShardCache::per_event();
        let mut out = Ok(());
        for _ in 0..self.chaos_reps(HookKind::MsgEntry) {
            let r = self.msg_entry_inner(&tls, &snap, &mut cache, sel, receiver, args);
            if out.is_ok() {
                out = r;
            }
        }
        out
    }

    fn msg_entry_inner<'a>(
        &'a self,
        tls: &EngineTls,
        snap: &Snapshot,
        cache: &mut ShardCache<'a>,
        sel: NameId,
        receiver: Value,
        args: &[Value],
    ) -> Result<(), Violation> {
        let Some(st) = snap.tables.sel_tables.get(sel.0 as usize) else {
            return self.check_known(sel, "selector");
        };
        if st.entry.is_empty() {
            return Ok(());
        }
        let mut first = None;
        self.run_translators(
            snap,
            tls,
            cache,
            &st.entry,
            args,
            None,
            None,
            Some(receiver),
            &mut first,
        );
        self.dispose(first)
    }

    /// Method-return hook (§4.3).
    ///
    /// # Errors
    ///
    /// In fail-stop mode, returns the violation that this event
    /// exposed.
    #[inline]
    pub fn msg_exit(
        &self,
        sel: NameId,
        receiver: Value,
        args: &[Value],
        ret: Value,
    ) -> Result<(), Violation> {
        let _t = self.hook_timer(HookKind::MsgExit);
        let (tls, snap) = self.tls();
        let mut cache = ShardCache::per_event();
        let mut out = Ok(());
        for _ in 0..self.chaos_reps(HookKind::MsgExit) {
            let r = self.msg_exit_inner(&tls, &snap, &mut cache, sel, receiver, args, ret);
            if out.is_ok() {
                out = r;
            }
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn msg_exit_inner<'a>(
        &'a self,
        tls: &EngineTls,
        snap: &Snapshot,
        cache: &mut ShardCache<'a>,
        sel: NameId,
        receiver: Value,
        args: &[Value],
        ret: Value,
    ) -> Result<(), Violation> {
        let Some(st) = snap.tables.sel_tables.get(sel.0 as usize) else {
            return self.check_known(sel, "selector");
        };
        if st.exit.is_empty() {
            return Ok(());
        }
        let mut first = None;
        self.run_translators(
            snap,
            tls,
            cache,
            &st.exit,
            args,
            Some(ret),
            None,
            Some(receiver),
            &mut first,
        );
        self.dispose(first)
    }

    /// Assertion-site hook: execution reached the assertion's source
    /// location with the scope's variable values (in variable-index
    /// order).
    ///
    /// # Errors
    ///
    /// In fail-stop mode, returns the violation that this event
    /// exposed.
    pub fn assertion_site(&self, class: ClassId, values: &[Value]) -> Result<(), Violation> {
        let _t = self.hook_timer(HookKind::AssertionSite);
        let (tls, snap) = self.tls();
        let mut cache = ShardCache::per_event();
        let mut out = Ok(());
        for _ in 0..self.chaos_reps(HookKind::AssertionSite) {
            let r = self.assertion_site_inner(&tls, &snap, &mut cache, class, values);
            if out.is_ok() {
                out = r;
            }
        }
        out
    }

    fn assertion_site_inner<'a>(
        &'a self,
        tls: &EngineTls,
        snap: &Snapshot,
        cache: &mut ShardCache<'a>,
        class: ClassId,
        values: &[Value],
    ) -> Result<(), Violation> {
        let Some(def) = snap.classes.get(class.0 as usize).cloned() else {
            // A site event for a class that was never registered must
            // not panic the monitor — replayed traces carry class ids
            // chosen by the producer.
            return Err(Violation::unknown_name(
                "assertion class",
                &format!("#{}", class.0),
            ));
        };
        def.site_hits.fetch_add(1, Ordering::Relaxed);
        let n = values.len().min(MAX_VARS);
        let mut bindings = [(0usize, Value::NULL); MAX_VARS];
        for (i, v) in values.iter().take(n).enumerate() {
            bindings[i] = (i, *v);
        }
        let sym = def.automaton.site_sym;
        let mut first = None;
        let d = self.dispatch(snap);
        self.with_store(def.automaton.context, def.group, tls, cache, |store| {
            store.ensure(snap.classes.len(), snap.tables.groups.len());
            if store.groups[def.group as usize].depth == 0 {
                // Outside the temporal bound: the site is unreachable
                // by automaton semantics; treat as unchecked.
                return;
            }
            store.materialize(class.0, &def, &d);
            let mut guard_ok = guard_eval(&def, &tls.stack);
            let out =
                store.apply_event(class.0, &def, sym, &bindings[..n], true, &mut guard_ok, &d);
            if let Some(v) = out.violation {
                first.get_or_insert(v);
            }
        });
        self.dispose(first)
    }

    /// Dispatch a staged batch of events through the hooks with the
    /// per-event prologue amortised: one snapshot load for the whole
    /// batch, one telemetry counter RMW per hook kind
    /// ([`crate::telemetry::metrics::MetricsRegistry::add_hook_calls`]),
    /// and — when no fault plan is active — the Global store-shard
    /// lock held across consecutive same-shard events instead of
    /// being re-taken per event.
    ///
    /// Semantics are byte-identical to dispatching the same events
    /// through the individual hooks in order: violations are logged
    /// and disposed per [`Config::fail_mode`] exactly as the
    /// per-event path does, and the drain stops at the first event
    /// whose hook returns `Err` (fail-stop violations, unknown
    /// names). Counter flushes happen when this call returns —
    /// including on the error path — so metrics never miss events
    /// that ran ("flush on verdict").
    ///
    /// # Errors
    ///
    /// `(index, violation)` — the offset *within the batch* of the
    /// event that stopped the drain, and the violation it raised.
    /// Items after it were not dispatched.
    pub fn dispatch_batch(&self, batch: &BatchBuf) -> Result<(), (usize, Violation)> {
        let (tls, snap) = self.tls();
        let mut tally = [0u64; N_HOOKS];
        // Two clock reads per batch replace the per-event sampling
        // countdown: the whole batch is timed once and the mean is
        // recorded for every sample the per-event path would have
        // taken, so governor cost estimates read batch-amortised
        // latencies.
        let batch_t0 = if self.config.telemetry {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let mut out: Result<(), (usize, Violation)> = Ok(());
        {
            // Fault plans draw per lock acquisition (poison
            // injection), so guard coalescing is disabled under one:
            // the per-event lock pattern must be preserved exactly.
            let mut cache = ShardCache::batched(self.config.faults.is_none());
            for (idx, item) in batch.items.iter().enumerate() {
                // An unknown-name rejection never reaches a hook on
                // the per-event path (name resolution fails first),
                // so it ticks neither the governor nor telemetry.
                if let BatchItem::Reject { ref violation, .. } = *item {
                    out = Err((idx, violation.clone()));
                    break;
                }
                let kind = item.kind();
                if let Some(g) = &self.governor {
                    g.on_event(&self.metrics);
                }
                tally[kind as usize] += 1;
                let mut first: Result<(), Violation> = Ok(());
                for _ in 0..self.chaos_reps(kind) {
                    let r = match *item {
                        BatchItem::FnEntry { f, args } => {
                            self.fn_entry_inner(&tls, &snap, &mut cache, f, batch.slice(args))
                        }
                        BatchItem::FnExit { f, args, ret } => {
                            self.fn_exit_inner(&tls, &snap, &mut cache, f, batch.slice(args), ret)
                        }
                        BatchItem::FieldStore {
                            strct,
                            field,
                            object,
                            op,
                            value,
                        } => self.field_store_inner(
                            &tls, &snap, &mut cache, strct, field, object, op, value,
                        ),
                        BatchItem::MsgEntry { sel, recv, args } => {
                            self.msg_entry_inner(&tls, &snap, &mut cache, sel, recv, batch.slice(args))
                        }
                        BatchItem::MsgExit {
                            sel,
                            recv,
                            args,
                            ret,
                        } => self.msg_exit_inner(
                            &tls,
                            &snap,
                            &mut cache,
                            sel,
                            recv,
                            batch.slice(args),
                            ret,
                        ),
                        BatchItem::Site { class, vals } => self.assertion_site_inner(
                            &tls,
                            &snap,
                            &mut cache,
                            class,
                            batch.slice(vals),
                        ),
                        BatchItem::Reject { .. } => unreachable!("handled above"),
                    };
                    if first.is_ok() {
                        first = r;
                    }
                }
                if let Err(v) = first {
                    out = Err((idx, v));
                    break;
                }
            }
            // `cache` drops here, releasing any held shard guard
            // before counters flush — the flush-on-verdict point.
        }
        if let Some(t0) = batch_t0 {
            let dispatched: u64 = tally.iter().sum();
            if dispatched > 0 {
                let per_event_ns =
                    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX) / dispatched;
                for kind in HookKind::ALL {
                    self.metrics
                        .record_batch_samples(kind, tally[kind as usize], per_event_ns);
                    self.metrics.add_hook_calls(kind, tally[kind as usize]);
                }
            }
        }
        out
    }

    // Convenience string-keyed hooks (tests, examples).

    /// [`Tesla::fn_entry`] with a string name (interned on the spot).
    ///
    /// # Errors
    ///
    /// See [`Tesla::fn_entry`].
    pub fn fn_entry_named(&self, name: &str, args: &[Value]) -> Result<(), Violation> {
        self.fn_entry(self.interner.intern(name), args)
    }

    /// [`Tesla::fn_exit`] with a string name.
    ///
    /// Unlike [`Tesla::fn_entry_named`] this does **not** intern on
    /// the spot: an exit for a function this engine has never seen
    /// enter is a malformed event stream (most often a typo'd replay
    /// trace), and interning it would make the typo pass vacuously
    /// forever after.
    ///
    /// # Errors
    ///
    /// Returns a [`ViolationKind::UnknownName`] violation when `name`
    /// was never interned; otherwise see [`Tesla::fn_exit`].
    pub fn fn_exit_named(&self, name: &str, args: &[Value], ret: Value) -> Result<(), Violation> {
        match self.interner.get(name) {
            Some(id) => self.fn_exit(id, args, ret),
            None => Err(Violation::unknown_name("function", name)),
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Coverage report: per class, whether its assertion site was
    /// ever reached (the §3.5.2 test-suite coverage analysis).
    pub fn coverage(&self) -> Vec<(String, u64, u64)> {
        self.snapshot
            .read()
            .classes
            .iter()
            .map(|c| {
                (
                    c.automaton.name.clone(),
                    c.site_hits.load(Ordering::Relaxed),
                    c.violation_count.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Number of registered classes.
    pub fn n_classes(&self) -> usize {
        self.snapshot.read().classes.len()
    }

    /// Live instances for a class in the current thread's store
    /// (tests/introspection).
    pub fn live_instances_here(&self, class: ClassId) -> usize {
        let (tls, snap) = self.tls();
        let def = snap.classes[class.0 as usize].clone();
        let mut n = 0;
        let mut cache = ShardCache::per_event();
        self.with_store(def.automaton.context, def.group, &tls, &mut cache, |s| {
            n = s.live_instances(class.0);
        });
        n
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    /// Hook prologue: this thread's cached state plus the current
    /// snapshot. Steady state costs one atomic load and no locks; the
    /// snapshot read lock is only taken when the version moved.
    #[inline]
    fn tls(&self) -> (Rc<EngineTls>, Arc<Snapshot>) {
        let tls = TL_ACTIVE.with(|a| {
            {
                let b = a.borrow();
                if let Some((id, rc)) = &*b {
                    if *id == self.id {
                        return rc.clone();
                    }
                }
            }
            let rc = TL_ENGINES.with(|m| {
                m.borrow_mut()
                    .entry(self.id)
                    .or_insert_with(EngineTls::new)
                    .clone()
            });
            *a.borrow_mut() = Some((self.id, rc.clone()));
            rc
        });
        let v = self.snap_version.load(Ordering::Acquire);
        if tls.version.get() != v {
            *tls.snap.borrow_mut() = self.snapshot.read().clone();
            tls.version.set(v);
        }
        let snap = tls.snap.borrow().clone();
        (tls, snap)
    }

    fn dispose(&self, v: Option<Violation>) -> Result<(), Violation> {
        match v {
            None => Ok(()),
            Some(v) => {
                self.violation_log.lock().push(v.clone());
                match self.config.fail_mode {
                    FailMode::FailStop => Err(v),
                    FailMode::Log => Ok(()),
                    FailMode::Panic => panic!("{v}"),
                }
            }
        }
    }

    /// The engine's fault-injection plan, if one was configured.
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.config.faults.as_ref()
    }

    /// Bundle a snapshot's handlers with the metrics sink and fault
    /// plan for one hook invocation's event deliveries.
    #[inline]
    fn dispatch<'a>(&'a self, snap: &'a Snapshot) -> Dispatch<'a> {
        Dispatch::new(&snap.handlers, &self.metrics, self.config.faults.as_deref())
            .with_governor(self.governor.as_deref())
    }

    /// Hook-prologue chaos draw: how many times to run the hook body.
    /// 1 in normal operation; 0 when the plan drops the event, 2 when
    /// it duplicates it. Clock skew is absorbed here too, as a wild
    /// sample in the hook's latency histogram.
    #[inline]
    fn chaos_reps(&self, kind: HookKind) -> u32 {
        let Some(fp) = self.config.faults.as_deref() else {
            return 1;
        };
        if fp.draw(FaultKind::ClockSkew) {
            self.metrics.note_clock_skew(kind, fp.skew_ns());
            fp.absorbed(FaultKind::ClockSkew);
            self.metrics.note_fault_absorbed();
        }
        if fp.draw(FaultKind::EventDrop) {
            fp.absorbed(FaultKind::EventDrop);
            self.metrics.note_fault_absorbed();
            return 0;
        }
        if fp.draw(FaultKind::EventDuplicate) {
            fp.absorbed(FaultKind::EventDuplicate);
            self.metrics.note_fault_absorbed();
            return 2;
        }
        1
    }

    /// Lock one Global shard, recovering (and counting) a poisoned
    /// mutex: the store data is a bag of monotone counters and
    /// instance tables that a half-completed event leaves stale, not
    /// corrupt, so continuing is strictly better than propagating the
    /// poison panic into every future hook.
    fn lock_shard<'a>(&self, m: &'a StdMutex<Store>) -> std::sync::MutexGuard<'a, Store> {
        match m.lock() {
            Ok(g) => g,
            Err(poisoned) => {
                m.clear_poison();
                self.metrics.note_lock_poison_recovery();
                poisoned.into_inner()
            }
        }
    }

    /// Run `f` against the store owning `group`'s state in `ctx`:
    /// one of the Global shards, or this thread's store. `cache`
    /// carries the shard guard across accesses when coalescing (the
    /// batched drain); per-event callers pass a fresh
    /// [`ShardCache::per_event`].
    #[inline]
    fn with_store<'a, R>(
        &'a self,
        ctx: Context,
        group: u32,
        tls: &EngineTls,
        cache: &mut ShardCache<'a>,
        f: impl FnOnce(&mut Store) -> R,
    ) -> R {
        match ctx {
            Context::Global => {
                let shard = group as usize % self.global_shards.len();
                if cache.coalesce {
                    if cache.guard.is_none() || cache.shard != shard {
                        // Drop the previous shard's guard before
                        // taking the next: at most one shard lock is
                        // ever held, so batch order can never deadlock
                        // against another engine thread.
                        cache.release();
                        cache.guard = Some(self.lock_shard(&self.global_shards[shard]));
                        cache.shard = shard;
                    }
                    return f(cache.guard.as_mut().expect("guard installed above"));
                }
                let m = &self.global_shards[shard];
                if let Some(fp) = self.config.faults.as_deref() {
                    if fp.draw(FaultKind::LockPoison) {
                        // Poison the shard for real: panic while the
                        // guard is held so its unwinding drop marks
                        // the mutex, then let the ordinary recovery
                        // path below absorb it.
                        let guard = self.lock_shard(m);
                        let _ = catch_unwind(AssertUnwindSafe(move || {
                            let _held = guard;
                            std::panic::panic_any(INJECTED_PANIC);
                        }));
                        fp.absorbed(FaultKind::LockPoison);
                        self.metrics.note_fault_absorbed();
                    }
                }
                let mut g = self.lock_shard(m);
                f(&mut g)
            }
            Context::PerThread => f(&mut tls.store.borrow_mut()),
        }
    }

    fn enter_group<'a>(
        &'a self,
        snap: &Snapshot,
        tls: &EngineTls,
        cache: &mut ShardCache<'a>,
        g: u32,
    ) {
        let gd = &snap.tables.groups[g as usize];
        let naive = self.config.init_mode == InitMode::Naive;
        let d = self.dispatch(snap);
        self.with_store(gd.context, g, tls, cache, |store| {
            store.ensure(snap.classes.len(), snap.tables.groups.len());
            let gs = &mut store.groups[g as usize];
            gs.depth += 1;
            if gs.depth > 1 {
                return;
            }
            gs.epoch += 1;
            gs.materialized.clear();
            if naive {
                // Eager init: touch every class in the group — the
                // cost the lazy optimisation removes (fig. 13).
                for &c in &gd.classes {
                    store.materialize(c, &snap.classes[c as usize], &d);
                }
            }
        });
    }

    fn exit_group<'a>(
        &'a self,
        snap: &Snapshot,
        tls: &EngineTls,
        cache: &mut ShardCache<'a>,
        g: u32,
        first: &mut Option<Violation>,
    ) {
        let gd = &snap.tables.groups[g as usize];
        let naive = self.config.init_mode == InitMode::Naive;
        let d = self.dispatch(snap);
        self.with_store(gd.context, g, tls, cache, |store| {
            store.ensure(snap.classes.len(), snap.tables.groups.len());
            {
                let gs = &mut store.groups[g as usize];
                if gs.depth == 0 {
                    return; // exit without matching entry: ignore
                }
                gs.depth -= 1;
                if gs.depth > 0 {
                    return;
                }
            }
            let to_finalise: Vec<u32> = if naive {
                gd.classes.clone()
            } else {
                std::mem::take(&mut store.groups[g as usize].materialized)
            };
            for c in to_finalise {
                if let Some(v) = store.finalise_class(c, &snap.classes[c as usize], &d) {
                    first.get_or_insert(v);
                }
            }
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn run_translators<'a>(
        &'a self,
        snap: &Snapshot,
        tls: &EngineTls,
        cache: &mut ShardCache<'a>,
        entries: &[Translator],
        args: &[Value],
        ret: Option<Value>,
        field: Option<(NameId, Value, FieldOp, Value)>,
        receiver: Option<Value>,
        first: &mut Option<Violation>,
    ) {
        if entries.is_empty() {
            return;
        }
        // Fixed-size binding buffer: no per-event heap allocation.
        let mut bindings = [(0usize, Value::NULL); MAX_VARS];
        'entry: for t in entries {
            // Static checks (§4.2: "the generated code checks static
            // event parameters ... otherwise, the translator branches
            // to the static checks for the next automaton").
            if (args.len() as u8) < t.min_args {
                continue;
            }
            if let Some((struct_id, _, op, _)) = &field {
                if let Some(want) = t.struct_filter {
                    if want != *struct_id {
                        continue;
                    }
                }
                if t.field_op != Some(*op) {
                    continue;
                }
            }
            let slot_value = |slot: &Slot| -> Option<Value> {
                match slot {
                    Slot::Arg(i) => args.get(*i as usize).copied(),
                    Slot::Ret => ret,
                    Slot::Receiver => receiver,
                    Slot::Object => field.map(|(_, o, _, _)| o),
                    Slot::StoredValue => field.map(|(_, _, _, v)| v),
                }
            };
            for (slot, check) in &t.checks {
                match slot_value(slot) {
                    Some(v) if check.ok(v) => {}
                    _ => continue 'entry,
                }
            }
            // Dynamic variable extraction.
            let mut nb = 0;
            for (var, slot) in &t.binds {
                match slot_value(slot) {
                    Some(v) => {
                        bindings[nb] = (*var as usize, v);
                        nb += 1;
                    }
                    None => continue 'entry,
                }
            }
            let def = &snap.classes[t.class as usize];
            let d = self.dispatch(snap);
            self.with_store(t.context, def.group, tls, cache, |store| {
                store.ensure(snap.classes.len(), snap.tables.groups.len());
                if store.groups[def.group as usize].depth == 0 {
                    return; // outside the temporal bound
                }
                store.materialize(t.class, def, &d);
                let mut guard_ok = guard_eval(def, &tls.stack);
                let out = store.apply_event(
                    t.class,
                    def,
                    t.sym,
                    &bindings[..nb],
                    false,
                    &mut guard_ok,
                    &d,
                );
                if let Some(v) = out.violation {
                    first.get_or_insert(v);
                }
            });
        }
    }
}

/// Guard evaluator against a shadow call stack, resolving guard
/// functions through the class's precomputed `(name, id)` pairs.
fn guard_eval<'a>(
    def: &'a ClassDef,
    stack: &'a Rc<RefCell<Vec<NameId>>>,
) -> impl FnMut(&Guard) -> bool + 'a {
    move |g: &Guard| match g {
        Guard::InCallStack(f) => def
            .guard_fns
            .iter()
            .find(|(name, _)| name == f)
            .map(|(_, id)| stack.borrow().contains(id))
            .unwrap_or(false),
    }
}

fn compile_fn_translator(
    class: u32,
    sym: &Symbol,
    args: &[ArgPattern],
    ret: Option<&ArgPattern>,
    context: Context,
) -> Translator {
    let mut t = Translator {
        class,
        sym: sym.id,
        context,
        min_args: args.len() as u8,
        checks: Vec::new(),
        binds: Vec::new(),
        struct_filter: None,
        field_op: None,
    };
    for (i, p) in args.iter().enumerate() {
        compile_pattern(p, Slot::Arg(i as u8), &mut t);
    }
    if let Some(p) = ret {
        compile_pattern(p, Slot::Ret, &mut t);
    }
    t
}

fn compile_pattern(p: &ArgPattern, slot: Slot, t: &mut Translator) {
    match p {
        ArgPattern::Any { .. } => {}
        ArgPattern::Const(v) => t.checks.push((slot, Check::Const(*v))),
        ArgPattern::Flags(b) => t.checks.push((slot, Check::Flags(*b))),
        ArgPattern::Bitmask(b) => t.checks.push((slot, Check::Bitmask(*b))),
        // Out-params behave like variables at run time: the hook is
        // expected to pass the pointee value observed at event time.
        ArgPattern::Var { index, .. } | ArgPattern::OutParam { index, .. } => {
            t.binds.push((*index as u8, slot));
        }
    }
}

/// Expose the per-thread state reset, for benchmarks that reuse
/// threads across engine instances.
pub fn reset_thread_state() {
    TL_ACTIVE.with(|a| *a.borrow_mut() = None);
    TL_ENGINES.with(|m| m.borrow_mut().clear());
}
