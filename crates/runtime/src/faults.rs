//! Deterministic fault injection for the libtesla runtime.
//!
//! The paper's implicit contract is that instrumentation must never
//! make the host *less* reliable than the bug it hunts. This module
//! provides the adversary that keeps the runtime honest: a seeded,
//! deterministic [`FaultPlan`] that the engine consults at well-defined
//! hook sites and that can demand an allocation failure, a handler
//! panic, a clock jump, an event drop or duplication, or the poisoning
//! of a Global-store shard lock.
//!
//! Two invariants make the harness usable in CI:
//!
//! * **Determinism** — a plan's schedule is a pure function of its
//!   seed, its [`FaultSpec`] and the number of eligible draws. The
//!   same seed over the same workload yields the same absorbed-fault
//!   ledger, so a chaos failure reproduces with one command.
//! * **Accountability** — every fault is *drawn* at the site that will
//!   absorb it. The engine records each absorption back into the plan
//!   (and into [`crate::MetricsRegistry`] as
//!   `tesla_faults_absorbed_total`), so `injected == absorbed` holds
//!   whenever every injection path degrades gracefully — the property
//!   the chaos tests assert.
//!
//! A plan injects; the *hardening* that absorbs lives in
//! [`crate::engine`] (panic-safe dispatch, lock-poison recovery,
//! config validation) and [`crate::store`] (instance quotas, LRU
//! eviction, degraded-mode shedding).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Panic-payload marker used by injected handler panics and lock
/// poisoners, so test/CLI panic hooks can silence the noise the
/// harness deliberately generates without hiding real failures.
pub const INJECTED_PANIC: &str = "tesla-injected-fault-panic";

/// The injectable fault classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// An instance-table allocation is denied: `materialize` fails to
    /// create the `(∗)` instance and reports an overflow instead.
    AllocFailure = 0,
    /// A lifecycle handler panics while store locks are held.
    HandlerPanic = 1,
    /// The telemetry clock jumps: a wild latency sample lands in the
    /// hook histogram.
    ClockSkew = 2,
    /// An instrumentation-hook event is silently dropped.
    EventDrop = 3,
    /// An instrumentation-hook event is delivered twice.
    EventDuplicate = 4,
    /// A Global-store shard mutex is poisoned (a panic is raised and
    /// caught while the shard lock is held).
    LockPoison = 5,
}

/// Number of fault kinds (array sizes).
pub const N_FAULTS: usize = 6;

impl FaultKind {
    /// All kinds, in index order.
    pub const ALL: [FaultKind; N_FAULTS] = [
        FaultKind::AllocFailure,
        FaultKind::HandlerPanic,
        FaultKind::ClockSkew,
        FaultKind::EventDrop,
        FaultKind::EventDuplicate,
        FaultKind::LockPoison,
    ];

    /// Stable label, also the key of the `--faults` spec grammar.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::AllocFailure => "alloc",
            FaultKind::HandlerPanic => "panic",
            FaultKind::ClockSkew => "skew",
            FaultKind::EventDrop => "drop",
            FaultKind::EventDuplicate => "dup",
            FaultKind::LockPoison => "poison",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-kind injection periods: kind `k` fires on one in every
/// `periods[k]` eligible draws (0 disables the kind). Which residue of
/// the period fires is a function of the plan's seed, so two seeds
/// with the same spec hit *different* events at the same overall rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Injection period per [`FaultKind`] index; 0 = never.
    pub periods: [u32; N_FAULTS],
}

impl FaultSpec {
    /// No faults at all (a plan with this spec only pays the draws).
    pub fn none() -> FaultSpec {
        FaultSpec {
            periods: [0; N_FAULTS],
        }
    }

    /// The default chaos mix: every class of fault enabled at rates
    /// that a few thousand events will exercise many times over.
    pub fn default_chaos() -> FaultSpec {
        let mut s = FaultSpec::none();
        s.periods[FaultKind::AllocFailure as usize] = 13;
        s.periods[FaultKind::HandlerPanic as usize] = 17;
        s.periods[FaultKind::ClockSkew as usize] = 19;
        s.periods[FaultKind::EventDrop as usize] = 23;
        s.periods[FaultKind::EventDuplicate as usize] = 29;
        s.periods[FaultKind::LockPoison as usize] = 31;
        s
    }

    /// Builder-style override of one kind's period.
    pub fn with(mut self, kind: FaultKind, period: u32) -> FaultSpec {
        self.periods[kind as usize] = period;
        self
    }

    /// The period for `kind` (0 = disabled).
    pub fn period(&self, kind: FaultKind) -> u32 {
        self.periods[kind as usize]
    }

    /// Parse a spec string: comma-separated `kind=period` pairs, e.g.
    /// `"panic=40,drop=16"`. Kinds are the [`FaultKind::label`] names;
    /// unlisted kinds stay disabled. The empty string is
    /// [`FaultSpec::none`].
    ///
    /// The grammar is strict: empty segments (a trailing comma, a
    /// doubled comma) and repeated kinds are rejected rather than
    /// silently ignored or last-write-wins — a chaos run whose spec
    /// was half-applied is worse than one that refuses to start.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed pair.
    pub fn parse(s: &str) -> Result<FaultSpec, String> {
        let mut spec = FaultSpec::none();
        if s.trim().is_empty() {
            return Ok(spec);
        }
        let mut seen = [false; N_FAULTS];
        for pair in s.split(',').map(str::trim) {
            if pair.is_empty() {
                return Err(format!(
                    "bad fault spec `{s}`: empty segment (trailing or doubled comma)"
                ));
            }
            let (key, val) = pair
                .split_once('=')
                .ok_or_else(|| format!("bad fault spec `{pair}`: expected kind=period"))?;
            let kind = FaultKind::ALL
                .into_iter()
                .find(|k| k.label() == key.trim())
                .ok_or_else(|| {
                    format!(
                        "unknown fault kind `{key}` (expected one of alloc, panic, skew, dup, drop, poison)"
                    )
                })?;
            if seen[kind as usize] {
                return Err(format!(
                    "duplicate fault kind `{}`: each kind may be given once",
                    kind.label()
                ));
            }
            seen[kind as usize] = true;
            let period: u32 = val
                .trim()
                .parse()
                .map_err(|e| format!("bad period `{val}` for `{key}`: {e}"))?;
            spec.periods[kind as usize] = period;
        }
        Ok(spec)
    }
}

/// The one canonical string→spec conversion: `FromStr` simply
/// delegates to [`FaultSpec::parse`], so the CLI `--faults` flag and
/// the scenario YAML loader share identical strictness rules (empty
/// segments and duplicate kinds rejected, never last-write-wins).
impl std::str::FromStr for FaultSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultSpec, String> {
        FaultSpec::parse(s)
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for k in FaultKind::ALL {
            let p = self.periods[k as usize];
            if p == 0 {
                continue;
            }
            if !first {
                f.write_str(",")?;
            }
            write!(f, "{}={p}", k.label())?;
            first = false;
        }
        if first {
            f.write_str("none")?;
        }
        Ok(())
    }
}

/// splitmix64: the seed expander behind per-kind phases and skew
/// magnitudes. Small, well-mixed, dependency-free.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded, deterministic fault-injection plan plus its ledger.
///
/// Attach one to an engine via [`crate::Config::faults`]. The engine
/// calls [`FaultPlan::draw`] at each eligible site; a `true` return is
/// a contract: the caller **must** degrade gracefully and then record
/// the absorption with [`FaultPlan::absorbed`]. The
/// [`FaultPlan::ledger`] therefore balances exactly when no injection
/// escaped its absorption path.
pub struct FaultPlan {
    seed: u64,
    spec: FaultSpec,
    /// Eligible draws per kind (the countdown clock).
    draws: [AtomicU64; N_FAULTS],
    /// Seed-derived phase per kind: which residue of the period fires.
    phase: [u64; N_FAULTS],
    injected: [AtomicU64; N_FAULTS],
    absorbed: [AtomicU64; N_FAULTS],
}

impl fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FaultPlan")
            .field("seed", &self.seed)
            .field("spec", &self.spec)
            .field("ledger", &self.ledger())
            .finish()
    }
}

impl FaultPlan {
    /// A plan firing per `spec`, with `seed` choosing *which* events
    /// within each period get hit.
    pub fn new(seed: u64, spec: FaultSpec) -> FaultPlan {
        FaultPlan {
            seed,
            spec,
            draws: std::array::from_fn(|_| AtomicU64::new(0)),
            phase: std::array::from_fn(|k| splitmix64(seed ^ (k as u64).wrapping_mul(0xA5A5))),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
            absorbed: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The plan's spec.
    pub fn spec(&self) -> FaultSpec {
        self.spec
    }

    /// One eligible draw for `kind` at its absorption site. Returns
    /// `true` when the fault fires, which also counts it as injected —
    /// the caller must absorb it and call [`FaultPlan::absorbed`].
    ///
    /// The total number of firings is `⌊draws / period⌋ ± 1`,
    /// deterministic in the draw count alone (threads share the draw
    /// clock, so interleaving cannot change the totals).
    #[inline]
    pub fn draw(&self, kind: FaultKind) -> bool {
        let k = kind as usize;
        let p = self.spec.periods[k];
        if p == 0 {
            return false;
        }
        let n = self.draws[k].fetch_add(1, Ordering::Relaxed);
        if (n.wrapping_add(self.phase[k])) % u64::from(p) == 0 {
            self.injected[k].fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Record that a drawn fault was fully absorbed (the engine
    /// degraded gracefully and kept going).
    #[inline]
    pub fn absorbed(&self, kind: FaultKind) {
        self.absorbed[kind as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// A deterministic, seed-derived clock-skew magnitude for the
    /// current skew injection: between ~1 µs and ~1 s of phantom
    /// latency.
    pub fn skew_ns(&self) -> u64 {
        let n = self.injected[FaultKind::ClockSkew as usize].load(Ordering::Relaxed);
        let r = splitmix64(self.seed ^ n.wrapping_mul(0x5EED));
        1_000 + (r % 1_000_000_000)
    }

    /// Point-in-time copy of the injected/absorbed counters.
    pub fn ledger(&self) -> FaultLedger {
        FaultLedger {
            injected: std::array::from_fn(|k| self.injected[k].load(Ordering::Relaxed)),
            absorbed: std::array::from_fn(|k| self.absorbed[k].load(Ordering::Relaxed)),
        }
    }
}

/// A snapshot of a plan's accounting: per-kind injected and absorbed
/// fault counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultLedger {
    /// Faults the plan fired, per [`FaultKind`] index.
    pub injected: [u64; N_FAULTS],
    /// Faults the engine reported absorbing, per kind.
    pub absorbed: [u64; N_FAULTS],
}

impl FaultLedger {
    /// Total faults fired.
    pub fn total_injected(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Total faults absorbed.
    pub fn total_absorbed(&self) -> u64 {
        self.absorbed.iter().sum()
    }

    /// True when every injected fault was absorbed — the chaos-test
    /// acceptance condition.
    pub fn balanced(&self) -> bool {
        self.injected == self.absorbed
    }

    /// Render as fixed-width table rows (one per active kind), for
    /// `tesla run --chaos` and `repro chaos` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for k in FaultKind::ALL {
            let i = self.injected[k as usize];
            let a = self.absorbed[k as usize];
            if i == 0 && a == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<8} injected {:>6}  absorbed {:>6}\n",
                k.label(),
                i,
                a
            ));
        }
        if out.is_empty() {
            out.push_str("no faults fired\n");
        }
        out
    }
}

impl fmt::Display for FaultLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Install a process-wide panic hook that silences panics carrying the
/// [`INJECTED_PANIC`] payload and defers to the previous hook for
/// everything else. Idempotent; used by the chaos tests, `repro chaos`
/// and `tesla run --chaos` so hundreds of *deliberate* panics don't
/// flood stderr while real ones still print.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<&str>()
                .is_some_and(|s| s.contains(INJECTED_PANIC))
                || info
                    .payload()
                    .downcast_ref::<String>()
                    .is_some_and(|s| s.contains(INJECTED_PANIC));
            if !injected {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_and_round_trips() {
        let s = FaultSpec::parse("panic=40, drop=16").unwrap();
        assert_eq!(s.period(FaultKind::HandlerPanic), 40);
        assert_eq!(s.period(FaultKind::EventDrop), 16);
        assert_eq!(s.period(FaultKind::AllocFailure), 0);
        assert_eq!(s.to_string(), "panic=40,drop=16");
        assert_eq!(FaultSpec::parse("").unwrap(), FaultSpec::none());
        assert_eq!(FaultSpec::none().to_string(), "none");
        assert!(FaultSpec::parse("bogus=3").is_err());
        assert!(FaultSpec::parse("panic").is_err());
        assert!(FaultSpec::parse("panic=x").is_err());
    }

    #[test]
    fn spec_rejects_trailing_garbage_and_duplicates() {
        // Whitespace-only is the empty spec, like "".
        assert_eq!(FaultSpec::parse("  ").unwrap(), FaultSpec::none());
        // Trailing and doubled commas are errors, not silently eaten.
        let e = FaultSpec::parse("panic=40,").unwrap_err();
        assert!(e.contains("empty segment"), "{e}");
        let e = FaultSpec::parse("panic=40,,drop=16").unwrap_err();
        assert!(e.contains("empty segment"), "{e}");
        assert!(FaultSpec::parse(",panic=40").is_err());
        // A repeated kind is an error, not last-write-wins.
        let e = FaultSpec::parse("panic=1,panic=2").unwrap_err();
        assert!(e.contains("duplicate fault kind `panic`"), "{e}");
        let e = FaultSpec::parse("drop=4, panic=1, drop=9").unwrap_err();
        assert!(e.contains("duplicate fault kind `drop`"), "{e}");
    }

    #[test]
    fn from_str_is_parse() {
        let via_trait: FaultSpec = "panic=40, drop=16".parse().unwrap();
        assert_eq!(via_trait, FaultSpec::parse("panic=40, drop=16").unwrap());
        assert_eq!(
            "panic=1,panic=2".parse::<FaultSpec>().unwrap_err(),
            FaultSpec::parse("panic=1,panic=2").unwrap_err()
        );
    }

    #[test]
    fn draw_rate_matches_period() {
        let plan = FaultPlan::new(42, FaultSpec::none().with(FaultKind::EventDrop, 10));
        let fired = (0..1000)
            .filter(|_| plan.draw(FaultKind::EventDrop))
            .count();
        assert_eq!(fired, 100);
        // Disabled kinds never fire.
        assert!(!(0..1000).any(|_| plan.draw(FaultKind::HandlerPanic)));
        let l = plan.ledger();
        assert_eq!(l.injected[FaultKind::EventDrop as usize], 100);
        assert_eq!(l.total_injected(), 100);
        assert!(!l.balanced());
    }

    #[test]
    fn same_seed_same_schedule_different_seed_different_phase() {
        let spec = FaultSpec::default_chaos();
        let sched = |seed: u64| -> Vec<bool> {
            let p = FaultPlan::new(seed, spec);
            (0..200).map(|_| p.draw(FaultKind::HandlerPanic)).collect()
        };
        assert_eq!(sched(7), sched(7));
        // Phases almost surely differ between these two seeds (fixed
        // inputs: this is a deterministic regression check, not luck).
        assert_ne!(sched(7), sched(8));
    }

    #[test]
    fn ledger_balances_when_absorbed() {
        let plan = FaultPlan::new(1, FaultSpec::none().with(FaultKind::LockPoison, 2));
        for _ in 0..10 {
            if plan.draw(FaultKind::LockPoison) {
                plan.absorbed(FaultKind::LockPoison);
            }
        }
        let l = plan.ledger();
        assert_eq!(l.total_injected(), 5);
        assert!(l.balanced());
        assert!(l.render().contains("poison"));
    }

    #[test]
    fn skew_is_deterministic_and_bounded() {
        let a = FaultPlan::new(9, FaultSpec::default_chaos());
        let b = FaultPlan::new(9, FaultSpec::default_chaos());
        assert_eq!(a.skew_ns(), b.skew_ns());
        assert!(a.skew_ns() >= 1_000);
        assert!(a.skew_ns() < 1_000_001_000);
    }
}
