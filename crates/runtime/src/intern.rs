//! Name interning.
//!
//! The instrumenter binds events to symbols at compile time; at run
//! time only dense integer ids flow through the hooks. One interner
//! per [`crate::Tesla`] instance covers function names, structure
//! type/field names and Objective-C selectors (the namespaces cannot
//! collide because they key different dispatch tables).

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// A dense interned-name id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NameId(pub u32);

/// A concurrent string interner. Names are stored once as `Arc<str>`
/// shared between the index and the id table, so [`Interner::resolve`]
/// hands out a reference-counted view instead of copying the string.
#[derive(Debug, Default)]
pub struct Interner {
    inner: RwLock<InternerInner>,
    // Published under the write lock after every insert: a monotone
    // lower bound on `len()` readable without taking the read lock,
    // so hot hook paths can rule ids in-range with one atomic load.
    approx_len: AtomicUsize,
}

#[derive(Debug, Default)]
struct InternerInner {
    by_name: HashMap<Arc<str>, NameId>,
    names: Vec<Arc<str>>,
}

impl Interner {
    /// New, empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Intern `name`, returning its id (stable for the interner's
    /// lifetime).
    pub fn intern(&self, name: &str) -> NameId {
        if let Some(id) = self.inner.read().by_name.get(name) {
            return *id;
        }
        let mut w = self.inner.write();
        if let Some(id) = w.by_name.get(name) {
            return *id;
        }
        let id = NameId(w.names.len() as u32);
        let shared: Arc<str> = Arc::from(name);
        w.names.push(shared.clone());
        w.by_name.insert(shared, id);
        self.approx_len.store(w.names.len(), Ordering::Release);
        id
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<NameId> {
        self.inner.read().by_name.get(name).copied()
    }

    /// The string for an id (a shared view; cloning is one refcount
    /// bump, not a copy).
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: NameId) -> Arc<str> {
        self.inner.read().names[id.0 as usize].clone()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.inner.read().names.len()
    }

    /// A monotone lower bound on [`Interner::len`] that costs one
    /// atomic load. An id below the bound is certainly valid; an id
    /// at or above it *may* still be valid (a racing insert not yet
    /// observed) and must be confirmed against the exact `len()`.
    pub fn len_lower_bound(&self) -> usize {
        self.approx_len.load(Ordering::Acquire)
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("foo");
        assert_eq!(a, b);
        let c = i.intern("bar");
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
        assert_eq!(i.len_lower_bound(), 2);
    }

    #[test]
    fn resolve_roundtrips() {
        let i = Interner::new();
        let id = i.intern("mac_socket_check_poll");
        assert_eq!(&*i.resolve(id), "mac_socket_check_poll");
        assert_eq!(i.get("mac_socket_check_poll"), Some(id));
        assert_eq!(i.get("missing"), None);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let i = std::sync::Arc::new(Interner::new());
        let mut handles = Vec::new();
        for t in 0..8 {
            let i = i.clone();
            handles.push(std::thread::spawn(move || {
                let mut ids = Vec::new();
                for k in 0..50 {
                    ids.push(i.intern(&format!("name{}", (k + t) % 50)));
                }
                ids
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(i.len(), 50);
        // Every name resolves to itself.
        for k in 0..50 {
            let n = format!("name{k}");
            assert_eq!(&*i.resolve(i.get(&n).unwrap()), n);
        }
    }
}
