//! Violations and lifecycle events.
//!
//! libtesla "reports all of the event types referenced in §4.4.1:
//! instance initialisation, clones, updates, errors, and finalisation
//! (automaton acceptance)" (§4.4.2), plus preallocation overflows.

use tesla_automata::{StateSet, SymbolId};
use tesla_spec::{SourceLoc, Value};

/// Why an assertion failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The assertion site was reached but no automaton instance could
    /// take the site transition — e.g. `previously(...)` with the
    /// required prior event missing, or present with the wrong
    /// variable values (§4.4.1 "Error").
    Site,
    /// An instance was finalised at its temporal bound's end with a
    /// pending obligation (`eventually(...)` unmet).
    Cleanup,
    /// `strict` semantics: an alphabet event matched an instance but
    /// had no transition from its current state.
    Strict,
    /// An ingress event referenced a name or assertion class this
    /// engine has never seen — a typo'd replay trace, an id minted by
    /// a different engine, or a producer speaking the wrong schema.
    /// Unlike the other kinds this is an *event-stream* error, not an
    /// assertion disposition: it is returned directly from the hook
    /// and never downgraded by [`crate::FailMode::Log`].
    UnknownName,
}

impl std::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ViolationKind::Site => write!(f, "assertion-site violation"),
            ViolationKind::Cleanup => write!(f, "unmet obligation at bound end"),
            ViolationKind::Strict => write!(f, "unexpected event (strict)"),
            ViolationKind::UnknownName => write!(f, "unknown name in event"),
        }
    }
}

/// A temporal-assertion violation.
///
/// In the default fail-stop mode this is returned as the `Err` of the
/// instrumentation hook that observed it; in log mode it is recorded
/// and execution continues (§4.4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the violated assertion.
    pub assertion: String,
    /// What kind of mismatch.
    pub kind: ViolationKind,
    /// Where the assertion was written.
    pub loc: SourceLoc,
    /// The assertion's surface form.
    pub source: String,
    /// Values involved in the offending event, in variable order where
    /// known.
    pub values: Vec<Value>,
    /// Human-readable detail.
    pub detail: String,
}

impl Violation {
    /// Build the structured error for a malformed ingress event:
    /// `what` says which namespace missed ("function", "selector",
    /// "assertion class", …), `name` is the offending name (or `#id`
    /// for a raw [`crate::NameId`] that was never minted).
    pub fn unknown_name(what: &str, name: &str) -> Violation {
        Violation {
            assertion: "<ingress>".into(),
            kind: ViolationKind::UnknownName,
            loc: SourceLoc {
                file: "<ingress>".into(),
                line: 0,
            },
            source: String::new(),
            values: Vec::new(),
            detail: format!("{what} `{name}` was never interned by this engine"),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "TESLA: {} in `{}` at {}: {} [{}]",
            self.kind, self.assertion, self.loc, self.detail, self.source
        )
    }
}

impl std::error::Error for Violation {}

/// An automaton-instance lifecycle notification, delivered to every
/// registered [`crate::EventHandler`].
#[derive(Debug, Clone, PartialEq)]
pub enum LifecycleEvent {
    /// A fresh `(∗)` instance was created at its bound's «init».
    New {
        /// Class index.
        class: u32,
        /// Instance slot.
        instance: u32,
    },
    /// An instance was cloned to specialise a variable binding
    /// (`(∗)` → `(vp₁)`, §4.4.1 "Clone").
    Clone {
        /// Class index.
        class: u32,
        /// Source instance slot.
        from_instance: u32,
        /// New instance slot.
        to_instance: u32,
        /// The newly bound variable values `(index, value)`.
        bound: Vec<(usize, Value)>,
        /// NFA states after the transition.
        states: StateSet,
    },
    /// An instance consumed a symbol and moved (§4.4.1 "Update").
    Update {
        /// Class index.
        class: u32,
        /// Instance slot.
        instance: u32,
        /// Consumed symbol.
        sym: SymbolId,
        /// NFA states before.
        from_states: StateSet,
        /// NFA states after.
        to_states: StateSet,
    },
    /// A violation was detected (§4.4.1 "Error").
    Error {
        /// The violation.
        violation: Violation,
    },
    /// An instance was finalised at «cleanup»; `accepted` is automaton
    /// acceptance.
    Finalise {
        /// Class index.
        class: u32,
        /// Instance slot.
        instance: u32,
        /// Whether the instance finalised in a cleanup-safe state.
        accepted: bool,
    },
    /// The preallocated instance table was full; the clone/creation
    /// was dropped and must be reported "so that we can adjust
    /// preallocation size on the next run" (§4.4.1).
    Overflow {
        /// Class index.
        class: u32,
    },
    /// An instance was evicted to make room under
    /// [`crate::Config::max_instances`] (LRU policy). Obligations the
    /// evicted instance carried are no longer checked — the event is
    /// the audit trail for that soundness gap.
    Evicted {
        /// Class index.
        class: u32,
        /// Evicted instance slot.
        instance: u32,
    },
    /// Degraded mode dropped (shed) a clone/specialisation for this
    /// class because its quota tripped; retained instances are still
    /// tracked exactly.
    Shed {
        /// Class index.
        class: u32,
    },
}

impl LifecycleEvent {
    /// The class this event concerns.
    pub fn class(&self) -> Option<u32> {
        match self {
            LifecycleEvent::New { class, .. }
            | LifecycleEvent::Clone { class, .. }
            | LifecycleEvent::Update { class, .. }
            | LifecycleEvent::Finalise { class, .. }
            | LifecycleEvent::Overflow { class }
            | LifecycleEvent::Evicted { class, .. }
            | LifecycleEvent::Shed { class } => Some(*class),
            LifecycleEvent::Error { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_mentions_everything() {
        let v = Violation {
            assertion: "mac_poll".into(),
            kind: ViolationKind::Site,
            loc: SourceLoc {
                file: "uipc_socket.c".into(),
                line: 42,
            },
            source: "TESLA_SYSCALL_PREVIOUSLY(...)".into(),
            values: vec![Value(7)],
            detail: "no instance for so=7".into(),
        };
        let s = v.to_string();
        assert!(s.contains("mac_poll"));
        assert!(s.contains("uipc_socket.c:42"));
        assert!(s.contains("assertion-site violation"));
        assert!(s.contains("so=7"));
    }

    #[test]
    fn lifecycle_event_class_accessor() {
        assert_eq!(
            LifecycleEvent::New {
                class: 3,
                instance: 0
            }
            .class(),
            Some(3)
        );
        assert_eq!(LifecycleEvent::Overflow { class: 9 }.class(), Some(9));
    }
}
