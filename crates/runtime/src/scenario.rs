//! Generic scenario timeline steps — the shared vocabulary between
//! the declarative YAML scenario format (`tesla scenario`) and the
//! per-substrate timeline adapters.
//!
//! A scenario timeline is a list of [`Step`]s: an operation name plus
//! a bag of named arguments, optionally stamped with a logical time
//! and a thread id. The YAML loader (in the `tesla` umbrella crate)
//! produces steps; each simulator crate exposes an adapter that
//! interprets the ops it understands; and this module provides the
//! one adapter that belongs to the runtime itself — the *spec* runner,
//! which lowers steps straight to [`IngressEvent`]s so a scenario can
//! drive any registered automaton through the normal ingestion path.
//!
//! Steps stay stringly-typed on purpose: the fuzzer mutates timelines
//! generically (swap/drop/dup/retime, value perturbation) without
//! knowing what any op means, and adapters re-validate on every run,
//! so a mutated timeline can never construct an unrepresentable step
//! — it can only earn a step error, which is itself a scenario
//! verdict.

use crate::ingress::IngressEvent;
use tesla_spec::{FieldOp, Value};

/// A scenario argument value: the subset of YAML scalars/lists the
/// timeline format supports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// An integer (YAML bare number).
    Int(i64),
    /// A string (bare word or quoted).
    Str(String),
    /// A boolean (`true` / `false`).
    Bool(bool),
    /// A list of values (inline `[a, b]` or block list).
    List(Vec<ArgValue>),
}

impl ArgValue {
    /// The integer value, if this is an [`ArgValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            ArgValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is an [`ArgValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ArgValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean value, if this is an [`ArgValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            ArgValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an [`ArgValue::List`].
    pub fn as_list(&self) -> Option<&[ArgValue]> {
        match self {
            ArgValue::List(items) => Some(items),
            _ => None,
        }
    }
}

/// One timeline entry: an operation with named arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Logical timestamp; timelines are stably sorted by it before
    /// execution, so a missing `at` means "in written order".
    pub at: Option<u64>,
    /// Logical thread id (adapters may use it to multiplex actors;
    /// the spec runner ignores it — ingestion is single-source).
    pub thread: Option<u64>,
    /// Operation name, interpreted by the selected runner.
    pub op: String,
    /// Named arguments in written order (order is preserved so
    /// saved/mutated scenarios serialise deterministically).
    pub args: Vec<(String, ArgValue)>,
}

impl Step {
    /// A step with no arguments.
    pub fn new(op: &str) -> Step {
        Step {
            at: None,
            thread: None,
            op: op.to_string(),
            args: Vec::new(),
        }
    }

    /// Builder: append an argument.
    pub fn with(mut self, name: &str, value: ArgValue) -> Step {
        self.args.push((name.to_string(), value));
        self
    }

    /// Look up an argument by name (first match wins).
    pub fn arg(&self, name: &str) -> Option<&ArgValue> {
        self.args
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// A required integer argument.
    pub fn int(&self, name: &str) -> Result<i64, String> {
        self.arg(name)
            .and_then(ArgValue::as_int)
            .ok_or_else(|| format!("op `{}`: missing integer arg `{name}`", self.op))
    }

    /// An optional integer argument with a default.
    pub fn int_or(&self, name: &str, default: i64) -> Result<i64, String> {
        match self.arg(name) {
            None => Ok(default),
            Some(v) => v
                .as_int()
                .ok_or_else(|| format!("op `{}`: arg `{name}` must be an integer", self.op)),
        }
    }

    /// A required string argument.
    pub fn str_arg(&self, name: &str) -> Result<&str, String> {
        self.arg(name)
            .and_then(ArgValue::as_str)
            .ok_or_else(|| format!("op `{}`: missing string arg `{name}`", self.op))
    }

    /// An optional string argument with a default.
    pub fn str_or<'a>(&'a self, name: &str, default: &'a str) -> Result<&'a str, String> {
        match self.arg(name) {
            None => Ok(default),
            Some(v) => v
                .as_str()
                .ok_or_else(|| format!("op `{}`: arg `{name}` must be a string", self.op)),
        }
    }

    /// An optional boolean argument with a default.
    pub fn bool_or(&self, name: &str, default: bool) -> Result<bool, String> {
        match self.arg(name) {
            None => Ok(default),
            Some(v) => v
                .as_bool()
                .ok_or_else(|| format!("op `{}`: arg `{name}` must be a boolean", self.op)),
        }
    }

    /// An optional integer-list argument (defaults to empty). Used
    /// for hook argument vectors.
    pub fn int_list(&self, name: &str) -> Result<Vec<i64>, String> {
        match self.arg(name) {
            None => Ok(Vec::new()),
            Some(ArgValue::List(items)) => items
                .iter()
                .map(|v| {
                    v.as_int().ok_or_else(|| {
                        format!("op `{}`: arg `{name}` must be a list of integers", self.op)
                    })
                })
                .collect(),
            Some(_) => Err(format!(
                "op `{}`: arg `{name}` must be a list of integers",
                self.op
            )),
        }
    }
}

fn values(ints: &[i64]) -> Vec<Value> {
    ints.iter().copied().map(Value::from_i64).collect()
}

fn parse_field_op(s: &str) -> Result<FieldOp, String> {
    match s {
        "=" => Ok(FieldOp::Assign),
        "+=" => Ok(FieldOp::AddAssign),
        "-=" => Ok(FieldOp::SubAssign),
        "|=" => Ok(FieldOp::OrAssign),
        "&=" => Ok(FieldOp::AndAssign),
        other => Err(format!(
            "unknown field op `{other}` (expected =, +=, -=, |= or &=)"
        )),
    }
}

/// The *spec* runner's adapter: lower one timeline step to the wire
/// event it denotes. Ops mirror [`IngressEvent`]'s `kind_label`s:
///
/// | op            | arguments                                             |
/// |---------------|-------------------------------------------------------|
/// | `fn_entry`    | `fn` (str), `args` (int list)                         |
/// | `fn_exit`     | `fn`, `args`, `ret` (int, default 0)                  |
/// | `field_store` | `struct`, `field`, `object` (int), `op` (default `=`),`value` |
/// | `msg_entry`   | `selector`, `receiver` (int), `args`                  |
/// | `msg_exit`    | `selector`, `receiver`, `args`, `ret` (default 0)     |
/// | `site`        | `class` (int), `values` (int list)                    |
///
/// # Errors
///
/// A description of the first missing or ill-typed argument.
pub fn step_to_event(step: &Step) -> Result<IngressEvent, String> {
    match step.op.as_str() {
        "fn_entry" => Ok(IngressEvent::FnEntry {
            name: step.str_arg("fn")?.to_string(),
            args: values(&step.int_list("args")?),
        }),
        "fn_exit" => Ok(IngressEvent::FnExit {
            name: step.str_arg("fn")?.to_string(),
            args: values(&step.int_list("args")?),
            ret: Value::from_i64(step.int_or("ret", 0)?),
        }),
        "field_store" => Ok(IngressEvent::FieldStore {
            strct: step.str_arg("struct")?.to_string(),
            field: step.str_arg("field")?.to_string(),
            object: Value::from_i64(step.int_or("object", 0)?),
            op: parse_field_op(step.str_or("op", "=")?)?,
            value: Value::from_i64(step.int_or("value", 0)?),
        }),
        "msg_entry" => Ok(IngressEvent::MsgEntry {
            selector: step.str_arg("selector")?.to_string(),
            receiver: Value::from_i64(step.int_or("receiver", 0)?),
            args: values(&step.int_list("args")?),
        }),
        "msg_exit" => Ok(IngressEvent::MsgExit {
            selector: step.str_arg("selector")?.to_string(),
            receiver: Value::from_i64(step.int_or("receiver", 0)?),
            args: values(&step.int_list("args")?),
            ret: Value::from_i64(step.int_or("ret", 0)?),
        }),
        "site" => {
            let class = step.int("class")?;
            let class = u32::try_from(class)
                .map_err(|_| format!("op `site`: class {class} out of range"))?;
            Ok(IngressEvent::AssertionSite {
                class,
                values: values(&step.int_list("values")?),
            })
        }
        other => Err(format!(
            "unknown spec-runner op `{other}` (expected fn_entry, fn_exit, \
             field_store, msg_entry, msg_exit or site)"
        )),
    }
}

/// Stably sort a timeline by its `at` stamps. Steps without a stamp
/// keep their written position relative to stamped neighbours with
/// equal times — the sort is stable, and unstamped steps inherit the
/// previous stamped time (or 0), so interleaving mutations that only
/// touch `at` reorder exactly the stamped steps.
pub fn sort_timeline(steps: &mut [Step]) {
    let mut keyed: Vec<(u64, Step)> = Vec::with_capacity(steps.len());
    let mut last = 0u64;
    for s in steps.iter() {
        if let Some(at) = s.at {
            last = at;
        }
        keyed.push((last, s.clone()));
    }
    keyed.sort_by_key(|(t, _)| *t);
    for (slot, (_, s)) in steps.iter_mut().zip(keyed) {
        *slot = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_args_typed_access() {
        let s = Step::new("fn_entry")
            .with("fn", ArgValue::Str("main".into()))
            .with("args", ArgValue::List(vec![ArgValue::Int(7)]))
            .with("deep", ArgValue::Bool(true));
        assert_eq!(s.str_arg("fn").unwrap(), "main");
        assert_eq!(s.int_list("args").unwrap(), vec![7]);
        assert!(s.bool_or("deep", false).unwrap());
        assert_eq!(s.int_or("ret", 3).unwrap(), 3);
        assert!(s.int("missing").is_err());
        assert!(s.str_arg("args").is_err());
    }

    #[test]
    fn spec_ops_lower_to_events() {
        let e = step_to_event(
            &Step::new("fn_exit")
                .with("fn", ArgValue::Str("f".into()))
                .with("ret", ArgValue::Int(-1)),
        )
        .unwrap();
        assert_eq!(
            e,
            IngressEvent::FnExit {
                name: "f".into(),
                args: vec![],
                ret: Value::from_i64(-1),
            }
        );
        let e = step_to_event(
            &Step::new("field_store")
                .with("struct", ArgValue::Str("proc".into()))
                .with("field", ArgValue::Str("p_flag".into()))
                .with("op", ArgValue::Str("|=".into()))
                .with("value", ArgValue::Int(4)),
        )
        .unwrap();
        assert_eq!(
            e,
            IngressEvent::FieldStore {
                strct: "proc".into(),
                field: "p_flag".into(),
                object: Value::NULL,
                op: FieldOp::OrAssign,
                value: Value(4),
            }
        );
        assert!(step_to_event(&Step::new("bogus")).is_err());
        assert!(step_to_event(&Step::new("site")).is_err());
    }

    #[test]
    fn timeline_sort_is_stable_and_inherits_stamps() {
        let mk = |op: &str, at: Option<u64>| {
            let mut s = Step::new(op);
            s.at = at;
            s
        };
        let mut tl = vec![
            mk("a", Some(5)),
            mk("b", None), // inherits 5
            mk("c", Some(1)),
            mk("d", None), // inherits 1
        ];
        sort_timeline(&mut tl);
        let ops: Vec<&str> = tl.iter().map(|s| s.op.as_str()).collect();
        assert_eq!(ops, vec!["c", "d", "a", "b"]);
    }
}
