//! The versioned JSONL trace schema (`tesla_trace` version 1).
//!
//! A trace is a UTF-8 text stream, one JSON object per line:
//!
//! * The **first** non-blank line is the header
//!   `{"tesla_trace":1}`. A stream without it — or with a version
//!   this build does not speak — is rejected before any event is
//!   dispatched.
//! * Every following non-blank line is one event, discriminated by
//!   its `"ev"` field:
//!
//! ```text
//! {"ev":"fn_entry","fn":"EVP_VerifyFinal","args":[7,1]}
//! {"ev":"fn_exit","fn":"EVP_VerifyFinal","args":[7,1],"ret":1}
//! {"ev":"field_store","struct":"conn","field":"state","obj":7,"op":"=","val":2}
//! {"ev":"msg_entry","sel":"lockFocus","recv":3,"args":[]}
//! {"ev":"msg_exit","sel":"lockFocus","recv":3,"args":[],"ret":0}
//! {"ev":"site","class":0,"vals":[7]}
//! ```
//!
//! All values are unsigned 64-bit integers (the runtime's [`Value`]
//! domain). Unknown *fields* are ignored for forward compatibility;
//! unknown `"ev"` labels, missing required fields, and out-of-domain
//! values are malformed. Blank lines are permitted and skipped.
//! Versioning rule: additions that old readers can safely ignore
//! (new optional fields) do not bump the version; anything a version-1
//! reader would misinterpret (new event kinds, changed field
//! meanings) must.
//!
//! The writer ([`TraceWriter`]) emits names through the same
//! hardened escaper as the telemetry exporters, so traces stay
//! parseable for arbitrary interned names.

use crate::ingress::event::{IngressEvent, IngressEventRef};
use crate::ingress::json::{Json, Parser};
use crate::telemetry::export::json_escape;
use std::io::Write;
use tesla_spec::{FieldOp, Value};

/// The schema version this build reads and writes.
pub const TRACE_VERSION: u32 = 1;

/// The header line starting every version-1 trace (no trailing
/// newline).
pub const TRACE_HEADER: &str = "{\"tesla_trace\":1}";

fn op_label(op: FieldOp) -> &'static str {
    match op {
        FieldOp::Assign => "=",
        FieldOp::AddAssign => "+=",
        FieldOp::SubAssign => "-=",
        FieldOp::OrAssign => "|=",
        FieldOp::AndAssign => "&=",
    }
}

fn op_from_label(s: &str) -> Option<FieldOp> {
    Some(match s {
        "=" => FieldOp::Assign,
        "+=" => FieldOp::AddAssign,
        "-=" => FieldOp::SubAssign,
        "|=" => FieldOp::OrAssign,
        "&=" => FieldOp::AndAssign,
        _ => return None,
    })
}

fn values_json(vs: &[Value]) -> String {
    let items: Vec<String> = vs.iter().map(|v| v.0.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Render one event as its single-line wire form (no trailing
/// newline).
pub fn format_event(ev: &IngressEventRef<'_>) -> String {
    match *ev {
        IngressEventRef::FnEntry { name, args } => format!(
            "{{\"ev\":\"fn_entry\",\"fn\":\"{}\",\"args\":{}}}",
            json_escape(name),
            values_json(args)
        ),
        IngressEventRef::FnExit { name, args, ret } => format!(
            "{{\"ev\":\"fn_exit\",\"fn\":\"{}\",\"args\":{},\"ret\":{}}}",
            json_escape(name),
            values_json(args),
            ret.0
        ),
        IngressEventRef::FieldStore {
            strct,
            field,
            object,
            op,
            value,
        } => format!(
            "{{\"ev\":\"field_store\",\"struct\":\"{}\",\"field\":\"{}\",\
             \"obj\":{},\"op\":\"{}\",\"val\":{}}}",
            json_escape(strct),
            json_escape(field),
            object.0,
            op_label(op),
            value.0
        ),
        IngressEventRef::MsgEntry {
            selector,
            receiver,
            args,
        } => format!(
            "{{\"ev\":\"msg_entry\",\"sel\":\"{}\",\"recv\":{},\"args\":{}}}",
            json_escape(selector),
            receiver.0,
            values_json(args)
        ),
        IngressEventRef::MsgExit {
            selector,
            receiver,
            args,
            ret,
        } => format!(
            "{{\"ev\":\"msg_exit\",\"sel\":\"{}\",\"recv\":{},\"args\":{},\"ret\":{}}}",
            json_escape(selector),
            receiver.0,
            values_json(args),
            ret.0
        ),
        IngressEventRef::AssertionSite { class, values } => format!(
            "{{\"ev\":\"site\",\"class\":{},\"vals\":{}}}",
            class,
            values_json(values)
        ),
    }
}

/// Parse a header line; `Ok(version)` when it is a `tesla_trace`
/// header at all (the caller rejects unsupported versions with a
/// positioned diagnostic).
pub fn parse_header(line: &str) -> Result<u32, String> {
    let v = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.as_object().is_none() {
        return Err("header must be a JSON object".to_string());
    }
    match v.get("tesla_trace").and_then(Json::as_u64) {
        Some(ver) => u32::try_from(ver).map_err(|_| format!("absurd trace version {ver}")),
        None => Err(format!(
            "first line must be the version header {TRACE_HEADER}"
        )),
    }
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn str_field(obj: &Json, key: &str) -> Result<String, String> {
    field(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field {key:?} must be a string"))
}

fn value_field(obj: &Json, key: &str) -> Result<Value, String> {
    field(obj, key)?
        .as_u64()
        .map(Value)
        .ok_or_else(|| format!("field {key:?} must be an unsigned integer"))
}

fn values_field(obj: &Json, key: &str) -> Result<Vec<Value>, String> {
    let arr = field(obj, key)?
        .as_array()
        .ok_or_else(|| format!("field {key:?} must be an array"))?;
    arr.iter()
        .map(|v| {
            v.as_u64()
                .map(Value)
                .ok_or_else(|| format!("field {key:?} must contain unsigned integers"))
        })
        .collect()
}

/// Parse one event line. The error is the *reason*; the transport
/// layer wraps it with line/offset position.
pub fn parse_event(line: &str) -> Result<IngressEvent, String> {
    let obj = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if obj.as_object().is_none() {
        return Err("event must be a JSON object".to_string());
    }
    let ev = str_field(&obj, "ev")?;
    match ev.as_str() {
        "fn_entry" => Ok(IngressEvent::FnEntry {
            name: str_field(&obj, "fn")?,
            args: values_field(&obj, "args")?,
        }),
        "fn_exit" => Ok(IngressEvent::FnExit {
            name: str_field(&obj, "fn")?,
            args: values_field(&obj, "args")?,
            ret: value_field(&obj, "ret")?,
        }),
        "field_store" => {
            let op_s = str_field(&obj, "op")?;
            let op = op_from_label(&op_s).ok_or_else(|| {
                format!("unknown field operator {op_s:?} (want =, +=, -=, |=, &=)")
            })?;
            Ok(IngressEvent::FieldStore {
                strct: str_field(&obj, "struct")?,
                field: str_field(&obj, "field")?,
                object: value_field(&obj, "obj")?,
                op,
                value: value_field(&obj, "val")?,
            })
        }
        "msg_entry" => Ok(IngressEvent::MsgEntry {
            selector: str_field(&obj, "sel")?,
            receiver: value_field(&obj, "recv")?,
            args: values_field(&obj, "args")?,
        }),
        "msg_exit" => Ok(IngressEvent::MsgExit {
            selector: str_field(&obj, "sel")?,
            receiver: value_field(&obj, "recv")?,
            args: values_field(&obj, "args")?,
            ret: value_field(&obj, "ret")?,
        }),
        "site" => {
            let class = field(&obj, "class")?
                .as_u64()
                .and_then(|c| u32::try_from(c).ok())
                .ok_or_else(|| "field \"class\" must be a u32".to_string())?;
            Ok(IngressEvent::AssertionSite {
                class,
                values: values_field(&obj, "vals")?,
            })
        }
        other => Err(format!("unknown event kind {other:?}")),
    }
}

/// The event shape held by an [`EventScratch`] after a successful
/// decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    FnEntry,
    FnExit,
    FieldStore,
    MsgEntry,
    MsgExit,
    Site,
}

// One bit per known wire field, for duplicate detection and the
// per-kind required/allowed masks.
const B_EV: u32 = 1 << 0;
const B_FN: u32 = 1 << 1;
const B_SEL: u32 = 1 << 2;
const B_STRUCT: u32 = 1 << 3;
const B_FIELD: u32 = 1 << 4;
const B_ARGS: u32 = 1 << 5;
const B_VALS: u32 = 1 << 6;
const B_RET: u32 = 1 << 7;
const B_OBJ: u32 = 1 << 8;
const B_RECV: u32 = 1 << 9;
const B_VAL: u32 = 1 << 10;
const B_OP: u32 = 1 << 11;
const B_CLASS: u32 = 1 << 12;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325_u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn scan_values(p: &mut Parser<'_>, out: &mut Vec<Value>) -> bool {
    out.clear();
    if !p.eat_ok(b'[') {
        return false;
    }
    p.ws();
    if p.eat_ok(b']') {
        return true;
    }
    loop {
        p.ws();
        match p.u64_token() {
            Some(v) => out.push(Value(v)),
            None => return false,
        }
        p.ws();
        if p.eat_ok(b',') {
            continue;
        }
        return p.eat_ok(b']');
    }
}

/// Reusable buffers for the borrowed event decode
/// ([`parse_event_ref`]). One scratch per decoder keeps the replay
/// hot loop free of per-event `String`/`Vec` allocations: names and
/// value lists land in these buffers and are handed out as an
/// [`IngressEventRef`] borrowing them.
#[derive(Debug)]
pub struct EventScratch {
    kind: EvKind,
    /// `fn` / `sel` / `struct` — every kind has at most one of them.
    name: String,
    field: String,
    args: Vec<Value>,
    /// `obj` / `recv`.
    a: Value,
    /// `ret` / `val`.
    b: Value,
    op: FieldOp,
    class: u32,
    label: String,
    key: String,
    tmp: String,
    unknown: Vec<u64>,
}

impl Default for EventScratch {
    fn default() -> EventScratch {
        EventScratch {
            kind: EvKind::FnEntry,
            name: String::new(),
            field: String::new(),
            args: Vec::new(),
            a: Value(0),
            b: Value(0),
            op: FieldOp::Assign,
            class: 0,
            label: String::new(),
            key: String::new(),
            tmp: String::new(),
            unknown: Vec::new(),
        }
    }
}

impl EventScratch {
    /// Fresh scratch buffers.
    pub fn new() -> EventScratch {
        EventScratch::default()
    }

    /// Single-pass scan of one event line into the scratch buffers.
    /// Returns `false` on *anything* unexpected — malformed JSON,
    /// wrong field types, duplicate keys, schema violations — in
    /// which case the caller re-parses through the [`Json`] tree
    /// path, whose verdict (and error message) is authoritative. The
    /// scanner therefore only has to be exactly right about the
    /// lines it accepts.
    fn scan(&mut self, line: &str) -> bool {
        self.name.clear();
        self.field.clear();
        self.args.clear();
        self.label.clear();
        self.unknown.clear();
        let mut p = Parser::new(line);
        let mut seen = 0u32;
        p.ws();
        if !p.eat_ok(b'{') {
            return false;
        }
        p.ws();
        if !p.eat_ok(b'}') {
            loop {
                p.ws();
                self.key.clear();
                if p.string_into(&mut self.key).is_err() {
                    return false;
                }
                p.ws();
                if !p.eat_ok(b':') {
                    return false;
                }
                p.ws();
                let bit = match self.key.as_str() {
                    "ev" => B_EV,
                    "fn" => B_FN,
                    "sel" => B_SEL,
                    "struct" => B_STRUCT,
                    "field" => B_FIELD,
                    "args" => B_ARGS,
                    "vals" => B_VALS,
                    "ret" => B_RET,
                    "obj" => B_OBJ,
                    "recv" => B_RECV,
                    "val" => B_VAL,
                    "op" => B_OP,
                    "class" => B_CLASS,
                    _ => 0,
                };
                if bit != 0 {
                    if seen & bit != 0 {
                        return false;
                    }
                    seen |= bit;
                } else {
                    // Unknown keys are skipped but must still fail
                    // on duplicates (a hash collision merely forces
                    // the fallback, which decides for real).
                    let h = fnv1a(self.key.as_bytes());
                    if self.unknown.contains(&h) {
                        return false;
                    }
                    self.unknown.push(h);
                }
                let ok = match bit {
                    B_EV => {
                        self.label.clear();
                        p.string_into(&mut self.label).is_ok()
                    }
                    B_FN | B_SEL | B_STRUCT => {
                        self.name.clear();
                        p.string_into(&mut self.name).is_ok()
                    }
                    B_FIELD => {
                        self.field.clear();
                        p.string_into(&mut self.field).is_ok()
                    }
                    B_OP => {
                        self.tmp.clear();
                        p.string_into(&mut self.tmp).is_ok()
                            && match op_from_label(&self.tmp) {
                                Some(op) => {
                                    self.op = op;
                                    true
                                }
                                None => false,
                            }
                    }
                    B_ARGS | B_VALS => scan_values(&mut p, &mut self.args),
                    B_OBJ | B_RECV => match p.u64_token() {
                        Some(v) => {
                            self.a = Value(v);
                            true
                        }
                        None => false,
                    },
                    B_RET | B_VAL => match p.u64_token() {
                        Some(v) => {
                            self.b = Value(v);
                            true
                        }
                        None => false,
                    },
                    B_CLASS => match p.u64_token().and_then(|v| u32::try_from(v).ok()) {
                        Some(c) => {
                            self.class = c;
                            true
                        }
                        None => false,
                    },
                    _ => p.skip_value().is_ok(),
                };
                if !ok {
                    return false;
                }
                p.ws();
                if p.eat_ok(b',') {
                    continue;
                }
                if p.eat_ok(b'}') {
                    break;
                }
                return false;
            }
        }
        p.ws();
        if !p.at_end() || seen & B_EV == 0 {
            return false;
        }
        let (kind, required) = match self.label.as_str() {
            "fn_entry" => (EvKind::FnEntry, B_FN | B_ARGS),
            "fn_exit" => (EvKind::FnExit, B_FN | B_ARGS | B_RET),
            "field_store" => (
                EvKind::FieldStore,
                B_STRUCT | B_FIELD | B_OBJ | B_OP | B_VAL,
            ),
            "msg_entry" => (EvKind::MsgEntry, B_SEL | B_RECV | B_ARGS),
            "msg_exit" => (EvKind::MsgExit, B_SEL | B_RECV | B_ARGS | B_RET),
            "site" => (EvKind::Site, B_CLASS | B_VALS),
            _ => return false,
        };
        // Off-schema known keys (e.g. a stray "vals" on fn_entry)
        // share buffers with schema keys, so hand those lines to the
        // fallback, which reads exactly the fields it needs.
        if seen & required != required || seen & !(required | B_EV) != 0 {
            return false;
        }
        self.kind = kind;
        true
    }

    fn fill_from(&mut self, ev: IngressEvent) {
        match ev {
            IngressEvent::FnEntry { name, args } => {
                self.kind = EvKind::FnEntry;
                self.name = name;
                self.args = args;
            }
            IngressEvent::FnExit { name, args, ret } => {
                self.kind = EvKind::FnExit;
                self.name = name;
                self.args = args;
                self.b = ret;
            }
            IngressEvent::FieldStore {
                strct,
                field,
                object,
                op,
                value,
            } => {
                self.kind = EvKind::FieldStore;
                self.name = strct;
                self.field = field;
                self.a = object;
                self.op = op;
                self.b = value;
            }
            IngressEvent::MsgEntry {
                selector,
                receiver,
                args,
            } => {
                self.kind = EvKind::MsgEntry;
                self.name = selector;
                self.a = receiver;
                self.args = args;
            }
            IngressEvent::MsgExit {
                selector,
                receiver,
                args,
                ret,
            } => {
                self.kind = EvKind::MsgExit;
                self.name = selector;
                self.a = receiver;
                self.args = args;
                self.b = ret;
            }
            IngressEvent::AssertionSite { class, values } => {
                self.kind = EvKind::Site;
                self.class = class;
                self.args = values;
            }
        }
    }

    fn as_event_ref(&self) -> IngressEventRef<'_> {
        match self.kind {
            EvKind::FnEntry => IngressEventRef::FnEntry {
                name: &self.name,
                args: &self.args,
            },
            EvKind::FnExit => IngressEventRef::FnExit {
                name: &self.name,
                args: &self.args,
                ret: self.b,
            },
            EvKind::FieldStore => IngressEventRef::FieldStore {
                strct: &self.name,
                field: &self.field,
                object: self.a,
                op: self.op,
                value: self.b,
            },
            EvKind::MsgEntry => IngressEventRef::MsgEntry {
                selector: &self.name,
                receiver: self.a,
                args: &self.args,
            },
            EvKind::MsgExit => IngressEventRef::MsgExit {
                selector: &self.name,
                receiver: self.a,
                args: &self.args,
                ret: self.b,
            },
            EvKind::Site => IngressEventRef::AssertionSite {
                class: self.class,
                values: &self.args,
            },
        }
    }
}

/// [`parse_event`], minus the per-event allocations: on the replay
/// hot path names and value lists are decoded straight into
/// `scratch`'s reused buffers and returned as a borrowing
/// [`IngressEventRef`]. Behaviour is identical to [`parse_event`] —
/// any line the fast scanner is unsure about is re-parsed through
/// the `Json` tree path, so accepted events and error messages
/// match byte for byte.
///
/// # Errors
///
/// Exactly the errors of [`parse_event`].
pub fn parse_event_ref<'s>(
    line: &str,
    scratch: &'s mut EventScratch,
) -> Result<IngressEventRef<'s>, String> {
    if !scratch.scan(line) {
        let owned = parse_event(line)?;
        scratch.fill_from(owned);
    }
    Ok(scratch.as_event_ref())
}

/// Streams events to a [`Write`] in the version-1 wire format. The
/// header is emitted lazily before the first event, so an empty
/// recording still produces a valid (header-only) trace via
/// [`TraceWriter::finish`].
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    wrote_header: bool,
    events: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Wrap a sink.
    pub fn new(w: W) -> TraceWriter<W> {
        TraceWriter {
            w,
            wrote_header: false,
            events: 0,
        }
    }

    fn header(&mut self) -> std::io::Result<()> {
        if !self.wrote_header {
            writeln!(self.w, "{TRACE_HEADER}")?;
            self.wrote_header = true;
        }
        Ok(())
    }

    /// Append one event line.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn record(&mut self, ev: &IngressEventRef<'_>) -> std::io::Result<()> {
        self.header()?;
        writeln!(self.w, "{}", format_event(ev))?;
        self.events += 1;
        Ok(())
    }

    /// Events written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Write the header if nothing was recorded, flush, and hand the
    /// sink back.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.header()?;
        self.w.flush()?;
        Ok(self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: IngressEvent) {
        let line = format_event(&ev.as_ref());
        assert_eq!(parse_event(&line).unwrap(), ev, "line: {line}");
    }

    #[test]
    fn every_kind_roundtrips() {
        roundtrip(IngressEvent::FnEntry {
            name: "malloc".into(),
            args: vec![Value(16)],
        });
        roundtrip(IngressEvent::FnExit {
            name: "malloc".into(),
            args: vec![Value(16)],
            ret: Value(0xdead),
        });
        for op in [
            FieldOp::Assign,
            FieldOp::AddAssign,
            FieldOp::SubAssign,
            FieldOp::OrAssign,
            FieldOp::AndAssign,
        ] {
            roundtrip(IngressEvent::FieldStore {
                strct: "conn".into(),
                field: "state".into(),
                object: Value(7),
                op,
                value: Value(2),
            });
        }
        roundtrip(IngressEvent::MsgEntry {
            selector: "lockFocus".into(),
            receiver: Value(3),
            args: vec![],
        });
        roundtrip(IngressEvent::MsgExit {
            selector: "lockFocus".into(),
            receiver: Value(3),
            args: vec![Value(1), Value(2)],
            ret: Value(0),
        });
        roundtrip(IngressEvent::AssertionSite {
            class: 4,
            values: vec![Value(7), Value(u64::MAX)],
        });
    }

    #[test]
    fn hostile_names_roundtrip() {
        for name in [
            "a\"b",
            "back\\slash",
            "nl\nnl",
            "ctl\x00\x1f",
            "uni\u{2028}",
        ] {
            roundtrip(IngressEvent::FnEntry {
                name: name.into(),
                args: vec![],
            });
        }
    }

    #[test]
    fn header_parses_and_rejects() {
        assert_eq!(parse_header(TRACE_HEADER).unwrap(), 1);
        assert_eq!(parse_header("{\"tesla_trace\":99}").unwrap(), 99);
        assert!(parse_header("{\"ev\":\"fn_entry\"}").is_err());
        assert!(parse_header("not json").is_err());
    }

    #[test]
    fn malformed_events_are_rejected_with_reasons() {
        for (line, needle) in [
            ("{\"ev\":\"warp\"}", "unknown event kind"),
            ("{\"ev\":\"fn_entry\"}", "missing field \"fn\""),
            ("{\"ev\":\"fn_exit\",\"fn\":\"f\",\"args\":[]}", "ret"),
            (
                "{\"ev\":\"fn_entry\",\"fn\":\"f\",\"args\":[-1]}",
                "unsigned",
            ),
            (
                "{\"ev\":\"field_store\",\"struct\":\"s\",\"field\":\"f\",\
                 \"obj\":1,\"op\":\"**=\",\"val\":2}",
                "unknown field operator",
            ),
            ("[1,2,3]", "must be a JSON object"),
            (
                "{\"ev\":\"fn_entry\",\"fn\":\"f\",\"args\":[",
                "invalid JSON",
            ),
        ] {
            let err = parse_event(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn unknown_fields_are_ignored_for_forward_compat() {
        let ev =
            parse_event("{\"ev\":\"fn_entry\",\"fn\":\"f\",\"args\":[1],\"future_field\":true}")
                .unwrap();
        assert_eq!(
            ev,
            IngressEvent::FnEntry {
                name: "f".into(),
                args: vec![Value(1)],
            }
        );
    }

    #[test]
    fn borrowed_parse_matches_owned() {
        let mut scratch = EventScratch::new();
        let lines = [
            "{\"ev\":\"fn_entry\",\"fn\":\"malloc\",\"args\":[16]}",
            "{\"ev\":\"fn_exit\",\"fn\":\"malloc\",\"args\":[16],\"ret\":57005}",
            "{\"ev\":\"field_store\",\"struct\":\"conn\",\"field\":\"state\",\
             \"obj\":7,\"op\":\"+=\",\"val\":2}",
            "{\"ev\":\"msg_entry\",\"sel\":\"lockFocus\",\"recv\":3,\"args\":[]}",
            "{\"ev\":\"msg_exit\",\"sel\":\"lockFocus\",\"recv\":3,\"args\":[1,2],\"ret\":0}",
            "{\"ev\":\"site\",\"class\":4,\"vals\":[7,18446744073709551615]}",
            // Escapes land in the scratch unescaped.
            "{\"ev\":\"fn_entry\",\"fn\":\"a\\\"b\\\\c\\n\",\"args\":[]}",
            // Unknown fields are skipped without affecting the event.
            "{\"ev\":\"fn_entry\",\"fn\":\"f\",\"args\":[1],\"future\":{\"x\":[true,null]}}",
            // Whitespace and reordered fields.
            " { \"args\" : [ 1 , 2 ] , \"fn\" : \"f\" , \"ev\" : \"fn_entry\" } ",
            // Off-schema known key: scanner defers to the tree path.
            "{\"ev\":\"fn_entry\",\"fn\":\"f\",\"args\":[1],\"vals\":[9]}",
        ];
        for line in lines {
            let owned = parse_event(line).expect(line);
            let borrowed = parse_event_ref(line, &mut scratch).expect(line);
            assert_eq!(borrowed.to_owned_event(), owned, "line: {line}");
        }
        // Malformed lines give byte-identical errors on both paths.
        let bad = [
            "{\"ev\":\"warp\"}",
            "{\"ev\":\"fn_entry\"}",
            "{\"ev\":\"fn_entry\",\"fn\":\"f\",\"args\":[-1]}",
            "{\"ev\":\"fn_entry\",\"fn\":\"f\",\"args\":[",
            "[1,2,3]",
            "{\"ev\":\"fn_entry\",\"fn\":\"f\",\"fn\":\"g\",\"args\":[]}",
            "{\"ev\":\"site\",\"class\":99999999999,\"vals\":[]}",
        ];
        for line in bad {
            let e1 = parse_event(line).expect_err(line);
            let e2 = parse_event_ref(line, &mut scratch).expect_err(line);
            assert_eq!(e1, e2, "line: {line}");
        }
    }

    #[test]
    fn writer_emits_header_even_when_empty() {
        let w = TraceWriter::new(Vec::new());
        let bytes = w.finish().unwrap();
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            format!("{TRACE_HEADER}\n")
        );
    }
}
