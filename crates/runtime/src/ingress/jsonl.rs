//! The versioned JSONL trace schema (`tesla_trace` version 1).
//!
//! A trace is a UTF-8 text stream, one JSON object per line:
//!
//! * The **first** non-blank line is the header
//!   `{"tesla_trace":1}`. A stream without it — or with a version
//!   this build does not speak — is rejected before any event is
//!   dispatched.
//! * Every following non-blank line is one event, discriminated by
//!   its `"ev"` field:
//!
//! ```text
//! {"ev":"fn_entry","fn":"EVP_VerifyFinal","args":[7,1]}
//! {"ev":"fn_exit","fn":"EVP_VerifyFinal","args":[7,1],"ret":1}
//! {"ev":"field_store","struct":"conn","field":"state","obj":7,"op":"=","val":2}
//! {"ev":"msg_entry","sel":"lockFocus","recv":3,"args":[]}
//! {"ev":"msg_exit","sel":"lockFocus","recv":3,"args":[],"ret":0}
//! {"ev":"site","class":0,"vals":[7]}
//! ```
//!
//! All values are unsigned 64-bit integers (the runtime's [`Value`]
//! domain). Unknown *fields* are ignored for forward compatibility;
//! unknown `"ev"` labels, missing required fields, and out-of-domain
//! values are malformed. Blank lines are permitted and skipped.
//! Versioning rule: additions that old readers can safely ignore
//! (new optional fields) do not bump the version; anything a version-1
//! reader would misinterpret (new event kinds, changed field
//! meanings) must.
//!
//! The writer ([`TraceWriter`]) emits names through the same
//! hardened escaper as the telemetry exporters, so traces stay
//! parseable for arbitrary interned names.

use crate::ingress::event::{IngressEvent, IngressEventRef};
use crate::ingress::json::Json;
use crate::telemetry::export::json_escape;
use std::io::Write;
use tesla_spec::{FieldOp, Value};

/// The schema version this build reads and writes.
pub const TRACE_VERSION: u32 = 1;

/// The header line starting every version-1 trace (no trailing
/// newline).
pub const TRACE_HEADER: &str = "{\"tesla_trace\":1}";

fn op_label(op: FieldOp) -> &'static str {
    match op {
        FieldOp::Assign => "=",
        FieldOp::AddAssign => "+=",
        FieldOp::SubAssign => "-=",
        FieldOp::OrAssign => "|=",
        FieldOp::AndAssign => "&=",
    }
}

fn op_from_label(s: &str) -> Option<FieldOp> {
    Some(match s {
        "=" => FieldOp::Assign,
        "+=" => FieldOp::AddAssign,
        "-=" => FieldOp::SubAssign,
        "|=" => FieldOp::OrAssign,
        "&=" => FieldOp::AndAssign,
        _ => return None,
    })
}

fn values_json(vs: &[Value]) -> String {
    let items: Vec<String> = vs.iter().map(|v| v.0.to_string()).collect();
    format!("[{}]", items.join(","))
}

/// Render one event as its single-line wire form (no trailing
/// newline).
pub fn format_event(ev: &IngressEventRef<'_>) -> String {
    match *ev {
        IngressEventRef::FnEntry { name, args } => format!(
            "{{\"ev\":\"fn_entry\",\"fn\":\"{}\",\"args\":{}}}",
            json_escape(name),
            values_json(args)
        ),
        IngressEventRef::FnExit { name, args, ret } => format!(
            "{{\"ev\":\"fn_exit\",\"fn\":\"{}\",\"args\":{},\"ret\":{}}}",
            json_escape(name),
            values_json(args),
            ret.0
        ),
        IngressEventRef::FieldStore {
            strct,
            field,
            object,
            op,
            value,
        } => format!(
            "{{\"ev\":\"field_store\",\"struct\":\"{}\",\"field\":\"{}\",\
             \"obj\":{},\"op\":\"{}\",\"val\":{}}}",
            json_escape(strct),
            json_escape(field),
            object.0,
            op_label(op),
            value.0
        ),
        IngressEventRef::MsgEntry {
            selector,
            receiver,
            args,
        } => format!(
            "{{\"ev\":\"msg_entry\",\"sel\":\"{}\",\"recv\":{},\"args\":{}}}",
            json_escape(selector),
            receiver.0,
            values_json(args)
        ),
        IngressEventRef::MsgExit {
            selector,
            receiver,
            args,
            ret,
        } => format!(
            "{{\"ev\":\"msg_exit\",\"sel\":\"{}\",\"recv\":{},\"args\":{},\"ret\":{}}}",
            json_escape(selector),
            receiver.0,
            values_json(args),
            ret.0
        ),
        IngressEventRef::AssertionSite { class, values } => format!(
            "{{\"ev\":\"site\",\"class\":{},\"vals\":{}}}",
            class,
            values_json(values)
        ),
    }
}

/// Parse a header line; `Ok(version)` when it is a `tesla_trace`
/// header at all (the caller rejects unsupported versions with a
/// positioned diagnostic).
pub fn parse_header(line: &str) -> Result<u32, String> {
    let v = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if v.as_object().is_none() {
        return Err("header must be a JSON object".to_string());
    }
    match v.get("tesla_trace").and_then(Json::as_u64) {
        Some(ver) => u32::try_from(ver).map_err(|_| format!("absurd trace version {ver}")),
        None => Err(format!(
            "first line must be the version header {TRACE_HEADER}"
        )),
    }
}

fn field<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn str_field(obj: &Json, key: &str) -> Result<String, String> {
    field(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("field {key:?} must be a string"))
}

fn value_field(obj: &Json, key: &str) -> Result<Value, String> {
    field(obj, key)?
        .as_u64()
        .map(Value)
        .ok_or_else(|| format!("field {key:?} must be an unsigned integer"))
}

fn values_field(obj: &Json, key: &str) -> Result<Vec<Value>, String> {
    let arr = field(obj, key)?
        .as_array()
        .ok_or_else(|| format!("field {key:?} must be an array"))?;
    arr.iter()
        .map(|v| {
            v.as_u64()
                .map(Value)
                .ok_or_else(|| format!("field {key:?} must contain unsigned integers"))
        })
        .collect()
}

/// Parse one event line. The error is the *reason*; the transport
/// layer wraps it with line/offset position.
pub fn parse_event(line: &str) -> Result<IngressEvent, String> {
    let obj = Json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    if obj.as_object().is_none() {
        return Err("event must be a JSON object".to_string());
    }
    let ev = str_field(&obj, "ev")?;
    match ev.as_str() {
        "fn_entry" => Ok(IngressEvent::FnEntry {
            name: str_field(&obj, "fn")?,
            args: values_field(&obj, "args")?,
        }),
        "fn_exit" => Ok(IngressEvent::FnExit {
            name: str_field(&obj, "fn")?,
            args: values_field(&obj, "args")?,
            ret: value_field(&obj, "ret")?,
        }),
        "field_store" => {
            let op_s = str_field(&obj, "op")?;
            let op = op_from_label(&op_s).ok_or_else(|| {
                format!("unknown field operator {op_s:?} (want =, +=, -=, |=, &=)")
            })?;
            Ok(IngressEvent::FieldStore {
                strct: str_field(&obj, "struct")?,
                field: str_field(&obj, "field")?,
                object: value_field(&obj, "obj")?,
                op,
                value: value_field(&obj, "val")?,
            })
        }
        "msg_entry" => Ok(IngressEvent::MsgEntry {
            selector: str_field(&obj, "sel")?,
            receiver: value_field(&obj, "recv")?,
            args: values_field(&obj, "args")?,
        }),
        "msg_exit" => Ok(IngressEvent::MsgExit {
            selector: str_field(&obj, "sel")?,
            receiver: value_field(&obj, "recv")?,
            args: values_field(&obj, "args")?,
            ret: value_field(&obj, "ret")?,
        }),
        "site" => {
            let class = field(&obj, "class")?
                .as_u64()
                .and_then(|c| u32::try_from(c).ok())
                .ok_or_else(|| "field \"class\" must be a u32".to_string())?;
            Ok(IngressEvent::AssertionSite {
                class,
                values: values_field(&obj, "vals")?,
            })
        }
        other => Err(format!("unknown event kind {other:?}")),
    }
}

/// Streams events to a [`Write`] in the version-1 wire format. The
/// header is emitted lazily before the first event, so an empty
/// recording still produces a valid (header-only) trace via
/// [`TraceWriter::finish`].
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    w: W,
    wrote_header: bool,
    events: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Wrap a sink.
    pub fn new(w: W) -> TraceWriter<W> {
        TraceWriter {
            w,
            wrote_header: false,
            events: 0,
        }
    }

    fn header(&mut self) -> std::io::Result<()> {
        if !self.wrote_header {
            writeln!(self.w, "{TRACE_HEADER}")?;
            self.wrote_header = true;
        }
        Ok(())
    }

    /// Append one event line.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn record(&mut self, ev: &IngressEventRef<'_>) -> std::io::Result<()> {
        self.header()?;
        writeln!(self.w, "{}", format_event(ev))?;
        self.events += 1;
        Ok(())
    }

    /// Events written so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Write the header if nothing was recorded, flush, and hand the
    /// sink back.
    ///
    /// # Errors
    ///
    /// Propagates sink I/O errors.
    pub fn finish(mut self) -> std::io::Result<W> {
        self.header()?;
        self.w.flush()?;
        Ok(self.w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: IngressEvent) {
        let line = format_event(&ev.as_ref());
        assert_eq!(parse_event(&line).unwrap(), ev, "line: {line}");
    }

    #[test]
    fn every_kind_roundtrips() {
        roundtrip(IngressEvent::FnEntry {
            name: "malloc".into(),
            args: vec![Value(16)],
        });
        roundtrip(IngressEvent::FnExit {
            name: "malloc".into(),
            args: vec![Value(16)],
            ret: Value(0xdead),
        });
        for op in [
            FieldOp::Assign,
            FieldOp::AddAssign,
            FieldOp::SubAssign,
            FieldOp::OrAssign,
            FieldOp::AndAssign,
        ] {
            roundtrip(IngressEvent::FieldStore {
                strct: "conn".into(),
                field: "state".into(),
                object: Value(7),
                op,
                value: Value(2),
            });
        }
        roundtrip(IngressEvent::MsgEntry {
            selector: "lockFocus".into(),
            receiver: Value(3),
            args: vec![],
        });
        roundtrip(IngressEvent::MsgExit {
            selector: "lockFocus".into(),
            receiver: Value(3),
            args: vec![Value(1), Value(2)],
            ret: Value(0),
        });
        roundtrip(IngressEvent::AssertionSite {
            class: 4,
            values: vec![Value(7), Value(u64::MAX)],
        });
    }

    #[test]
    fn hostile_names_roundtrip() {
        for name in [
            "a\"b",
            "back\\slash",
            "nl\nnl",
            "ctl\x00\x1f",
            "uni\u{2028}",
        ] {
            roundtrip(IngressEvent::FnEntry {
                name: name.into(),
                args: vec![],
            });
        }
    }

    #[test]
    fn header_parses_and_rejects() {
        assert_eq!(parse_header(TRACE_HEADER).unwrap(), 1);
        assert_eq!(parse_header("{\"tesla_trace\":99}").unwrap(), 99);
        assert!(parse_header("{\"ev\":\"fn_entry\"}").is_err());
        assert!(parse_header("not json").is_err());
    }

    #[test]
    fn malformed_events_are_rejected_with_reasons() {
        for (line, needle) in [
            ("{\"ev\":\"warp\"}", "unknown event kind"),
            ("{\"ev\":\"fn_entry\"}", "missing field \"fn\""),
            ("{\"ev\":\"fn_exit\",\"fn\":\"f\",\"args\":[]}", "ret"),
            (
                "{\"ev\":\"fn_entry\",\"fn\":\"f\",\"args\":[-1]}",
                "unsigned",
            ),
            (
                "{\"ev\":\"field_store\",\"struct\":\"s\",\"field\":\"f\",\
                 \"obj\":1,\"op\":\"**=\",\"val\":2}",
                "unknown field operator",
            ),
            ("[1,2,3]", "must be a JSON object"),
            (
                "{\"ev\":\"fn_entry\",\"fn\":\"f\",\"args\":[",
                "invalid JSON",
            ),
        ] {
            let err = parse_event(line).unwrap_err();
            assert!(err.contains(needle), "{line} -> {err}");
        }
    }

    #[test]
    fn unknown_fields_are_ignored_for_forward_compat() {
        let ev =
            parse_event("{\"ev\":\"fn_entry\",\"fn\":\"f\",\"args\":[1],\"future_field\":true}")
                .unwrap();
        assert_eq!(
            ev,
            IngressEvent::FnEntry {
                name: "f".into(),
                args: vec![Value(1)],
            }
        );
    }

    #[test]
    fn writer_emits_header_even_when_empty() {
        let w = TraceWriter::new(Vec::new());
        let bytes = w.finish().unwrap();
        assert_eq!(
            String::from_utf8(bytes).unwrap(),
            format!("{TRACE_HEADER}\n")
        );
    }
}
