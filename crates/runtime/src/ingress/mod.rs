//! Transport-agnostic event ingress.
//!
//! The engine's hooks ([`Tesla::fn_entry`] and friends) take interned
//! [`crate::NameId`]s — the right interface for woven instrumentation,
//! the wrong one for everything else. This module is the boundary
//! where *named* events from any transport become id-keyed hook
//! calls:
//!
//! * [`IngressEvent`]/[`IngressEventRef`] — the wire model covering
//!   the full hook surface;
//! * [`EventSource`] — anything that yields events: a recorded JSONL
//!   trace ([`JsonlSource`]), a live Unix socket ([`SocketSource`]),
//!   an in-memory buffer ([`BufferedSource`]), or the IR interpreter
//!   (adapted in `tesla-instrument`);
//! * [`Tesla::ingest`] — one event through per-source name
//!   resolution ([`NameCache`]) into the engine;
//! * [`Tesla::drive`] — the pump: drain a source, count what flowed
//!   ([`IngressStats`]), stop at the first error.
//!
//! Name-resolution policy, per namespace: *introducing* events
//! (`fn_entry`, `msg_entry`, `field_store`) intern their names —
//! producers legitimately mention functions the spec never saw.
//! *Closing* events (`fn_exit`, `msg_exit`) only resolve names that
//! already exist; a close for a never-seen name is a malformed
//! stream (most often a typo'd trace) and fails loudly rather than
//! interning the typo and passing vacuously forever after.

pub mod batch;
pub mod event;
pub mod json;
pub mod jsonl;
pub mod replay;
pub mod ring;
#[cfg(unix)]
pub mod socket;

pub use batch::BatchBuf;
pub use event::{IngressEvent, IngressEventRef};
pub use jsonl::{EventScratch, TraceWriter, TRACE_HEADER, TRACE_VERSION};
pub use replay::{JsonlSource, LineDecoder};
pub use ring::{BatchIngress, EventProducer};
#[cfg(unix)]
pub use socket::SocketSource;

use crate::engine::Tesla;
use crate::event::Violation;
use crate::intern::NameId;
use crate::telemetry::metrics::HookKind;
use std::collections::HashMap;

/// Why ingestion stopped: the transport layer's error taxonomy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngressError {
    /// The transport failed (open, bind, read). Not positioned: the
    /// stream itself is not at fault.
    Io(String),
    /// A line violated the wire schema. Positioned by 1-based line
    /// number and the byte offset of that line's start within the
    /// stream (per connection for socket transports).
    Malformed {
        /// 1-based line number.
        line: u64,
        /// Byte offset of the line's first byte.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// The stream's header declared a version this build does not
    /// speak.
    Version {
        /// 1-based line number of the header.
        line: u64,
        /// Byte offset of the header line.
        offset: u64,
        /// The declared version.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// A bounded wait (accept or read) expired.
    Timeout,
}

impl std::fmt::Display for IngressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngressError::Io(e) => write!(f, "ingress I/O error: {e}"),
            IngressError::Malformed {
                line,
                offset,
                detail,
            } => write!(
                f,
                "malformed trace line {line} (byte offset {offset}): {detail}"
            ),
            IngressError::Version {
                line,
                offset,
                found,
                supported,
            } => write!(
                f,
                "unsupported trace version {found} at line {line} \
                 (byte offset {offset}); this build speaks version {supported}"
            ),
            IngressError::Timeout => write!(f, "timed out waiting for the event stream"),
        }
    }
}

impl std::error::Error for IngressError {}

/// Anything that yields a stream of runtime events.
///
/// `Ok(None)` is clean end-of-stream; implementations must be fused
/// (keep returning `Ok(None)`). Errors are fatal to the stream.
pub trait EventSource {
    /// Pull the next event in borrowed form. Implementations may
    /// hand out references into internal buffers that the next call
    /// overwrites — the contract of [`IngressEventRef`].
    ///
    /// # Errors
    ///
    /// An [`IngressError`] from the taxonomy above; the stream must
    /// not be read further afterwards.
    fn next_event_ref(&mut self) -> Result<Option<IngressEventRef<'_>>, IngressError>;

    /// Pull the next event in owned form.
    ///
    /// # Errors
    ///
    /// As [`EventSource::next_event_ref`].
    fn next_event(&mut self) -> Result<Option<IngressEvent>, IngressError> {
        Ok(self.next_event_ref()?.map(|ev| ev.to_owned_event()))
    }
}

/// An in-memory [`EventSource`] — the adapter that makes any
/// collected event list (e.g. an interpreter run captured by a
/// recorder) replayable through the same pump as external streams.
#[derive(Debug, Default)]
pub struct BufferedSource {
    events: std::collections::VecDeque<IngressEvent>,
    /// The event most recently popped, kept alive so
    /// [`EventSource::next_event_ref`] can borrow from it.
    current: Option<IngressEvent>,
}

impl BufferedSource {
    /// Wrap a collected event list.
    pub fn new(events: Vec<IngressEvent>) -> BufferedSource {
        BufferedSource {
            events: events.into(),
            current: None,
        }
    }
}

impl From<Vec<IngressEvent>> for BufferedSource {
    fn from(events: Vec<IngressEvent>) -> BufferedSource {
        BufferedSource::new(events)
    }
}

impl EventSource for BufferedSource {
    fn next_event_ref(&mut self) -> Result<Option<IngressEventRef<'_>>, IngressError> {
        self.current = self.events.pop_front();
        Ok(self.current.as_ref().map(IngressEvent::as_ref))
    }

    fn next_event(&mut self) -> Result<Option<IngressEvent>, IngressError> {
        Ok(self.events.pop_front())
    }
}

/// Per-source name → id resolution state.
///
/// Each source owns one cache, so resolution is done exactly once
/// per distinct name per source and two sources feeding one engine
/// can never alias through a shared map. The namespaces are kept
/// apart exactly as the engine's dispatch tables keep them apart.
#[derive(Debug, Default)]
pub struct NameCache {
    fns: HashMap<String, NameId>,
    structs: HashMap<String, NameId>,
    fields: HashMap<String, NameId>,
    selectors: HashMap<String, NameId>,
}

impl NameCache {
    /// Fresh, empty cache.
    pub fn new() -> NameCache {
        NameCache::default()
    }

    fn intern(
        map: &mut HashMap<String, NameId>,
        name: &str,
        intern: impl FnOnce(&str) -> NameId,
    ) -> NameId {
        if let Some(id) = map.get(name) {
            return *id;
        }
        let id = intern(name);
        map.insert(name.to_string(), id);
        id
    }

    /// Resolve without interning: `None` when the engine has never
    /// seen `name` in this namespace.
    fn resolve(
        map: &mut HashMap<String, NameId>,
        name: &str,
        get: impl FnOnce(&str) -> Option<NameId>,
    ) -> Option<NameId> {
        if let Some(id) = map.get(name) {
            return Some(*id);
        }
        let id = get(name)?;
        map.insert(name.to_string(), id);
        Some(id)
    }
}

/// What flowed through one [`Tesla::drive`] call.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct IngressStats {
    /// Total events dispatched (including the one that errored, if
    /// any).
    pub events: u64,
    /// `fn_entry` events.
    pub fn_entries: u64,
    /// `fn_exit` events.
    pub fn_exits: u64,
    /// `field_store` events.
    pub field_stores: u64,
    /// `msg_entry` events.
    pub msg_entries: u64,
    /// `msg_exit` events.
    pub msg_exits: u64,
    /// `site` events.
    pub sites: u64,
}

/// Why a [`Tesla::drive`] stopped before draining its source.
#[derive(Debug, Clone, PartialEq)]
pub enum DriveError {
    /// The transport failed or the stream was malformed; carries the
    /// stats up to the failure.
    Source(IngressError, IngressStats),
    /// The engine reported a violation (fail-stop mode, or an
    /// unknown-name event in any mode); `seq` is the 1-based event
    /// ordinal.
    Event {
        /// 1-based ordinal of the offending event.
        seq: u64,
        /// The violation.
        violation: Violation,
        /// Stats up to and including the offending event.
        stats: IngressStats,
    },
}

impl std::fmt::Display for DriveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriveError::Source(e, _) => write!(f, "{e}"),
            DriveError::Event { seq, violation, .. } => {
                write!(f, "event {seq}: {violation}")
            }
        }
    }
}

impl std::error::Error for DriveError {}

impl Tesla {
    /// Dispatch one wire-model event into the engine, resolving
    /// names through `cache` (one cache per source).
    ///
    /// # Errors
    ///
    /// A [`Violation`] from the underlying hook, or a
    /// [`crate::ViolationKind::UnknownName`] violation when a closing
    /// event names something this engine never saw.
    pub fn ingest(&self, cache: &mut NameCache, ev: IngressEventRef<'_>) -> Result<(), Violation> {
        match ev {
            IngressEventRef::FnEntry { name, args } => {
                let id = NameCache::intern(&mut cache.fns, name, |n| self.intern_fn(n));
                self.fn_entry(id, args)
            }
            IngressEventRef::FnExit { name, args, ret } => {
                match NameCache::resolve(&mut cache.fns, name, |n| self.interner().get(n)) {
                    Some(id) => self.fn_exit(id, args, ret),
                    None => Err(Violation::unknown_name("function", name)),
                }
            }
            IngressEventRef::FieldStore {
                strct,
                field,
                object,
                op,
                value,
            } => {
                let sid = NameCache::intern(&mut cache.structs, strct, |n| self.intern_struct(n));
                let fid = NameCache::intern(&mut cache.fields, field, |n| self.intern_field(n));
                self.field_store(sid, fid, object, op, value)
            }
            IngressEventRef::MsgEntry {
                selector,
                receiver,
                args,
            } => {
                let id =
                    NameCache::intern(&mut cache.selectors, selector, |n| self.intern_selector(n));
                self.msg_entry(id, receiver, args)
            }
            IngressEventRef::MsgExit {
                selector,
                receiver,
                args,
                ret,
            } => {
                match NameCache::resolve(&mut cache.selectors, selector, |n| self.interner().get(n))
                {
                    Some(id) => self.msg_exit(id, receiver, args, ret),
                    None => Err(Violation::unknown_name("selector", selector)),
                }
            }
            IngressEventRef::AssertionSite { class, values } => {
                self.assertion_site(crate::ClassId(class), values)
            }
        }
    }

    /// Drain `source` into this engine: the pump behind `tesla
    /// replay` and `tesla attach`.
    ///
    /// Stops at the first transport error or hook violation; in
    /// [`crate::FailMode::Log`] violations are recorded and the drain
    /// continues, exactly as a live instrumented run would behave.
    ///
    /// With [`crate::Config::batch_size`] above 1 (the default),
    /// events are staged into a [`BatchBuf`] and dispatched through
    /// [`Tesla::dispatch_batch`], amortising the hook prologue.
    /// Verdicts, violation ordering, stats, and counters are
    /// byte-identical to the per-event path (`batch_size = 1`).
    ///
    /// # Errors
    ///
    /// [`DriveError`] describing what stopped the drain; both
    /// variants carry the stats accumulated so far.
    pub fn drive(&self, source: &mut dyn EventSource) -> Result<IngressStats, DriveError> {
        if self.config().batch_size > 1 {
            self.drive_batched(source)
        } else {
            self.drive_per_event(source)
        }
    }

    fn drive_per_event(&self, source: &mut dyn EventSource) -> Result<IngressStats, DriveError> {
        let mut cache = NameCache::new();
        let mut stats = IngressStats::default();
        loop {
            let ev = match source.next_event() {
                Ok(Some(ev)) => ev,
                Ok(None) => return Ok(stats),
                Err(e) => return Err(DriveError::Source(e, stats)),
            };
            stats.events += 1;
            match ev {
                IngressEvent::FnEntry { .. } => stats.fn_entries += 1,
                IngressEvent::FnExit { .. } => stats.fn_exits += 1,
                IngressEvent::FieldStore { .. } => stats.field_stores += 1,
                IngressEvent::MsgEntry { .. } => stats.msg_entries += 1,
                IngressEvent::MsgExit { .. } => stats.msg_exits += 1,
                IngressEvent::AssertionSite { .. } => stats.sites += 1,
            }
            if let Err(violation) = self.ingest(&mut cache, ev.as_ref()) {
                return Err(DriveError::Event {
                    seq: stats.events,
                    violation,
                    stats,
                });
            }
        }
    }

    /// Stage one borrowed event into `batch`, resolving names
    /// through `cache` with exactly [`Tesla::ingest`]'s policy:
    /// introducing events intern, closing events only resolve — an
    /// unknown closing name becomes a staged rejection that fails at
    /// the event's position in the batch.
    fn stage(&self, cache: &mut NameCache, batch: &mut BatchBuf, ev: IngressEventRef<'_>) {
        match ev {
            IngressEventRef::FnEntry { name, args } => {
                let id = NameCache::intern(&mut cache.fns, name, |n| self.intern_fn(n));
                batch.push_fn_entry(id, args);
            }
            IngressEventRef::FnExit { name, args, ret } => {
                match NameCache::resolve(&mut cache.fns, name, |n| self.interner().get(n)) {
                    Some(id) => batch.push_fn_exit(id, args, ret),
                    None => batch.push_reject(
                        HookKind::FnExit,
                        Violation::unknown_name("function", name),
                    ),
                }
            }
            IngressEventRef::FieldStore {
                strct,
                field,
                object,
                op,
                value,
            } => {
                let sid = NameCache::intern(&mut cache.structs, strct, |n| self.intern_struct(n));
                let fid = NameCache::intern(&mut cache.fields, field, |n| self.intern_field(n));
                batch.push_field_store(sid, fid, object, op, value);
            }
            IngressEventRef::MsgEntry {
                selector,
                receiver,
                args,
            } => {
                let id =
                    NameCache::intern(&mut cache.selectors, selector, |n| self.intern_selector(n));
                batch.push_msg_entry(id, receiver, args);
            }
            IngressEventRef::MsgExit {
                selector,
                receiver,
                args,
                ret,
            } => {
                match NameCache::resolve(&mut cache.selectors, selector, |n| self.interner().get(n))
                {
                    Some(id) => batch.push_msg_exit(id, receiver, args, ret),
                    None => batch.push_reject(
                        HookKind::MsgExit,
                        Violation::unknown_name("selector", selector),
                    ),
                }
            }
            IngressEventRef::AssertionSite { class, values } => {
                batch.push_site(crate::ClassId(class), values);
            }
        }
    }

    fn drive_batched(&self, source: &mut dyn EventSource) -> Result<IngressStats, DriveError> {
        let batch_size = self.config().batch_size;
        let mut cache = NameCache::new();
        let mut stats = IngressStats::default();
        let mut batch = BatchBuf::with_capacity(batch_size);
        loop {
            batch.clear();
            // Fill phase: `None` keeps filling, `Some(None)` is clean
            // end-of-stream, `Some(Some(e))` a transport error. In
            // either terminal case the events buffered *before* it
            // still dispatch — and an event-level violation among
            // them wins over the transport error, exactly as the
            // per-event path would report it first.
            let mut stop: Option<Option<IngressError>> = None;
            while batch.len() < batch_size {
                match source.next_event_ref() {
                    Ok(Some(ev)) => self.stage(&mut cache, &mut batch, ev),
                    Ok(None) => {
                        stop = Some(None);
                        break;
                    }
                    Err(e) => {
                        stop = Some(Some(e));
                        break;
                    }
                }
            }
            if let Err((idx, violation)) = self.dispatch_batch(&batch) {
                batch.count_into(&mut stats, idx + 1);
                return Err(DriveError::Event {
                    seq: stats.events,
                    violation,
                    stats,
                });
            }
            batch.count_into(&mut stats, batch.len());
            match stop {
                Some(None) => return Ok(stats),
                Some(Some(e)) => return Err(DriveError::Source(e, stats)),
                None => {}
            }
        }
    }
}
