//! Batched event buffers for the compiled-dispatch drain.
//!
//! Per-event dispatch pays the full hook prologue — snapshot load,
//! telemetry counter RMW, store-shard lock — for every single event.
//! A [`BatchBuf`] lets the ingestion layer stage up to
//! [`crate::Config::batch_size`] events (names already resolved to
//! [`NameId`]s, payload values packed into one arena) and hand them
//! to [`crate::Tesla::dispatch_batch`], which amortises those
//! prologue costs across the whole batch while keeping verdicts,
//! violation ordering, and counters byte-identical to the per-event
//! path.

use crate::event::Violation;
use crate::ingress::IngressStats;
use crate::intern::NameId;
use crate::telemetry::metrics::HookKind;
use crate::ClassId;
use tesla_spec::{FieldOp, Value};

/// One staged event with names pre-resolved and values stored as a
/// `(start, len)` span into the owning [`BatchBuf`]'s value arena.
#[derive(Debug, Clone)]
pub(crate) enum BatchItem {
    FnEntry {
        f: NameId,
        args: (u32, u32),
    },
    FnExit {
        f: NameId,
        args: (u32, u32),
        ret: Value,
    },
    FieldStore {
        strct: NameId,
        field: NameId,
        object: Value,
        op: FieldOp,
        value: Value,
    },
    MsgEntry {
        sel: NameId,
        recv: Value,
        args: (u32, u32),
    },
    MsgExit {
        sel: NameId,
        recv: Value,
        args: (u32, u32),
        ret: Value,
    },
    Site {
        class: ClassId,
        vals: (u32, u32),
    },
    /// A closing event whose name the engine never saw. The
    /// per-event path fails at this event's position without running
    /// any hook; the batched drain reproduces that by carrying the
    /// violation to the event's slot in the batch.
    Reject {
        kind: HookKind,
        violation: Violation,
    },
}

impl BatchItem {
    /// The hook kind this item dispatches as (used for stats).
    pub(crate) fn kind(&self) -> HookKind {
        match self {
            BatchItem::FnEntry { .. } => HookKind::FnEntry,
            BatchItem::FnExit { .. } => HookKind::FnExit,
            BatchItem::FieldStore { .. } => HookKind::FieldStore,
            BatchItem::MsgEntry { .. } => HookKind::MsgEntry,
            BatchItem::MsgExit { .. } => HookKind::MsgExit,
            BatchItem::Site { .. } => HookKind::AssertionSite,
            BatchItem::Reject { kind, .. } => *kind,
        }
    }
}

/// A reusable batch of staged events. Clearing keeps both the item
/// vector and the value arena allocated, so a steady-state drain
/// loop allocates nothing per batch.
#[derive(Debug, Default)]
pub struct BatchBuf {
    pub(crate) items: Vec<BatchItem>,
    pub(crate) vals: Vec<Value>,
}

impl BatchBuf {
    /// An empty batch.
    pub fn new() -> BatchBuf {
        BatchBuf::default()
    }

    /// An empty batch with room for `n` events.
    pub fn with_capacity(n: usize) -> BatchBuf {
        BatchBuf {
            items: Vec::with_capacity(n),
            vals: Vec::with_capacity(n * 4),
        }
    }

    /// Drop staged events, keeping allocations.
    pub fn clear(&mut self) {
        self.items.clear();
        self.vals.clear();
    }

    /// Number of staged events.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    fn span(&mut self, values: &[Value]) -> (u32, u32) {
        let start = u32::try_from(self.vals.len()).expect("batch value arena exceeds u32 range");
        let len = u32::try_from(values.len()).expect("event payload exceeds u32 range");
        self.vals.extend_from_slice(values);
        (start, len)
    }

    /// Resolve a span back to its payload slice.
    pub(crate) fn slice(&self, span: (u32, u32)) -> &[Value] {
        let (start, len) = (span.0 as usize, span.1 as usize);
        &self.vals[start..start + len]
    }

    /// Stage a `fn_entry` event.
    pub fn push_fn_entry(&mut self, f: NameId, args: &[Value]) {
        let args = self.span(args);
        self.items.push(BatchItem::FnEntry { f, args });
    }

    /// Stage a `fn_exit` event.
    pub fn push_fn_exit(&mut self, f: NameId, args: &[Value], ret: Value) {
        let args = self.span(args);
        self.items.push(BatchItem::FnExit { f, args, ret });
    }

    /// Stage a `field_store` event.
    pub fn push_field_store(
        &mut self,
        strct: NameId,
        field: NameId,
        object: Value,
        op: FieldOp,
        value: Value,
    ) {
        self.items.push(BatchItem::FieldStore {
            strct,
            field,
            object,
            op,
            value,
        });
    }

    /// Stage a `msg_entry` event.
    pub fn push_msg_entry(&mut self, sel: NameId, recv: Value, args: &[Value]) {
        let args = self.span(args);
        self.items.push(BatchItem::MsgEntry { sel, recv, args });
    }

    /// Stage a `msg_exit` event.
    pub fn push_msg_exit(&mut self, sel: NameId, recv: Value, args: &[Value], ret: Value) {
        let args = self.span(args);
        self.items.push(BatchItem::MsgExit {
            sel,
            recv,
            args,
            ret,
        });
    }

    /// Stage an assertion-site event.
    pub fn push_site(&mut self, class: ClassId, vals: &[Value]) {
        let vals = self.span(vals);
        self.items.push(BatchItem::Site { class, vals });
    }

    /// Stage a pre-judged rejection (unknown closing name).
    pub(crate) fn push_reject(&mut self, kind: HookKind, violation: Violation) {
        self.items.push(BatchItem::Reject { kind, violation });
    }

    /// Add the first `n` staged events to `stats`, per kind.
    pub(crate) fn count_into(&self, stats: &mut IngressStats, n: usize) {
        for item in &self.items[..n] {
            stats.events += 1;
            match item.kind() {
                HookKind::FnEntry => stats.fn_entries += 1,
                HookKind::FnExit => stats.fn_exits += 1,
                HookKind::FieldStore => stats.field_stores += 1,
                HookKind::MsgEntry => stats.msg_entries += 1,
                HookKind::MsgExit => stats.msg_exits += 1,
                HookKind::AssertionSite => stats.sites += 1,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_address_the_value_arena() {
        let mut b = BatchBuf::new();
        b.push_fn_entry(NameId(0), &[Value(1), Value(2)]);
        b.push_site(ClassId(3), &[Value(9)]);
        assert_eq!(b.len(), 2);
        match b.items[0] {
            BatchItem::FnEntry { args, .. } => {
                assert_eq!(b.slice(args), &[Value(1), Value(2)]);
            }
            ref other => panic!("{other:?}"),
        }
        match b.items[1] {
            BatchItem::Site { vals, .. } => assert_eq!(b.slice(vals), &[Value(9)]),
            ref other => panic!("{other:?}"),
        }
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.vals.len(), 0);
    }

    #[test]
    fn count_into_tallies_prefixes() {
        let mut b = BatchBuf::new();
        b.push_fn_entry(NameId(0), &[]);
        b.push_fn_exit(NameId(0), &[], Value(0));
        b.push_site(ClassId(0), &[]);
        let mut stats = IngressStats::default();
        b.count_into(&mut stats, 2);
        assert_eq!(stats.events, 2);
        assert_eq!(stats.fn_entries, 1);
        assert_eq!(stats.fn_exits, 1);
        assert_eq!(stats.sites, 0);
    }
}
