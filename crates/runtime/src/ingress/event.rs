//! The transport-agnostic wire model for runtime events.
//!
//! [`IngressEvent`] is the owned form produced by deserialising a
//! transport ([`crate::ingress::EventSource`]); [`IngressEventRef`]
//! is the borrowed form that in-process producers (the IR
//! interpreter, recorders) build on the stack without allocating.
//! Both cover the full hook surface of [`crate::Tesla`]: function
//! entry/exit, structure field stores, Objective-C style message
//! entry/exit, and assertion sites.
//!
//! Names travel as strings; interned-id resolution happens at the
//! ingestion boundary ([`crate::Tesla::ingest`]), per source, so two
//! sources feeding one engine cannot confuse each other's ids.

use tesla_spec::{FieldOp, Value};

/// An owned runtime event as it crosses a transport boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngressEvent {
    /// A function was entered with these argument values.
    FnEntry {
        /// Function name.
        name: String,
        /// Argument values, in declaration order.
        args: Vec<Value>,
    },
    /// A function returned.
    FnExit {
        /// Function name; must have been seen entering before
        /// (an exit for a never-seen name is a malformed stream).
        name: String,
        /// The entry argument values.
        args: Vec<Value>,
        /// The return value.
        ret: Value,
    },
    /// A structure field was assigned.
    FieldStore {
        /// Structure type name.
        strct: String,
        /// Field name.
        field: String,
        /// The containing object.
        object: Value,
        /// Plain or compound assignment operator.
        op: FieldOp,
        /// The assigned value.
        value: Value,
    },
    /// A message send (method entry).
    MsgEntry {
        /// Selector name.
        selector: String,
        /// The receiver.
        receiver: Value,
        /// Argument values.
        args: Vec<Value>,
    },
    /// A method returned.
    MsgExit {
        /// Selector name; same never-seen rule as [`IngressEvent::FnExit`].
        selector: String,
        /// The receiver.
        receiver: Value,
        /// Argument values.
        args: Vec<Value>,
        /// The return value.
        ret: Value,
    },
    /// Execution reached an assertion site.
    AssertionSite {
        /// The registered class index ([`crate::ClassId`] value).
        class: u32,
        /// The scope's variable values in variable-index order.
        values: Vec<Value>,
    },
}

/// A borrowed runtime event; what in-process adapters hand to
/// [`crate::Tesla::ingest`] without allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IngressEventRef<'a> {
    /// See [`IngressEvent::FnEntry`].
    FnEntry {
        /// Function name.
        name: &'a str,
        /// Argument values.
        args: &'a [Value],
    },
    /// See [`IngressEvent::FnExit`].
    FnExit {
        /// Function name.
        name: &'a str,
        /// Entry argument values.
        args: &'a [Value],
        /// Return value.
        ret: Value,
    },
    /// See [`IngressEvent::FieldStore`].
    FieldStore {
        /// Structure type name.
        strct: &'a str,
        /// Field name.
        field: &'a str,
        /// Containing object.
        object: Value,
        /// Assignment operator.
        op: FieldOp,
        /// Assigned value.
        value: Value,
    },
    /// See [`IngressEvent::MsgEntry`].
    MsgEntry {
        /// Selector name.
        selector: &'a str,
        /// Receiver.
        receiver: Value,
        /// Argument values.
        args: &'a [Value],
    },
    /// See [`IngressEvent::MsgExit`].
    MsgExit {
        /// Selector name.
        selector: &'a str,
        /// Receiver.
        receiver: Value,
        /// Argument values.
        args: &'a [Value],
        /// Return value.
        ret: Value,
    },
    /// See [`IngressEvent::AssertionSite`].
    AssertionSite {
        /// Class index.
        class: u32,
        /// Variable values.
        values: &'a [Value],
    },
}

impl IngressEvent {
    /// Borrow this event for ingestion.
    pub fn as_ref(&self) -> IngressEventRef<'_> {
        match self {
            IngressEvent::FnEntry { name, args } => IngressEventRef::FnEntry { name, args },
            IngressEvent::FnExit { name, args, ret } => IngressEventRef::FnExit {
                name,
                args,
                ret: *ret,
            },
            IngressEvent::FieldStore {
                strct,
                field,
                object,
                op,
                value,
            } => IngressEventRef::FieldStore {
                strct,
                field,
                object: *object,
                op: *op,
                value: *value,
            },
            IngressEvent::MsgEntry {
                selector,
                receiver,
                args,
            } => IngressEventRef::MsgEntry {
                selector,
                receiver: *receiver,
                args,
            },
            IngressEvent::MsgExit {
                selector,
                receiver,
                args,
                ret,
            } => IngressEventRef::MsgExit {
                selector,
                receiver: *receiver,
                args,
                ret: *ret,
            },
            IngressEvent::AssertionSite { class, values } => IngressEventRef::AssertionSite {
                class: *class,
                values,
            },
        }
    }

    /// The wire-schema label for this event kind (the `"ev"` field).
    pub fn kind_label(&self) -> &'static str {
        self.as_ref().kind_label()
    }
}

impl IngressEventRef<'_> {
    /// The wire-schema label for this event kind (the `"ev"` field).
    pub fn kind_label(&self) -> &'static str {
        match self {
            IngressEventRef::FnEntry { .. } => "fn_entry",
            IngressEventRef::FnExit { .. } => "fn_exit",
            IngressEventRef::FieldStore { .. } => "field_store",
            IngressEventRef::MsgEntry { .. } => "msg_entry",
            IngressEventRef::MsgExit { .. } => "msg_exit",
            IngressEventRef::AssertionSite { .. } => "site",
        }
    }

    /// Deep-copy into the owned form.
    pub fn to_owned_event(&self) -> IngressEvent {
        match *self {
            IngressEventRef::FnEntry { name, args } => IngressEvent::FnEntry {
                name: name.to_string(),
                args: args.to_vec(),
            },
            IngressEventRef::FnExit { name, args, ret } => IngressEvent::FnExit {
                name: name.to_string(),
                args: args.to_vec(),
                ret,
            },
            IngressEventRef::FieldStore {
                strct,
                field,
                object,
                op,
                value,
            } => IngressEvent::FieldStore {
                strct: strct.to_string(),
                field: field.to_string(),
                object,
                op,
                value,
            },
            IngressEventRef::MsgEntry {
                selector,
                receiver,
                args,
            } => IngressEvent::MsgEntry {
                selector: selector.to_string(),
                receiver,
                args: args.to_vec(),
            },
            IngressEventRef::MsgExit {
                selector,
                receiver,
                args,
                ret,
            } => IngressEvent::MsgExit {
                selector: selector.to_string(),
                receiver,
                args: args.to_vec(),
                ret,
            },
            IngressEventRef::AssertionSite { class, values } => IngressEvent::AssertionSite {
                class,
                values: values.to_vec(),
            },
        }
    }
}
