//! Replaying recorded JSONL traces from files and pipes.
//!
//! [`LineDecoder`] is the transport-independent framing layer: it
//! pulls lines off any [`BufRead`], enforces the version header,
//! tracks 1-based line numbers and byte offsets, and converts parse
//! failures into positioned [`IngressError::Malformed`] diagnostics
//! instead of panicking. [`JsonlSource`] wraps it around a file (or
//! anything readable); the Unix-socket transport reuses the decoder
//! per connection.

use crate::ingress::event::{IngressEvent, IngressEventRef};
use crate::ingress::jsonl::{
    parse_event, parse_event_ref, parse_header, EventScratch, TRACE_VERSION,
};
use crate::ingress::{EventSource, IngressError};
use std::fs::File;
use std::io::{BufRead, BufReader, ErrorKind};
use std::path::Path;

/// Line-oriented trace framing over any [`BufRead`], with positioned
/// diagnostics.
#[derive(Debug)]
pub struct LineDecoder<R: BufRead> {
    r: R,
    /// 1-based number of the line currently being read.
    line_no: u64,
    /// Byte offset of the start of the current line.
    line_start: u64,
    /// Total bytes consumed.
    offset: u64,
    header_seen: bool,
    buf: String,
    scratch: EventScratch,
}

impl<R: BufRead> LineDecoder<R> {
    /// Start decoding a fresh stream (header not yet seen).
    pub fn new(r: R) -> LineDecoder<R> {
        LineDecoder {
            r,
            line_no: 0,
            line_start: 0,
            offset: 0,
            header_seen: false,
            buf: String::new(),
            scratch: EventScratch::new(),
        }
    }

    /// The position of the line most recently read, as
    /// `(line, byte_offset)`.
    pub fn position(&self) -> (u64, u64) {
        (self.line_no, self.line_start)
    }

    fn malformed(&self, detail: String) -> IngressError {
        IngressError::Malformed {
            line: self.line_no,
            offset: self.line_start,
            detail,
        }
    }

    /// Pull the next event, validating the header on first use.
    ///
    /// `Ok(None)` is clean end-of-stream. A timeout-flavoured I/O
    /// error (`WouldBlock`/`TimedOut`, as produced by socket read
    /// timeouts) surfaces as [`IngressError::Timeout`]; any other
    /// read failure as [`IngressError::Io`].
    ///
    /// # Errors
    ///
    /// See above; malformed lines yield
    /// [`IngressError::Malformed`] with this decoder's position.
    pub fn next_event(&mut self) -> Result<Option<IngressEvent>, IngressError> {
        if !self.advance()? {
            return Ok(None);
        }
        let line = self.buf.trim_end_matches(['\n', '\r']);
        match parse_event(line) {
            Ok(ev) => Ok(Some(ev)),
            Err(e) => Err(self.malformed(e)),
        }
    }

    /// [`LineDecoder::next_event`], returning the borrowed event form
    /// — names and value lists point into this decoder's reused
    /// buffers, so the replay hot loop performs no per-event
    /// allocations.
    ///
    /// # Errors
    ///
    /// As [`LineDecoder::next_event`].
    pub fn next_event_ref(&mut self) -> Result<Option<IngressEventRef<'_>>, IngressError> {
        if !self.advance()? {
            return Ok(None);
        }
        self.parse_current().map(Some)
    }

    /// Advance to the next event line, validating the header on first
    /// use and skipping blanks. `Ok(true)` leaves the raw line in
    /// `self.buf`; `Ok(false)` is clean end-of-stream.
    fn advance(&mut self) -> Result<bool, IngressError> {
        loop {
            self.buf.clear();
            self.line_no += 1;
            self.line_start = self.offset;
            let n = self.r.read_line(&mut self.buf).map_err(|e| {
                match e.kind() {
                    ErrorKind::WouldBlock | ErrorKind::TimedOut => IngressError::Timeout,
                    // A line that is not UTF-8 is a framing problem,
                    // not an environment problem: position it.
                    ErrorKind::InvalidData => self.malformed("line is not valid UTF-8".into()),
                    _ => IngressError::Io(e.to_string()),
                }
            })?;
            if n == 0 {
                if !self.header_seen {
                    return Err(self.malformed(format!(
                        "empty stream: expected the version header \
                         {{\"tesla_trace\":{TRACE_VERSION}}}"
                    )));
                }
                return Ok(false);
            }
            self.offset += n as u64;
            let line = self.buf.trim_end_matches(['\n', '\r']);
            // Note: a final line without a newline terminator is
            // still parsed — a *syntactically complete* trailing line
            // is fine; a truncated one fails JSON parsing and gets a
            // positioned diagnostic like every other malformed line.
            if line.trim().is_empty() {
                continue;
            }
            if !self.header_seen {
                let ver = parse_header(line).map_err(|e| self.malformed(e))?;
                if ver != TRACE_VERSION {
                    return Err(IngressError::Version {
                        line: self.line_no,
                        offset: self.line_start,
                        found: ver,
                        supported: TRACE_VERSION,
                    });
                }
                self.header_seen = true;
                continue;
            }
            return Ok(true);
        }
    }

    /// Parse the event line left in `self.buf` by a successful
    /// [`LineDecoder::advance`], borrowing from the scratch buffers.
    /// Split from `next_event_ref` so connection-oriented transports
    /// can pump lines (handling reconnects) before taking the borrow.
    pub(crate) fn parse_current(&mut self) -> Result<IngressEventRef<'_>, IngressError> {
        // Copy the position out first: the error path must not touch
        // `self` once the scratch borrow is live.
        let (line, offset) = (self.line_no, self.line_start);
        let raw = self.buf.trim_end_matches(['\n', '\r']);
        match parse_event_ref(raw, &mut self.scratch) {
            Ok(ev) => Ok(ev),
            Err(detail) => Err(IngressError::Malformed {
                line,
                offset,
                detail,
            }),
        }
    }

    /// Transport-internal: pump to the next event line. See
    /// [`LineDecoder::parse_current`].
    pub(crate) fn pump(&mut self) -> Result<bool, IngressError> {
        self.advance()
    }
}

/// An [`EventSource`] over a recorded JSONL trace (file, pipe, or
/// any reader).
#[derive(Debug)]
pub struct JsonlSource<R: BufRead> {
    decoder: LineDecoder<R>,
}

impl JsonlSource<BufReader<File>> {
    /// Open a trace file.
    ///
    /// # Errors
    ///
    /// [`IngressError::Io`] when the file cannot be opened.
    pub fn open(path: &Path) -> Result<JsonlSource<BufReader<File>>, IngressError> {
        let f =
            File::open(path).map_err(|e| IngressError::Io(format!("{}: {e}", path.display())))?;
        Ok(JsonlSource::new(BufReader::new(f)))
    }
}

impl<R: BufRead> JsonlSource<R> {
    /// Decode a trace from any buffered reader (pipes, byte slices in
    /// tests).
    pub fn new(r: R) -> JsonlSource<R> {
        JsonlSource {
            decoder: LineDecoder::new(r),
        }
    }
}

impl<R: BufRead> EventSource for JsonlSource<R> {
    fn next_event_ref(&mut self) -> Result<Option<IngressEventRef<'_>>, IngressError> {
        self.decoder.next_event_ref()
    }

    fn next_event(&mut self) -> Result<Option<IngressEvent>, IngressError> {
        self.decoder.next_event()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingress::jsonl::TRACE_HEADER;
    use tesla_spec::Value;

    fn src(text: &str) -> JsonlSource<&[u8]> {
        JsonlSource::new(text.as_bytes())
    }

    #[test]
    fn reads_header_then_events_then_eof() {
        let text = format!(
            "{TRACE_HEADER}\n\
             {{\"ev\":\"fn_entry\",\"fn\":\"f\",\"args\":[1]}}\n\
             \n\
             {{\"ev\":\"site\",\"class\":0,\"vals\":[]}}\n"
        );
        let mut s = src(&text);
        assert_eq!(
            s.next_event().unwrap(),
            Some(IngressEvent::FnEntry {
                name: "f".into(),
                args: vec![Value(1)],
            })
        );
        assert_eq!(
            s.next_event().unwrap(),
            Some(IngressEvent::AssertionSite {
                class: 0,
                values: vec![],
            })
        );
        assert_eq!(s.next_event().unwrap(), None);
        assert_eq!(s.next_event().unwrap(), None); // fused
    }

    #[test]
    fn missing_header_is_positioned() {
        let mut s = src("{\"ev\":\"fn_entry\",\"fn\":\"f\",\"args\":[]}\n");
        match s.next_event().unwrap_err() {
            IngressError::Malformed {
                line,
                offset,
                detail,
            } => {
                assert_eq!((line, offset), (1, 0));
                assert!(detail.contains("version header"), "{detail}");
            }
            e => panic!("{e}"),
        }
    }

    #[test]
    fn future_version_is_rejected() {
        let mut s = src("{\"tesla_trace\":2}\n");
        match s.next_event().unwrap_err() {
            IngressError::Version {
                found, supported, ..
            } => {
                assert_eq!((found, supported), (2, 1));
            }
            e => panic!("{e}"),
        }
    }

    #[test]
    fn malformed_line_reports_line_and_offset() {
        let text = format!("{TRACE_HEADER}\n{{\"ev\":\"fn_entry\"}}\n");
        let mut s = src(&text);
        match s.next_event().unwrap_err() {
            IngressError::Malformed {
                line,
                offset,
                detail,
            } => {
                assert_eq!(line, 2);
                assert_eq!(offset, TRACE_HEADER.len() as u64 + 1);
                assert!(detail.contains("missing field"), "{detail}");
            }
            e => panic!("{e}"),
        }
    }

    #[test]
    fn truncated_final_line_is_malformed_not_a_panic() {
        let text = format!("{TRACE_HEADER}\n{{\"ev\":\"fn_entry\",\"fn\":\"f\",\"args\":[");
        let mut s = src(&text);
        match s.next_event().unwrap_err() {
            IngressError::Malformed { line, detail, .. } => {
                assert_eq!(line, 2);
                assert!(detail.contains("invalid JSON"), "{detail}");
            }
            e => panic!("{e}"),
        }
    }

    #[test]
    fn empty_stream_is_malformed() {
        assert!(matches!(
            src("").next_event().unwrap_err(),
            IngressError::Malformed {
                line: 1,
                offset: 0,
                ..
            }
        ));
    }

    #[test]
    fn complete_final_line_without_newline_parses() {
        let text = format!("{TRACE_HEADER}\n{{\"ev\":\"site\",\"class\":3,\"vals\":[9]}}");
        let mut s = src(&text);
        assert_eq!(
            s.next_event().unwrap(),
            Some(IngressEvent::AssertionSite {
                class: 3,
                values: vec![Value(9)],
            })
        );
        assert_eq!(s.next_event().unwrap(), None);
    }
}
