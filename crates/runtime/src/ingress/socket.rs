//! Live-attach ingestion over a Unix domain socket.
//!
//! [`SocketSource`] binds a listening socket and serves producer
//! connections one at a time, in accept order. Framing is
//! per-connection: every producer speaks the full JSONL schema —
//! its own version header first, then event lines — and
//! diagnostics carry the connection number alongside the line and
//! byte offset *within that connection's stream*.
//!
//! Timeouts are first-class rather than hangs: both the wait for a
//! connection and each read on an established connection are
//! bounded, surfacing [`IngressError::Timeout`] so the driving loop
//! (and the `tesla attach` verb) can report a stalled producer
//! instead of blocking forever.

#![cfg(unix)]

use crate::ingress::event::{IngressEvent, IngressEventRef};
use crate::ingress::replay::LineDecoder;
use crate::ingress::{EventSource, IngressError};
use std::io::BufReader;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// An [`EventSource`] accepting JSONL event streams over a Unix
/// domain socket.
#[derive(Debug)]
pub struct SocketSource {
    listener: UnixListener,
    path: PathBuf,
    conn: Option<LineDecoder<BufReader<UnixStream>>>,
    /// 1-based index of the connection currently being drained.
    conn_no: u64,
    /// Stop after serving this many connections.
    max_conns: u64,
    read_timeout: Duration,
    accept_timeout: Duration,
}

impl SocketSource {
    /// Bind `path`, replacing a stale socket file from a previous
    /// run. Defaults: serve exactly one connection, 10 s accept
    /// timeout, 10 s per-read timeout.
    ///
    /// # Errors
    ///
    /// [`IngressError::Io`] when the path cannot be bound.
    pub fn bind(path: &Path) -> Result<SocketSource, IngressError> {
        if path.exists() {
            std::fs::remove_file(path)
                .map_err(|e| IngressError::Io(format!("{}: {e}", path.display())))?;
        }
        let listener = UnixListener::bind(path)
            .map_err(|e| IngressError::Io(format!("{}: {e}", path.display())))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| IngressError::Io(e.to_string()))?;
        Ok(SocketSource {
            listener,
            path: path.to_path_buf(),
            conn: None,
            conn_no: 0,
            max_conns: 1,
            read_timeout: Duration::from_secs(10),
            accept_timeout: Duration::from_secs(10),
        })
    }

    /// Serve up to `n` connections (≥ 1) before reporting
    /// end-of-stream.
    pub fn max_conns(mut self, n: u64) -> SocketSource {
        self.max_conns = n.max(1);
        self
    }

    /// Bound each read on an established connection.
    pub fn read_timeout(mut self, d: Duration) -> SocketSource {
        self.read_timeout = d;
        self
    }

    /// Bound the wait for the next producer connection.
    pub fn accept_timeout(mut self, d: Duration) -> SocketSource {
        self.accept_timeout = d;
        self
    }

    /// The bound socket path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The 1-based index of the connection currently (or most
    /// recently) served.
    pub fn connection(&self) -> u64 {
        self.conn_no
    }

    fn accept(&mut self) -> Result<(), IngressError> {
        let start = Instant::now();
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    // The listener is non-blocking (for the bounded
                    // accept loop); reads on the accepted stream must
                    // block — up to the read timeout.
                    stream
                        .set_nonblocking(false)
                        .map_err(|e| IngressError::Io(e.to_string()))?;
                    stream
                        .set_read_timeout(Some(self.read_timeout))
                        .map_err(|e| IngressError::Io(e.to_string()))?;
                    self.conn_no += 1;
                    self.conn = Some(LineDecoder::new(BufReader::new(stream)));
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if start.elapsed() >= self.accept_timeout {
                        return Err(IngressError::Timeout);
                    }
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(IngressError::Io(e.to_string())),
            }
        }
    }

    /// Re-position a connection-relative diagnostic so the consumer
    /// sees which producer misbehaved.
    fn tag(&self, e: IngressError) -> IngressError {
        match e {
            IngressError::Malformed {
                line,
                offset,
                detail,
            } => IngressError::Malformed {
                line,
                offset,
                detail: format!("connection {}: {detail}", self.conn_no),
            },
            other => other,
        }
    }
}

impl Drop for SocketSource {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

impl EventSource for SocketSource {
    fn next_event_ref(&mut self) -> Result<Option<IngressEventRef<'_>>, IngressError> {
        // Phase 1: pump to the next event line without holding any
        // borrow, so connection turnover (clean hangups, reconnects)
        // can mutate `self.conn` freely.
        loop {
            if self.conn.is_none() {
                if self.conn_no >= self.max_conns {
                    return Ok(None);
                }
                self.accept()?;
            }
            let pumped = self
                .conn
                .as_mut()
                .expect("connection just established")
                .pump();
            match pumped {
                Ok(true) => break,
                // Producer hung up cleanly: move on to the next
                // connection (or finish).
                Ok(false) => self.conn = None,
                Err(e) => {
                    let e = self.tag(e);
                    self.conn = None;
                    return Err(e);
                }
            }
        }
        // Phase 2: one borrow for the parse. The error path must not
        // touch `self` again, so the connection tag is applied from
        // locals copied out beforehand.
        let conn_no = self.conn_no;
        let decoder = self.conn.as_mut().expect("pumped above");
        match decoder.parse_current() {
            Ok(ev) => Ok(Some(ev)),
            Err(IngressError::Malformed {
                line,
                offset,
                detail,
            }) => Err(IngressError::Malformed {
                line,
                offset,
                detail: format!("connection {conn_no}: {detail}"),
            }),
            Err(other) => Err(other),
        }
    }

    fn next_event(&mut self) -> Result<Option<IngressEvent>, IngressError> {
        loop {
            if self.conn.is_none() {
                if self.conn_no >= self.max_conns {
                    return Ok(None);
                }
                self.accept()?;
            }
            let decoder = self.conn.as_mut().expect("connection just established");
            match decoder.next_event() {
                Ok(Some(ev)) => return Ok(Some(ev)),
                // Producer hung up cleanly: move on to the next
                // connection (or finish).
                Ok(None) => self.conn = None,
                Err(e) => {
                    let e = self.tag(e);
                    self.conn = None;
                    return Err(e);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingress::jsonl::TRACE_HEADER;
    use std::io::Write;
    use tesla_spec::Value;

    fn sock_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("tesla-ingress-{tag}-{}.sock", std::process::id()))
    }

    #[test]
    fn one_connection_streams_events() {
        let path = sock_path("one");
        let mut src = SocketSource::bind(&path)
            .unwrap()
            .accept_timeout(Duration::from_secs(5));
        let writer_path = path.clone();
        let t = std::thread::spawn(move || {
            let mut s = UnixStream::connect(&writer_path).unwrap();
            writeln!(s, "{TRACE_HEADER}").unwrap();
            writeln!(s, "{{\"ev\":\"fn_entry\",\"fn\":\"f\",\"args\":[4]}}").unwrap();
        });
        assert_eq!(
            src.next_event().unwrap(),
            Some(IngressEvent::FnEntry {
                name: "f".into(),
                args: vec![Value(4)],
            })
        );
        assert_eq!(src.next_event().unwrap(), None);
        t.join().unwrap();
        drop(src);
        assert!(!path.exists(), "socket file cleaned up on drop");
    }

    #[test]
    fn malformed_line_is_tagged_with_connection_and_position() {
        let path = sock_path("bad");
        let mut src = SocketSource::bind(&path)
            .unwrap()
            .accept_timeout(Duration::from_secs(5));
        let writer_path = path.clone();
        let t = std::thread::spawn(move || {
            let mut s = UnixStream::connect(&writer_path).unwrap();
            writeln!(s, "{TRACE_HEADER}").unwrap();
            writeln!(s, "{{\"ev\":\"nope\"}}").unwrap();
        });
        match src.next_event().unwrap_err() {
            IngressError::Malformed { line, detail, .. } => {
                assert_eq!(line, 2);
                assert!(detail.contains("connection 1"), "{detail}");
                assert!(detail.contains("unknown event kind"), "{detail}");
            }
            e => panic!("{e}"),
        }
        t.join().unwrap();
    }

    #[test]
    fn accept_timeout_reports_timeout_not_hang() {
        let path = sock_path("timeout");
        let mut src = SocketSource::bind(&path)
            .unwrap()
            .accept_timeout(Duration::from_millis(30));
        assert!(matches!(
            src.next_event().unwrap_err(),
            IngressError::Timeout
        ));
    }

    #[test]
    fn two_connections_each_frame_independently() {
        let path = sock_path("two");
        let mut src = SocketSource::bind(&path)
            .unwrap()
            .max_conns(2)
            .accept_timeout(Duration::from_secs(5));
        let writer_path = path.clone();
        let t = std::thread::spawn(move || {
            for val in [1u64, 2] {
                let mut s = UnixStream::connect(&writer_path).unwrap();
                // Each connection re-sends the header: framing is
                // per-connection, not per-socket.
                writeln!(s, "{TRACE_HEADER}").unwrap();
                writeln!(s, "{{\"ev\":\"fn_entry\",\"fn\":\"g\",\"args\":[{val}]}}").unwrap();
            }
        });
        let mut vals = Vec::new();
        while let Some(ev) = src.next_event().unwrap() {
            match ev {
                IngressEvent::FnEntry { args, .. } => vals.push(args[0].0),
                other => panic!("{other:?}"),
            }
        }
        assert_eq!(vals, [1, 2]);
        assert_eq!(src.connection(), 2);
        t.join().unwrap();
    }
}
