//! Lock-free batched event ingestion from producer threads.
//!
//! Instrumented producer threads cannot afford the ingest path's
//! name hashing, and a shared queue would serialise them against
//! each other. Here each producer owns a bounded **single-producer /
//! single-consumer ring** of packed `u64` words; events are written
//! with relaxed stores and published wholesale by one
//! release-store of the tail, so a producer's cost per event is a
//! few word writes and one atomic. The engine-side consumer
//! ([`crate::Tesla::drain_ingress`]) drains every ring in batches
//! through [`crate::Tesla::dispatch_batch`], which amortises the
//! hook prologue across the batch.
//!
//! Wire format, one event = one header word + payload words:
//!
//! ```text
//! header: bits 0..4   event kind (0..=5)
//!         bits 4..8   field operator (field_store only)
//!         bits 8..16  payload word count
//!         bits 32..64 NameId / class id
//! ```
//!
//! Payload by kind: `fn_entry` args…; `fn_exit` args… + ret;
//! `field_store` field-id, object, value; `msg_entry` recv + args…;
//! `msg_exit` recv + args… + ret; `site` vals…. Name ids are
//! pre-interned when the producer handle stages them — the consumer
//! never touches the interner.
//!
//! Ordering: events from one producer dispatch in push order;
//! events from different producers interleave arbitrarily, exactly
//! as concurrent hook calls from different threads would.

use crate::event::Violation;
use crate::ingress::batch::BatchBuf;
use crate::intern::NameId;
use crate::{ClassId, Tesla};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use tesla_spec::{FieldOp, Value};

const K_FN_ENTRY: u64 = 0;
const K_FN_EXIT: u64 = 1;
const K_FIELD_STORE: u64 = 2;
const K_MSG_ENTRY: u64 = 3;
const K_MSG_EXIT: u64 = 4;
const K_SITE: u64 = 5;

/// The longest event the wire format can express: 255 payload words.
const MAX_PAYLOAD: usize = 255;

fn op_code(op: FieldOp) -> u64 {
    match op {
        FieldOp::Assign => 0,
        FieldOp::AddAssign => 1,
        FieldOp::SubAssign => 2,
        FieldOp::OrAssign => 3,
        FieldOp::AndAssign => 4,
    }
}

fn op_from_code(c: u64) -> FieldOp {
    match c {
        1 => FieldOp::AddAssign,
        2 => FieldOp::SubAssign,
        3 => FieldOp::OrAssign,
        4 => FieldOp::AndAssign,
        _ => FieldOp::Assign,
    }
}

fn header(kind: u64, op: u64, n_payload: usize, id: u32) -> u64 {
    kind | (op << 4) | ((n_payload as u64) << 8) | (u64::from(id) << 32)
}

/// One producer's bounded SPSC word ring. Indices increase
/// monotonically; a word lives at `slot[index & mask]`.
#[derive(Debug)]
struct Ring {
    slots: Box<[AtomicU64]>,
    mask: usize,
    /// Next word index the consumer will read. Written by the
    /// consumer only.
    head: AtomicUsize,
    /// First word index not yet published. Written by the producer
    /// only; the release-store here publishes every word of the
    /// pushed event.
    tail: AtomicUsize,
}

impl Ring {
    fn new(capacity_words: usize) -> Ring {
        let cap = capacity_words.next_power_of_two().max(64);
        let slots = (0..cap).map(|_| AtomicU64::new(0)).collect();
        Ring {
            slots,
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Producer side: append `words` as one event. `false` when the
    /// ring lacks space (backpressure — the caller retries or drops).
    fn push(&self, words: &[u64]) -> bool {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail - head + words.len() > self.slots.len() {
            return false;
        }
        for (i, &w) in words.iter().enumerate() {
            self.slots[(tail + i) & self.mask].store(w, Ordering::Relaxed);
        }
        self.tail.store(tail + words.len(), Ordering::Release);
        true
    }

    /// Consumer side: decode up to `max_events` whole events into
    /// `batch`. Payload words are written straight into the batch's
    /// value arena — no intermediate copy. Returns how many events
    /// were staged.
    fn pop_into(&self, batch: &mut BatchBuf, max_events: usize) -> usize {
        use crate::ingress::batch::BatchItem;
        let mut head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        let mut staged = 0;
        while staged < max_events && head < tail {
            let h = self.slots[head & self.mask].load(Ordering::Relaxed);
            let kind = h & 0xf;
            let op = (h >> 4) & 0xf;
            let n = ((h >> 8) & 0xff) as usize;
            let id = (h >> 32) as u32;
            debug_assert!(head + 1 + n <= tail, "torn event frame");
            let start = batch.vals.len();
            let s32 = u32::try_from(start).expect("batch value arena exceeds u32 range");
            for i in 0..n {
                batch
                    .vals
                    .push(Value(self.slots[(head + 1 + i) & self.mask].load(Ordering::Relaxed)));
            }
            head += 1 + n;
            let item = match kind {
                K_FN_ENTRY => BatchItem::FnEntry {
                    f: NameId(id),
                    args: (s32, n as u32),
                },
                K_FN_EXIT => {
                    let ret = if n > 0 { batch.vals.pop().unwrap() } else { Value(0) };
                    BatchItem::FnExit {
                        f: NameId(id),
                        args: (s32, n.saturating_sub(1) as u32),
                        ret,
                    }
                }
                K_FIELD_STORE => {
                    let fid = NameId(batch.vals[start].0 as u32);
                    let object = batch.vals[start + 1];
                    let value = batch.vals[start + 2];
                    batch.vals.truncate(start);
                    BatchItem::FieldStore {
                        strct: NameId(id),
                        field: fid,
                        object,
                        op: op_from_code(op),
                        value,
                    }
                }
                // The receiver word stays in the arena (one unused
                // slot) so the args span needs no shift.
                K_MSG_ENTRY => BatchItem::MsgEntry {
                    sel: NameId(id),
                    recv: batch.vals[start],
                    args: (s32 + 1, (n - 1) as u32),
                },
                K_MSG_EXIT => {
                    let ret = if n > 1 { batch.vals.pop().unwrap() } else { Value(0) };
                    BatchItem::MsgExit {
                        sel: NameId(id),
                        recv: batch.vals[start],
                        args: (s32 + 1, n.saturating_sub(2) as u32),
                        ret,
                    }
                }
                _ => BatchItem::Site {
                    class: ClassId(id),
                    vals: (s32, n as u32),
                },
            };
            batch.items.push(item);
            staged += 1;
        }
        self.head.store(head, Ordering::Release);
        staged
    }

    fn is_empty(&self) -> bool {
        self.head.load(Ordering::Relaxed) >= self.tail.load(Ordering::Acquire)
    }
}

/// The engine-side registry of producer rings. Create one per
/// engine, hand a [`EventProducer`] to each producing thread, and
/// drain with [`Tesla::drain_ingress`].
#[derive(Debug)]
pub struct BatchIngress {
    rings: Mutex<Vec<Arc<Ring>>>,
    capacity_words: usize,
}

impl Default for BatchIngress {
    fn default() -> BatchIngress {
        BatchIngress::new(16 * 1024)
    }
}

impl BatchIngress {
    /// A registry whose producer rings hold `capacity_words` packed
    /// words each (one event costs 1 + payload words).
    pub fn new(capacity_words: usize) -> BatchIngress {
        BatchIngress {
            rings: Mutex::new(Vec::new()),
            capacity_words,
        }
    }

    /// Register a new producer ring and return its handle. Call once
    /// per producing thread; the handle is `Send` but not `Sync`
    /// (single producer per ring).
    ///
    /// # Panics
    ///
    /// Panics if the registry lock was poisoned.
    pub fn producer(&self) -> EventProducer {
        let ring = Arc::new(Ring::new(self.capacity_words));
        self.rings.lock().unwrap().push(Arc::clone(&ring));
        EventProducer {
            ring,
            buf: Vec::with_capacity(16),
        }
    }

    /// True when every registered ring is drained.
    ///
    /// # Panics
    ///
    /// Panics if the registry lock was poisoned.
    pub fn is_empty(&self) -> bool {
        self.rings.lock().unwrap().iter().all(|r| r.is_empty())
    }

    fn rings(&self) -> Vec<Arc<Ring>> {
        self.rings.lock().unwrap().clone()
    }
}

/// A producing thread's handle onto its own ring. Push methods
/// return `false` when the ring is full (the producer decides
/// whether to spin or shed).
#[derive(Debug)]
pub struct EventProducer {
    ring: Arc<Ring>,
    buf: Vec<u64>,
}

impl EventProducer {
    /// Start staging: clear the scratch frame and reserve the header
    /// slot. Payload words are appended directly — no per-event
    /// allocation on the producer's hot path.
    fn begin(&mut self) {
        self.buf.clear();
        self.buf.push(0);
    }

    /// Patch the header into the reserved slot and push the frame.
    fn finish(&mut self, kind: u64, op: u64, id: u32) -> bool {
        let n = self.buf.len() - 1;
        if n > MAX_PAYLOAD {
            return false;
        }
        self.buf[0] = header(kind, op, n, id);
        self.ring.push(&self.buf)
    }

    /// Stage a `fn_entry` event.
    pub fn fn_entry(&mut self, f: NameId, args: &[Value]) -> bool {
        self.begin();
        self.buf.extend(args.iter().map(|v| v.0));
        self.finish(K_FN_ENTRY, 0, f.0)
    }

    /// Stage a `fn_exit` event.
    pub fn fn_exit(&mut self, f: NameId, args: &[Value], ret: Value) -> bool {
        self.begin();
        self.buf.extend(args.iter().map(|v| v.0));
        self.buf.push(ret.0);
        self.finish(K_FN_EXIT, 0, f.0)
    }

    /// Stage a `field_store` event.
    pub fn field_store(
        &mut self,
        strct: NameId,
        field: NameId,
        object: Value,
        op: FieldOp,
        value: Value,
    ) -> bool {
        self.begin();
        self.buf.extend([u64::from(field.0), object.0, value.0]);
        self.finish(K_FIELD_STORE, op_code(op), strct.0)
    }

    /// Stage a `msg_entry` event.
    pub fn msg_entry(&mut self, sel: NameId, recv: Value, args: &[Value]) -> bool {
        self.begin();
        self.buf.push(recv.0);
        self.buf.extend(args.iter().map(|v| v.0));
        self.finish(K_MSG_ENTRY, 0, sel.0)
    }

    /// Stage a `msg_exit` event.
    pub fn msg_exit(&mut self, sel: NameId, recv: Value, args: &[Value], ret: Value) -> bool {
        self.begin();
        self.buf.push(recv.0);
        self.buf.extend(args.iter().map(|v| v.0));
        self.buf.push(ret.0);
        self.finish(K_MSG_EXIT, 0, sel.0)
    }

    /// Stage an assertion-site event.
    pub fn site(&mut self, class: ClassId, vals: &[Value]) -> bool {
        self.begin();
        self.buf.extend(vals.iter().map(|v| v.0));
        self.finish(K_SITE, 0, class.0)
    }
}

impl Tesla {
    /// Drain every producer ring of `ingress` into this engine in
    /// batches of [`crate::Config::batch_size`] events. Returns the
    /// number of events dispatched.
    ///
    /// # Errors
    ///
    /// The first violation whose hook returned `Err` (fail-stop
    /// mode, unknown ids). Events already dispatched stay dispatched;
    /// undrained events stay in their rings.
    pub fn drain_ingress(&self, ingress: &BatchIngress) -> Result<u64, Violation> {
        let batch_size = self.config().batch_size.max(1);
        let mut batch = BatchBuf::with_capacity(batch_size);
        // One registry snapshot per drain call: rings registered
        // while a drain is in flight are picked up on the next call.
        let rings = ingress.rings();
        let mut total = 0u64;
        loop {
            let mut progressed = false;
            for ring in &rings {
                loop {
                    batch.clear();
                    let n = ring.pop_into(&mut batch, batch_size);
                    if n == 0 {
                        break;
                    }
                    progressed = true;
                    match self.dispatch_batch(&batch) {
                        Ok(()) => total += n as u64,
                        Err((idx, violation)) => {
                            total += idx as u64;
                            return Err(violation);
                        }
                    }
                }
            }
            if !progressed {
                return Ok(total);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ingress::batch::BatchItem;

    #[test]
    fn ring_roundtrips_every_kind() {
        let ingress = BatchIngress::new(256);
        let mut p = ingress.producer();
        assert!(p.fn_entry(NameId(7), &[Value(1), Value(2)]));
        assert!(p.fn_exit(NameId(7), &[Value(1)], Value(9)));
        assert!(p.field_store(
            NameId(3),
            NameId(4),
            Value(5),
            FieldOp::OrAssign,
            Value(6)
        ));
        assert!(p.msg_entry(NameId(8), Value(10), &[Value(11)]));
        assert!(p.msg_exit(NameId(8), Value(10), &[], Value(12)));
        assert!(p.site(ClassId(2), &[Value(13)]));
        let rings = ingress.rings();
        let mut batch = BatchBuf::new();
        let n = rings[0].pop_into(&mut batch, 100);
        assert_eq!(n, 6);
        match batch.items[0] {
            BatchItem::FnEntry { f, args } => {
                assert_eq!(f, NameId(7));
                assert_eq!(batch.slice(args), &[Value(1), Value(2)]);
            }
            ref other => panic!("{other:?}"),
        }
        match batch.items[2] {
            BatchItem::FieldStore {
                strct,
                field,
                object,
                op,
                value,
            } => {
                assert_eq!((strct, field), (NameId(3), NameId(4)));
                assert_eq!((object, value), (Value(5), Value(6)));
                assert_eq!(op, FieldOp::OrAssign);
            }
            ref other => panic!("{other:?}"),
        }
        match batch.items[5] {
            BatchItem::Site { class, vals } => {
                assert_eq!(class, ClassId(2));
                assert_eq!(batch.slice(vals), &[Value(13)]);
            }
            ref other => panic!("{other:?}"),
        }
        assert!(ingress.is_empty());
    }

    #[test]
    fn full_ring_backpressures_without_corruption() {
        let ingress = BatchIngress::new(64);
        let mut p = ingress.producer();
        let mut pushed = 0u32;
        while p.fn_entry(NameId(pushed), &[Value(u64::from(pushed))]) {
            pushed += 1;
        }
        assert!(pushed >= 16);
        let rings = ingress.rings();
        let mut batch = BatchBuf::new();
        let n = rings[0].pop_into(&mut batch, usize::MAX);
        assert_eq!(n as u32, pushed);
        for (i, item) in batch.items.iter().enumerate() {
            match *item {
                BatchItem::FnEntry { f, args } => {
                    assert_eq!(f, NameId(i as u32));
                    assert_eq!(batch.slice(args), &[Value(i as u64)]);
                }
                ref other => panic!("{other:?}"),
            }
        }
        // Space freed: pushes succeed again.
        assert!(p.fn_entry(NameId(0), &[]));
    }

    #[test]
    fn cross_thread_producer_consumer() {
        let ingress = Arc::new(BatchIngress::new(1024));
        let mut p = ingress.producer();
        let events = 10_000u64;
        let producer = std::thread::spawn(move || {
            for i in 0..events {
                while !p.site(ClassId(0), &[Value(i)]) {
                    std::thread::yield_now();
                }
            }
        });
        let rings = ingress.rings();
        let mut batch = BatchBuf::new();
        let mut seen = 0u64;
        while seen < events {
            batch.clear();
            let n = rings[0].pop_into(&mut batch, 256);
            for item in &batch.items {
                match *item {
                    BatchItem::Site { vals, .. } => {
                        assert_eq!(batch.slice(vals), &[Value(seen)]);
                        seen += 1;
                    }
                    ref other => panic!("{other:?}"),
                }
            }
            if n == 0 {
                std::thread::yield_now();
            }
        }
        producer.join().unwrap();
    }
}
