//! A small, dependency-free JSON reader for the trace wire format.
//!
//! The runtime deliberately avoids pulling a serialisation stack
//! into the hot library just to frame replay traces: the wire schema
//! needs exactly RFC 8259 values, and errors must carry byte
//! positions so the transport layer can report *where* a stream went
//! wrong. Strict on structure (no trailing garbage, no unescaped
//! controls, paired surrogates), tolerant on content (any JSON value
//! parses, so unknown fields added by future producers are carried
//! and ignored).

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; the payload is its exact `u64` value when it has
    /// one (the only numeric domain the wire schema uses — floats
    /// and negatives parse but carry `None`).
    Num(Option<u64>),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, in source order. Duplicate keys are a parse error:
    /// for a trace schema, "last key wins" is how inconsistent
    /// events slip through unnoticed.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an
    /// error. Errors read `"<reason> at byte <n>"`.
    ///
    /// # Errors
    ///
    /// A human-readable reason with the byte position.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: s.as_bytes(),
            i: 0,
        };
        p.ws();
        let v = p.value(0)?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    /// The object's fields, when this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Look up a field by key, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// The string payload, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The exact `u64` payload, when this is a number with one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => *n,
            _ => None,
        }
    }

    /// The element list, when this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }
}

const MAX_DEPTH: usize = 64;

/// The raw cursor behind [`Json::parse`]. Crate-internal so the
/// JSONL event scanner can reuse the exact same lexical rules
/// (escapes, number grammar, whitespace) without building a value
/// tree for every event line.
pub(crate) struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(s: &'a str) -> Parser<'a> {
        Parser { b: s.as_bytes(), i: 0 }
    }
}

impl Parser<'_> {
    pub(crate) fn ws(&mut self) {
        while let Some(&c) = self.b.get(self.i) {
            if matches!(c, b' ' | b'\t' | b'\n' | b'\r') {
                self.i += 1;
            } else {
                break;
            }
        }
    }

    fn err<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{what} at byte {}", self.i))
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", c as char))
        }
    }

    /// The next unconsumed byte, if any.
    pub(crate) fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    /// Consume `c` if it is next; `false` otherwise.
    pub(crate) fn eat_ok(&mut self, c: u8) -> bool {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    /// True when the whole input has been consumed.
    pub(crate) fn at_end(&self) -> bool {
        self.i == self.b.len()
    }

    /// Parse a number token and return its exact `u64` value, or
    /// `None` when the token is not a valid non-negative integer.
    pub(crate) fn u64_token(&mut self) -> Option<u64> {
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let tok = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        tok.parse::<u64>().ok()
    }

    /// Skip one complete JSON value (validating it lexically).
    /// Depth starts at 1 — the value sits inside the event object —
    /// so the nesting bound matches [`Json::parse`] exactly.
    pub(crate) fn skip_value(&mut self) -> Result<(), String> {
        self.value(1).map(|_| ())
    }

    pub(crate) fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return self.err("nesting too deep");
        }
        self.ws();
        match self.b.get(self.i) {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(_) => self.err("unexpected character"),
            None => self.err("unexpected end of input"),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            self.err("bad literal")
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields: Vec<(String, Json)> = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return self.err(&format!("duplicate key {key:?}"));
            }
            self.ws();
            self.eat(b':')?;
            let v = self.value(depth + 1)?;
            fields.push((key, v));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Array(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.i + 4;
        let Some(hex) = self.b.get(self.i..end) else {
            return self.err("truncated \\u escape");
        };
        let s =
            std::str::from_utf8(hex).map_err(|_| format!("bad \\u escape at byte {}", self.i))?;
        let v =
            u16::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape at byte {}", self.i))?;
        self.i = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        let mut out = String::new();
        self.string_into(&mut out)?;
        Ok(out)
    }

    /// Parse a string, appending its unescaped form to `out`. The
    /// caller clears `out` when reuse is intended.
    pub(crate) fn string_into(&mut self, out: &mut String) -> Result<(), String> {
        self.eat(b'"')?;
        loop {
            match self.b.get(self.i) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.i += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // High surrogate: a \uXXXX low half
                                // must follow.
                                if self.b.get(self.i) != Some(&b'\\')
                                    || self.b.get(self.i + 1) != Some(&b'u')
                                {
                                    return self.err("unpaired surrogate");
                                }
                                self.i += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                let cp = 0x10000
                                    + ((u32::from(hi) - 0xd800) << 10)
                                    + (u32::from(lo) - 0xdc00);
                                char::from_u32(cp).ok_or_else(|| {
                                    format!("invalid code point at byte {}", self.i)
                                })?
                            } else {
                                char::from_u32(u32::from(hi)).ok_or_else(|| {
                                    self.err::<()>("unpaired surrogate").unwrap_err()
                                })?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return self.err("unknown escape"),
                    }
                    self.i += 1;
                }
                Some(&c) if c < 0x20 => return self.err("unescaped control character"),
                Some(_) => {
                    // Copy one UTF-8 scalar; the input is a &str, so
                    // boundaries are trustworthy.
                    let rest = &self.b[self.i..];
                    let s = std::str::from_utf8(rest).expect("input was a &str");
                    let ch = s.chars().next().expect("non-empty");
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let tok = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        // Validate syntactically via the float grammar; keep the
        // exact u64 when the token is one.
        if tok.parse::<f64>().is_err() {
            return Err(format!("bad number {tok:?} at byte {start}"));
        }
        Ok(Json::Num(tok.parse::<u64>().ok()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_parse() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(Some(42)));
        assert_eq!(
            Json::parse(&u64::MAX.to_string()).unwrap(),
            Json::Num(Some(u64::MAX))
        );
        assert_eq!(Json::parse("-1").unwrap(), Json::Num(None));
        assert_eq!(Json::parse("1.5e3").unwrap(), Json::Num(None));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
        assert_eq!(
            Json::parse("[1, 2]").unwrap(),
            Json::Array(vec![Json::Num(Some(1)), Json::Num(Some(2))])
        );
        let obj = Json::parse("{\"a\": 1, \"b\": [true, null]}").unwrap();
        assert_eq!(obj.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(
            obj.get("b").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn escapes_roundtrip() {
        assert_eq!(
            Json::parse("\"a\\\"b\\\\c\\n\\t\\u0000\\u2028\"").unwrap(),
            Json::Str("a\"b\\c\n\t\0\u{2028}".into())
        );
        // Surrogate pair for 𝄞 (U+1D11E).
        assert_eq!(
            Json::parse("\"\\ud834\\udd1e\"").unwrap(),
            Json::Str("\u{1d11e}".into())
        );
        // Raw multi-byte UTF-8 passes through.
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::Str("héllo".into()));
    }

    #[test]
    fn errors_carry_byte_positions() {
        for (doc, needle) in [
            ("", "unexpected end"),
            ("{", "expected '\"'"),
            ("{\"a\":1,}", "expected '\"'"),
            ("[1 2]", "expected ','"),
            ("\"abc", "unterminated string"),
            ("\"\\q\"", "unknown escape"),
            ("\"\\ud834x\"", "unpaired surrogate"),
            ("\"\x01\"", "unescaped control"),
            ("nulL", "bad literal"),
            ("1 2", "trailing garbage"),
            ("{\"a\":1,\"a\":2}", "duplicate key"),
        ] {
            let err = Json::parse(doc).unwrap_err();
            assert!(err.contains(needle), "{doc:?} -> {err}");
            assert!(err.contains("at byte"), "{doc:?} -> {err}");
        }
    }

    #[test]
    fn depth_is_bounded_no_stack_overflow() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&deep).unwrap_err().contains("nesting too deep"));
    }
}
