//! # tesla-runtime — libtesla, the TESLA run-time support library
//!
//! "libtesla is the run-time support library for TESLA. It accepts
//! streams of events and uses them to manage automata instances."
//! (§4.4). This crate reproduces it in safe Rust:
//!
//! * [`intern`] — name interning: functions, structure fields and
//!   selectors become dense integer ids, so the hot path never
//!   compares strings (the analogue of the generated event
//!   translators binding directly to symbols).
//! * [`engine`] — the [`Tesla`] handle: automata-class registration,
//!   the instrumentation hook API (`fn_entry`, `fn_exit`,
//!   `field_store`, `msg_entry`, `msg_exit`, `assertion_site`),
//!   per-event dispatch tables, temporal-bound scope tracking with
//!   both the paper's *naive* eager-initialisation strategy and the
//!   *lazy* optimisation of §5.2.2 (fig. 13), and the per-thread
//!   shadow call stack that evaluates `incallstack` guards.
//! * [`store`] — automata instance storage (§4.4.1): per-class
//!   fixed-capacity preallocated instance tables (overflows are
//!   reported, never silently dropped), the
//!   init / clone / update / error / cleanup lifecycle, and the
//!   clone-on-specialise semantics that turn a `(∗)` instance into
//!   `(vp₁)`, `(vp₂)`, … as variable values are observed.
//! * [`handlers`] — the pluggable event-notification framework
//!   (§4.4.2): a stderr printer gated on the `TESLA_DEBUG`
//!   environment variable, a counting/aggregating handler (the
//!   DTrace-substitute) whose per-transition counts drive the
//!   weighted automaton graphs of fig. 9, a recording handler for
//!   tests and custom callbacks.
//! * [`telemetry`] — the observability layer (§4.4.2's DTrace
//!   substitute): a lock-free metrics registry (per-class counters,
//!   hook-latency histograms, live transition weights for fig. 9
//!   graphs), a bounded per-thread flight recorder, and Prometheus /
//!   JSON / chrome-trace exporters. Enabled per engine via
//!   [`Config::telemetry`].
//! * [`faults`] — seeded deterministic fault injection
//!   ([`FaultPlan`]): allocation failure, handler panics, clock skew,
//!   event drop/duplication and shard-lock poisoning, drawn at the
//!   exact sites that absorb them so the injected/absorbed ledger
//!   balances whenever the runtime degrades gracefully. The hardening
//!   it exercises — instance quotas with LRU eviction and degraded
//!   mode, panic-isolating dispatch, lock-poison recovery — is always
//!   on; the injection itself costs one branch per site when no plan
//!   is configured.
//! * [`scenario`] — the generic timeline-step vocabulary shared by
//!   the declarative scenario format (`tesla scenario`) and the
//!   simulator timeline adapters, plus the spec-runner adapter that
//!   lowers steps to [`IngressEvent`]s.
//! * [`event`] — violations and lifecycle event types. Mismatches
//!   between specification and behaviour *fail-stop* by default
//!   (hooks return `Err(Violation)`) but can be switched to
//!   log-and-continue at run time.
//!
//! ## Contexts
//!
//! Each automaton lives in the per-thread or the global context
//! (§3.2). Per-thread state needs no synchronisation; the global
//! store serialises events with a lock, which is precisely the cost
//! measured in fig. 12.
//!
//! ## Example
//!
//! ```
//! use tesla_runtime::{Tesla, Config, FailMode};
//! use tesla_spec::{call, AssertionBuilder, Value};
//!
//! let engine = Tesla::new(Config { fail_mode: FailMode::Log, ..Config::default() });
//! let assertion = AssertionBuilder::within("request")
//!     .previously(call("authorise").arg_var("user").returns(0))
//!     .build()
//!     .unwrap();
//! let class = engine.register(tesla_automata::compile(&assertion).unwrap()).unwrap();
//!
//! let request = engine.intern_fn("request");
//! let auth = engine.intern_fn("authorise");
//! engine.fn_entry(request, &[]).unwrap();              // «init»
//! engine.fn_entry(auth, &[Value(7)]).unwrap();
//! engine.fn_exit(auth, &[Value(7)], Value(0)).unwrap(); // clone (∗) → (user=7)
//! engine.assertion_site(class, &[Value(7)]).unwrap();   // update: satisfied
//! engine.assertion_site(class, &[Value(8)]).unwrap();   // error: no instance (logged)
//! engine.fn_exit(request, &[], Value(0)).unwrap();      // «cleanup»
//! assert_eq!(engine.violations().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod faults;
pub mod handlers;
pub mod ingress;
pub mod intern;
pub mod scenario;
pub mod store;
pub mod telemetry;

pub use engine::{ClassId, Config, ConfigError, EvictionPolicy, FailMode, InitMode, Tesla};
pub use event::{LifecycleEvent, Violation, ViolationKind};
pub use faults::{FaultKind, FaultLedger, FaultPlan, FaultSpec};
pub use handlers::{CountingHandler, Dispatch, EventHandler, RecordingHandler, StderrHandler};
#[cfg(unix)]
pub use ingress::SocketSource;
pub use ingress::{
    BatchBuf, BatchIngress, BufferedSource, DriveError, EventProducer, EventScratch, EventSource,
    IngressError, IngressEvent, IngressEventRef, IngressStats, JsonlSource, NameCache, TraceWriter,
};
pub use intern::{Interner, NameId};
pub use scenario::{ArgValue, Step};
pub use telemetry::{
    Anomaly, AnomalyCode, AnomalyReport, Baseline, BaselineError, ClassScore, FlightRecorder,
    Governor, GovernorConfig, GovernorDecision, HookKind, MetricsRegistry, MetricsSnapshot,
    RecordedEvent, ScorerConfig, Welford,
};

/// Maximum number of scope variables per assertion the runtime
/// supports; instances store bindings in a fixed-size array so the
/// hot path never allocates (§4.4.1's preallocation discipline).
pub const MAX_VARS: usize = 8;

/// Errors when registering an automaton class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegisterError {
    /// The assertion uses more than [`MAX_VARS`] variables.
    TooManyVariables(usize),
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::TooManyVariables(n) => {
                write!(
                    f,
                    "assertion uses {n} variables; libtesla supports {MAX_VARS}"
                )
            }
        }
    }
}

impl std::error::Error for RegisterError {}
