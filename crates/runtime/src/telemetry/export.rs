//! Telemetry exporters: Prometheus text, JSON, JSONL, chrome-trace.
//!
//! All exporters are pure functions over snapshots — taking a
//! snapshot is the only interaction with live counters, so exporting
//! never blocks dispatch. The JSON emitters are hand-rolled (the
//! snapshot types are flat and the output format is part of the CLI
//! contract); the snapshot types also carry `serde::Serialize` for
//! embedding in larger reports.

use crate::telemetry::metrics::{ClassSnapshot, HistogramSnapshot, MetricsSnapshot};
use crate::telemetry::recorder::RecordedEvent;
use std::fmt::Write as _;

/// Escape a Prometheus label value.
pub(crate) fn esc(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Escape a string for embedding in a JSON string literal.
///
/// Interned names can now arrive from external replay traces, so the
/// escaper must keep *any* `&str` parseable: all C0 controls (RFC
/// 8259 requires `< 0x20` escaped), DEL and the C1 block (raw they
/// survive JSON but corrupt terminal/log pipelines), and U+2028/2029
/// (legal JSON, but unescaped they break JS consumers that eval
/// responses). Rust strings are always valid UTF-8, so these classes
/// are exactly the bytes that can make emitted JSON unsafe.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20
                || ('\u{7f}'..='\u{9f}').contains(&c)
                || c == '\u{2028}'
                || c == '\u{2029}' =>
            {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Emit one histogram family, **rescaled to estimated totals**: the
/// histogram only observed `h.count` of `calls` invocations (1-in-N
/// per-thread sampling), so every bucket and the sum are multiplied
/// by the observed sampling factor `calls / h.count`. Without this,
/// Prometheus rates computed from the buckets under-report by the
/// sampling period (~64×). `_count` equals `calls` exactly, keeping
/// the `+Inf` bucket invariant.
fn histogram(out: &mut String, name: &str, labels: &str, h: &HistogramSnapshot, calls: u64) {
    let factor = if h.count > 0 && calls > h.count {
        calls as f64 / h.count as f64
    } else {
        1.0
    };
    let scale = |n: u64| (n as f64 * factor).round() as u64;
    let total = calls.max(h.count);
    let mut cumulative = 0u64;
    for (i, b) in h.buckets.iter().enumerate() {
        if i + 1 == h.buckets.len() {
            break; // the overflow bucket is the +Inf line below
        }
        cumulative += b;
        if *b == 0 {
            continue; // keep the text compact; cumulative stays right
        }
        let _ = writeln!(
            out,
            "{name}_bucket{{{labels}le=\"{}\"}} {}",
            1u64 << i,
            scale(cumulative)
        );
    }
    let _ = writeln!(out, "{name}_bucket{{{labels}le=\"+Inf\"}} {total}");
    let bare = labels.trim_end_matches(',');
    let _ = writeln!(out, "{name}_sum{{{bare}}} {}", scale(h.sum_ns));
    let _ = writeln!(out, "{name}_count{{{bare}}} {total}");
}

/// Render a metrics snapshot in the Prometheus text exposition
/// format (version 0.0.4).
pub fn prometheus(s: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# HELP tesla_events_total Lifecycle events dispatched to handlers."
    );
    let _ = writeln!(out, "# TYPE tesla_events_total counter");
    let _ = writeln!(out, "tesla_events_total {}", s.events_total);
    let _ = writeln!(
        out,
        "# HELP tesla_violations_total Assertion violations observed."
    );
    let _ = writeln!(out, "# TYPE tesla_violations_total counter");
    let _ = writeln!(out, "tesla_violations_total {}", s.violations);
    let _ = writeln!(
        out,
        "# HELP tesla_sites_elided Instrumentation sites removed by the static model checker."
    );
    let _ = writeln!(out, "# TYPE tesla_sites_elided gauge");
    let _ = writeln!(out, "tesla_sites_elided {}", s.sites_elided);
    let _ = writeln!(
        out,
        "# HELP tesla_handler_panics_total Handler panics contained by panic-safe dispatch."
    );
    let _ = writeln!(out, "# TYPE tesla_handler_panics_total counter");
    let _ = writeln!(out, "tesla_handler_panics_total {}", s.handler_panics);
    let _ = writeln!(
        out,
        "# HELP tesla_faults_absorbed_total Injected faults absorbed gracefully."
    );
    let _ = writeln!(out, "# TYPE tesla_faults_absorbed_total counter");
    let _ = writeln!(out, "tesla_faults_absorbed_total {}", s.faults_absorbed);
    let _ = writeln!(
        out,
        "# HELP tesla_lock_poison_recoveries_total Poisoned store shard locks recovered."
    );
    let _ = writeln!(out, "# TYPE tesla_lock_poison_recoveries_total counter");
    let _ = writeln!(
        out,
        "tesla_lock_poison_recoveries_total {}",
        s.lock_poison_recoveries
    );

    let _ = writeln!(
        out,
        "# HELP tesla_hook_calls_total Instrumentation hook invocations."
    );
    let _ = writeln!(out, "# TYPE tesla_hook_calls_total counter");
    for h in &s.hooks {
        let _ = writeln!(
            out,
            "tesla_hook_calls_total{{hook=\"{}\"}} {}",
            esc(&h.hook),
            h.calls
        );
    }
    let _ = writeln!(
        out,
        "# HELP tesla_hook_latency_ns Hook latency, log2 nanosecond buckets \
         (estimated: sampled 1-in-N and rescaled by the observed sampling factor)."
    );
    let _ = writeln!(out, "# TYPE tesla_hook_latency_ns histogram");
    for h in &s.hooks {
        if h.latency.count == 0 {
            continue;
        }
        histogram(
            &mut out,
            "tesla_hook_latency_ns",
            &format!("hook=\"{}\",", esc(&h.hook)),
            &h.latency,
            h.calls,
        );
    }
    for (name, q) in [
        ("tesla_hook_latency_p50_ns", 0.50),
        ("tesla_hook_latency_p95_ns", 0.95),
        ("tesla_hook_latency_p99_ns", 0.99),
    ] {
        let _ = writeln!(
            out,
            "# HELP {name} Estimated hook latency quantile (log2 bucket midpoint)."
        );
        let _ = writeln!(out, "# TYPE {name} gauge");
        for h in &s.hooks {
            if h.latency.count == 0 {
                continue;
            }
            let _ = writeln!(
                out,
                "{name}{{hook=\"{}\"}} {}",
                esc(&h.hook),
                h.latency.quantile_ns(q)
            );
        }
    }
    let _ = writeln!(
        out,
        "# HELP tesla_hook_sample_period Latency sampling period in force (one timed call in N; adjusted by the overhead governor)."
    );
    let _ = writeln!(out, "# TYPE tesla_hook_sample_period gauge");
    for h in &s.hooks {
        let _ = writeln!(
            out,
            "tesla_hook_sample_period{{hook=\"{}\"}} {}",
            esc(&h.hook),
            h.sample_period
        );
    }

    let per_class: [(&str, &str, fn(&ClassSnapshot) -> u64); 10] = [
        ("tesla_instances_created_total", "counter", |c| c.news),
        ("tesla_instances_cloned_total", "counter", |c| c.clones),
        ("tesla_updates_total", "counter", |c| c.updates),
        ("tesla_finalise_accepted_total", "counter", |c| c.accepted),
        ("tesla_finalise_rejected_total", "counter", |c| c.rejected),
        ("tesla_overflows_total", "counter", |c| c.overflows),
        ("tesla_evictions_total", "counter", |c| c.evictions),
        ("tesla_shed_total", "counter", |c| c.shed),
        ("tesla_live_instances", "gauge", |c| c.live),
        ("tesla_live_instances_peak", "gauge", |c| c.high_watermark),
    ];
    for (name, ty, get) in per_class {
        let _ = writeln!(out, "# TYPE {name} {ty}");
        for c in &s.classes {
            let _ = writeln!(out, "{name}{{class=\"{}\"}} {}", esc(&c.name), get(c));
        }
    }
    let _ = writeln!(
        out,
        "# HELP tesla_transitions_total Automaton edge firings (fig. 9 weights)."
    );
    let _ = writeln!(out, "# TYPE tesla_transitions_total counter");
    for c in &s.classes {
        for t in &c.transitions {
            let _ = writeln!(
                out,
                "tesla_transitions_total{{class=\"{}\",from=\"{}\",symbol=\"{}\"}} {}",
                esc(&c.name),
                t.from_state,
                t.symbol,
                t.count
            );
        }
    }
    out
}

fn json_histogram(h: &HistogramSnapshot) -> String {
    let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
    format!(
        "{{\"count\":{},\"sum_ns\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\"buckets\":[{}]}}",
        h.count,
        h.sum_ns,
        h.p50_ns(),
        h.p95_ns(),
        h.p99_ns(),
        buckets.join(",")
    )
}

/// Serialise a metrics snapshot as JSON.
pub fn json(s: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"events_total\": {},", s.events_total);
    let _ = writeln!(out, "  \"violations\": {},", s.violations);
    let _ = writeln!(out, "  \"sites_elided\": {},", s.sites_elided);
    let _ = writeln!(out, "  \"handler_panics\": {},", s.handler_panics);
    let _ = writeln!(out, "  \"faults_absorbed\": {},", s.faults_absorbed);
    let _ = writeln!(
        out,
        "  \"lock_poison_recoveries\": {},",
        s.lock_poison_recoveries
    );
    let _ = writeln!(out, "  \"hooks\": [");
    for (i, h) in s.hooks.iter().enumerate() {
        let sep = if i + 1 == s.hooks.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"hook\":\"{}\",\"calls\":{},\"sample_period\":{},\"latency\":{}}}{sep}",
            json_escape(&h.hook),
            h.calls,
            h.sample_period,
            json_histogram(&h.latency)
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"classes\": [");
    for (i, c) in s.classes.iter().enumerate() {
        let transitions: Vec<String> = c
            .transitions
            .iter()
            .map(|t| {
                format!(
                    "{{\"from_state\":{},\"symbol\":{},\"count\":{}}}",
                    t.from_state, t.symbol, t.count
                )
            })
            .collect();
        let sep = if i + 1 == s.classes.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"class\":{},\"name\":\"{}\",\"news\":{},\"clones\":{},\"updates\":{},\
             \"accepted\":{},\"rejected\":{},\"overflows\":{},\"evictions\":{},\"shed\":{},\
             \"live\":{},\"high_watermark\":{},\"transitions\":[{}]}}{sep}",
            c.class,
            json_escape(&c.name),
            c.news,
            c.clones,
            c.updates,
            c.accepted,
            c.rejected,
            c.overflows,
            c.evictions,
            c.shed,
            c.live,
            c.high_watermark,
            transitions.join(",")
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

/// Serialise the *deterministic* subset of a metrics snapshot as
/// JSON: everything in [`json`] except the hook latency histograms,
/// whose nanosecond timings differ between otherwise identical runs.
///
/// Two runs that observed the same event stream — e.g. a live run
/// and its recorded-trace replay — produce byte-identical output
/// from this exporter, so `tesla run --metrics` / `tesla replay
/// --metrics` files can be compared with a plain `diff`.
pub fn json_counters(s: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"events_total\": {},", s.events_total);
    let _ = writeln!(out, "  \"violations\": {},", s.violations);
    let _ = writeln!(out, "  \"sites_elided\": {},", s.sites_elided);
    let _ = writeln!(out, "  \"handler_panics\": {},", s.handler_panics);
    let _ = writeln!(out, "  \"faults_absorbed\": {},", s.faults_absorbed);
    let _ = writeln!(
        out,
        "  \"lock_poison_recoveries\": {},",
        s.lock_poison_recoveries
    );
    let _ = writeln!(out, "  \"hooks\": [");
    for (i, h) in s.hooks.iter().enumerate() {
        let sep = if i + 1 == s.hooks.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"hook\":\"{}\",\"calls\":{}}}{sep}",
            json_escape(&h.hook),
            h.calls
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"classes\": [");
    for (i, c) in s.classes.iter().enumerate() {
        let transitions: Vec<String> = c
            .transitions
            .iter()
            .map(|t| {
                format!(
                    "{{\"from_state\":{},\"symbol\":{},\"count\":{}}}",
                    t.from_state, t.symbol, t.count
                )
            })
            .collect();
        let sep = if i + 1 == s.classes.len() { "" } else { "," };
        let _ = writeln!(
            out,
            "    {{\"class\":{},\"name\":\"{}\",\"news\":{},\"clones\":{},\"updates\":{},\
             \"accepted\":{},\"rejected\":{},\"overflows\":{},\"evictions\":{},\"shed\":{},\
             \"live\":{},\"high_watermark\":{},\"transitions\":[{}]}}{sep}",
            c.class,
            json_escape(&c.name),
            c.news,
            c.clones,
            c.updates,
            c.accepted,
            c.rejected,
            c.overflows,
            c.evictions,
            c.shed,
            c.live,
            c.high_watermark,
            transitions.join(",")
        );
    }
    let _ = writeln!(out, "  ]");
    out.push_str("}\n");
    out
}

fn json_event(e: &RecordedEvent) -> String {
    format!(
        "{{\"ts_ns\":{},\"thread\":{},\"kind\":\"{}\",\"class\":{},\"symbol\":{},\
         \"instance\":{},\"aux\":{},\"states\":{}}}",
        e.ts_ns, e.thread, e.kind, e.class, e.symbol, e.instance, e.aux, e.states
    )
}

/// One JSON object per line, one line per recorded event.
pub fn events_jsonl(events: &[RecordedEvent]) -> String {
    let mut out = String::new();
    for e in events {
        let _ = writeln!(out, "{}", json_event(e));
    }
    out
}

/// chrome://tracing "JSON array format", one instant event per line
/// (the format is line-oriented, so truncated files still load).
/// Open the output via `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(events: &[RecordedEvent]) -> String {
    let mut out = String::from("[\n");
    for (i, e) in events.iter().enumerate() {
        let sep = if i + 1 == events.len() { "" } else { "," };
        // chrome-trace timestamps are microseconds; "i" = instant.
        let _ = writeln!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"tesla\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{}.{:03},\
             \"pid\":1,\"tid\":{},\"args\":{{\"class\":{},\"symbol\":{},\"instance\":{},\
             \"aux\":{},\"states\":{}}}}}{sep}",
            e.kind,
            e.ts_ns / 1000,
            e.ts_ns % 1000,
            e.thread,
            e.class,
            e.symbol,
            e.instance,
            e.aux,
            e.states
        );
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::LifecycleEvent;
    use crate::handlers::EventHandler;
    use crate::telemetry::metrics::{HookKind, MetricsRegistry};
    use crate::telemetry::recorder::FlightRecorder;
    use std::time::Duration;

    /// Minimal recursive-descent JSON syntax checker, so the tests
    /// prove the emitters produce *parseable* JSON without needing a
    /// JSON library.
    fn check_json(s: &str) -> Result<(), String> {
        let b = s.as_bytes();
        let mut i = 0usize;
        fn ws(b: &[u8], i: &mut usize) {
            while *i < b.len() && (b[*i] as char).is_ascii_whitespace() {
                *i += 1;
            }
        }
        fn value(b: &[u8], i: &mut usize) -> Result<(), String> {
            ws(b, i);
            match b.get(*i) {
                Some(b'{') => {
                    *i += 1;
                    ws(b, i);
                    if b.get(*i) == Some(&b'}') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        ws(b, i);
                        string(b, i)?;
                        ws(b, i);
                        if b.get(*i) != Some(&b':') {
                            return Err(format!("expected ':' at {i}"));
                        }
                        *i += 1;
                        value(b, i)?;
                        ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b'}') => {
                                *i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or '}}' at {i}")),
                        }
                    }
                }
                Some(b'[') => {
                    *i += 1;
                    ws(b, i);
                    if b.get(*i) == Some(&b']') {
                        *i += 1;
                        return Ok(());
                    }
                    loop {
                        value(b, i)?;
                        ws(b, i);
                        match b.get(*i) {
                            Some(b',') => *i += 1,
                            Some(b']') => {
                                *i += 1;
                                return Ok(());
                            }
                            _ => return Err(format!("expected ',' or ']' at {i}")),
                        }
                    }
                }
                Some(b'"') => string(b, i),
                Some(_) => {
                    // number / true / false / null
                    let start = *i;
                    while *i < b.len()
                        && !matches!(b[*i], b',' | b'}' | b']')
                        && !(b[*i] as char).is_ascii_whitespace()
                    {
                        *i += 1;
                    }
                    let tok = std::str::from_utf8(&b[start..*i]).unwrap();
                    if tok == "true"
                        || tok == "false"
                        || tok == "null"
                        || tok.parse::<f64>().is_ok()
                    {
                        Ok(())
                    } else {
                        Err(format!("bad literal {tok:?} at {start}"))
                    }
                }
                None => Err("unexpected end".to_string()),
            }
        }
        fn string(b: &[u8], i: &mut usize) -> Result<(), String> {
            if b.get(*i) != Some(&b'"') {
                return Err(format!("expected '\"' at {i}"));
            }
            *i += 1;
            while let Some(&c) = b.get(*i) {
                match c {
                    b'\\' => *i += 2,
                    b'"' => {
                        *i += 1;
                        return Ok(());
                    }
                    _ => *i += 1,
                }
            }
            Err("unterminated string".to_string())
        }
        value(b, &mut i)?;
        ws(b, &mut i);
        if i == b.len() {
            Ok(())
        } else {
            Err(format!("trailing garbage at {i}"))
        }
    }

    fn populated() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.record_hook(HookKind::FnEntry, Duration::from_nanos(900));
        r.on_event(&LifecycleEvent::New {
            class: 0,
            instance: 0,
        });
        r.on_event(&LifecycleEvent::Finalise {
            class: 0,
            instance: 0,
            accepted: true,
        });
        r
    }

    #[test]
    fn prometheus_text_is_well_formed() {
        let text = prometheus(&populated().snapshot());
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .rsplit_once(' ')
                        .is_some_and(|(_, v)| v.parse::<f64>().is_ok()),
                "bad exposition line: {line}"
            );
        }
        assert!(text.contains("tesla_events_total 2"));
        assert!(text.contains("tesla_hook_calls_total{hook=\"fn_entry\"} 1"));
        assert!(text.contains("tesla_hook_latency_ns_bucket{hook=\"fn_entry\",le=\"1024\"} 1"));
        assert!(text.contains("tesla_live_instances{class=\"unregistered\"} 0"));
        assert!(text.contains("tesla_live_instances_peak{class=\"unregistered\"} 1"));
    }

    #[test]
    fn json_snapshot_parses() {
        let j = json(&populated().snapshot());
        check_json(&j).unwrap();
        assert!(j.contains("\"events_total\": 2"));
        assert!(j.contains("\"hook\":\"assertion_site\""));
    }

    #[test]
    fn jsonl_and_chrome_trace_parse() {
        let rec = FlightRecorder::new(64);
        rec.on_event(&LifecycleEvent::New {
            class: 1,
            instance: 2,
        });
        rec.on_event(&LifecycleEvent::Overflow { class: 1 });
        let events = rec.snapshot();

        let l = events_jsonl(&events);
        assert_eq!(l.lines().count(), 2);
        for line in l.lines() {
            check_json(line).unwrap();
        }
        assert!(l.contains("\"kind\":\"new\""));
        assert!(l.contains("\"kind\":\"overflow\""));

        let t = chrome_trace(&events);
        check_json(&t).unwrap();
        assert!(t.contains("\"ph\":\"i\""));
        assert!(t.contains("\"cat\":\"tesla\""));
    }

    #[test]
    fn escaping_keeps_output_parseable() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("x\"y"), "x\\\"y");
        check_json(&format!(
            "{{\"k\":\"{}\"}}",
            json_escape("quote \" slash \\ nl \n")
        ))
        .unwrap();
        // DEL, C1 controls, and the JS line separators are all forced
        // into \uXXXX form.
        assert_eq!(json_escape("\u{7f}"), "\\u007f");
        assert_eq!(json_escape("\u{85}"), "\\u0085");
        assert_eq!(json_escape("\u{2028}\u{2029}"), "\\u2028\\u2029");
        check_json(&format!("{{\"k\":\"{}\"}}", json_escape("\x00\x1f\u{9f}"))).unwrap();
    }

    #[test]
    fn json_counters_is_valid_and_latency_free() {
        let j = json_counters(&populated().snapshot());
        check_json(&j).unwrap();
        assert!(j.contains("\"events_total\": 2"));
        assert!(!j.contains("latency"), "{j}");
        assert!(!j.contains("sum_ns"), "{j}");
    }

    /// Build a snapshot whose every string field is attacker-chosen.
    fn hostile_snapshot(name: &str) -> MetricsSnapshot {
        use crate::telemetry::metrics::{ClassSnapshot, HookSnapshot, TransitionCount};
        MetricsSnapshot {
            events_total: 1,
            violations: 0,
            sites_elided: 0,
            handler_panics: 0,
            faults_absorbed: 0,
            lock_poison_recoveries: 0,
            hooks: vec![HookSnapshot {
                hook: name.to_string(),
                calls: 3,
                sample_period: 64,
                latency: HistogramSnapshot {
                    buckets: vec![0, 1, 0],
                    count: 1,
                    sum_ns: 7,
                },
            }],
            classes: vec![ClassSnapshot {
                class: 0,
                name: name.to_string(),
                news: 1,
                clones: 0,
                updates: 2,
                accepted: 1,
                rejected: 0,
                overflows: 0,
                evictions: 0,
                shed: 0,
                live: 0,
                high_watermark: 1,
                transitions: vec![TransitionCount {
                    from_state: 0,
                    symbol: 1,
                    count: 2,
                }],
            }],
        }
    }

    proptest::proptest! {
        // Replay traces carry arbitrary external names; every string
        // that can reach an interned-name slot must leave the JSON
        // emitters parseable. `any::<char>()` includes the control
        // planes that "\\PC*" would filter out.
        #[test]
        fn arbitrary_names_keep_json_parseable(
            chars in proptest::collection::vec(proptest::prelude::any::<char>(), 0..48)
        ) {
            let name: String = chars.into_iter().collect();
            let snap = hostile_snapshot(&name);
            check_json(&json(&snap)).unwrap();
            check_json(&json_counters(&snap)).unwrap();
            // The escaped form must still be lossless for embedding:
            // no raw quote/backslash/control byte survives.
            let e = json_escape(&name);
            proptest::prop_assert!(!e.bytes().any(|b| b < 0x20 || b == 0x7f));
        }

        #[test]
        fn arbitrary_names_keep_prometheus_line_oriented(
            chars in proptest::collection::vec(proptest::prelude::any::<char>(), 0..48)
        ) {
            let name: String = chars.into_iter().collect();
            let text = prometheus(&hostile_snapshot(&name));
            // Escaping must keep one sample per line: no label value
            // may smuggle a raw newline into the exposition text.
            for line in text.lines() {
                proptest::prop_assert!(
                    line.starts_with('#') || line.rsplit_once(' ').is_some(),
                    "bad exposition line: {line}"
                );
            }
        }
    }
}
