//! Online telemetry analysis: the layer that *consumes* the PR-3
//! collection machinery.
//!
//! Three cooperating pieces:
//!
//! * [`baseline`] — learn what "healthy" looks like: per-automaton
//!   transition-weight distributions and per-hook latency profiles,
//!   persisted to a versioned line-oriented file
//!   ([`Baseline`]/[`BaselineError`], `tesla baseline`);
//! * [`anomaly`] — score a live or replayed run against a baseline
//!   and raise stable-coded findings (TESLA-A001/A002/A003) with
//!   flight-recorder evidence ([`score`], `tesla observe
//!   --baseline … --anomalies`);
//! * [`governor`] — hold an instrumented-overhead SLO by adaptively
//!   shedding observation work ([`Governor`], `tesla run --govern`).

pub mod anomaly;
pub mod baseline;
pub mod governor;

pub use anomaly::{score, Anomaly, AnomalyCode, AnomalyReport, ClassScore, ScorerConfig};
pub use baseline::{
    Baseline, BaselineEdge, BaselineError, ClassBaseline, HookBaseline, Welford, BASELINE_HEADER,
    BASELINE_VERSION,
};
pub use governor::{fmt_overhead, Governor, GovernorConfig, GovernorDecision};
