//! Online anomaly scoring against a healthy-run [`Baseline`].
//!
//! The scorer compares a live (or replayed) run's telemetry snapshot
//! to a baseline and emits findings under three stable codes,
//! mirroring the diagnostics registries of `tesla static-check`
//! (TESLA-S00x) and `tesla lint` (TESLA-L00x):
//!
//! * **TESLA-A001 — novel transition**: the run took an automaton
//!   edge the baseline never observed. The single strongest signal:
//!   the program exercised a protocol path "normal" never does.
//! * **TESLA-A002 — weight divergence**: the normalized
//!   transition-frequency vector of a class drifted from the
//!   baseline's, measured by L1 distance (with symmetric χ² reported
//!   alongside). Catches ratio shifts even when every edge was known.
//! * **TESLA-A003 — latency regression**: a hook kind's mean latency
//!   cleared a robust bar over the baseline profile
//!   (`max(factor·µ, µ+3σ, µ+floor)`).
//!
//! For flagged classes the scorer pulls the most recent matching
//! events out of the [`FlightRecorder`] into the finding — a
//! replayable evidence snippet in the recorder's JSONL shape, so "it
//! diverged" always arrives with "here is what it was doing".

use crate::telemetry::analysis::baseline::Baseline;
use crate::telemetry::export::{esc, events_jsonl, json_escape};
use crate::telemetry::metrics::MetricsSnapshot;
use crate::telemetry::recorder::{FlightRecorder, RecordedEvent};
use crate::telemetry::Welford;

/// Stable anomaly codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AnomalyCode {
    /// TESLA-A001: an edge never taken in the baseline was taken.
    NovelTransition,
    /// TESLA-A002: normalized transition weights diverged.
    WeightDivergence,
    /// TESLA-A003: hook latency regressed past the robust bar.
    LatencyRegression,
}

impl AnomalyCode {
    /// The stable diagnostic code, e.g. `TESLA-A001`.
    pub fn code(self) -> &'static str {
        match self {
            AnomalyCode::NovelTransition => "TESLA-A001",
            AnomalyCode::WeightDivergence => "TESLA-A002",
            AnomalyCode::LatencyRegression => "TESLA-A003",
        }
    }

    /// Short human label.
    pub fn label(self) -> &'static str {
        match self {
            AnomalyCode::NovelTransition => "novel transition",
            AnomalyCode::WeightDivergence => "weight divergence",
            AnomalyCode::LatencyRegression => "latency regression",
        }
    }
}

/// Scorer thresholds. The defaults are deliberately conservative:
/// a healthy trace re-scored against its own baseline must stay
/// flag-free (it scores exactly 0), and small-sample noise must not
/// page anyone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScorerConfig {
    /// L1 distance (×1000, range 0..=2000) above which a class is
    /// flagged TESLA-A002.
    pub l1_threshold_milli: u64,
    /// Latency-regression factor (×1000): the live mean must exceed
    /// `factor · baseline_mean` (as well as the `+3σ` and `+floor`
    /// bars) to flag TESLA-A003.
    pub latency_factor_milli: u64,
    /// Absolute latency floor (ns) a regression must clear — guards
    /// against flagging a 40 ns hook that "doubled" to 80 ns.
    pub latency_floor_ns: u64,
    /// Minimum latency samples (both sides) before TESLA-A003 is
    /// considered.
    pub min_latency_samples: u64,
    /// Minimum live transitions in a class before it is scored.
    pub min_class_events: u64,
    /// Most recent flight-recorder events attached per finding.
    pub evidence_events: usize,
}

impl Default for ScorerConfig {
    fn default() -> ScorerConfig {
        ScorerConfig {
            l1_threshold_milli: 250,
            latency_factor_milli: 2000,
            latency_floor_ns: 100_000,
            min_latency_samples: 32,
            min_class_events: 4,
            evidence_events: 32,
        }
    }
}

/// One finding.
#[derive(Debug, Clone)]
pub struct Anomaly {
    /// Which check fired.
    pub code: AnomalyCode,
    /// Assertion name (A001/A002) or hook label (A003).
    pub subject: String,
    /// Class id for class-level findings.
    pub class: Option<u32>,
    /// Comparable magnitude ×1000: L1 distance for A002, novel-edge
    /// count for A001, live/baseline mean ratio for A003.
    pub score_milli: u64,
    /// Human-readable specifics.
    pub detail: String,
    /// Recent flight-recorder events for the flagged class, oldest
    /// first (empty when no recorder was attached).
    pub evidence: Vec<RecordedEvent>,
}

/// Per-class divergence scores, including unflagged classes — the
/// exported signal a dashboard watches *before* thresholds trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassScore {
    /// Class id in this run.
    pub class: u32,
    /// Assertion name.
    pub name: String,
    /// L1 distance ×1000 (0..=2000).
    pub l1_milli: u64,
    /// Symmetric χ² distance ×1000 (0..=2000).
    pub chi2_milli: u64,
    /// Edges taken live that the baseline never saw.
    pub novel_edges: u64,
}

/// Everything one scoring pass produced.
#[derive(Debug, Clone, Default)]
pub struct AnomalyReport {
    /// Findings, in class order then hook order.
    pub anomalies: Vec<Anomaly>,
    /// Divergence scores for every scored class.
    pub class_scores: Vec<ClassScore>,
    /// Classes compared against the baseline.
    pub classes_scored: usize,
    /// Live classes with transitions the baseline does not know (new
    /// assertions — reported, not flagged).
    pub classes_unmatched: usize,
}

impl AnomalyReport {
    /// True when nothing was flagged.
    pub fn is_clean(&self) -> bool {
        self.anomalies.is_empty()
    }
}

/// Score a run against a baseline.
///
/// Pass the run's [`FlightRecorder`] to attach evidence snippets to
/// class-level findings; without one, findings carry no events.
pub fn score(
    baseline: &Baseline,
    snap: &MetricsSnapshot,
    recorder: Option<&FlightRecorder>,
    cfg: &ScorerConfig,
) -> AnomalyReport {
    let mut report = AnomalyReport::default();
    let recorded: Vec<RecordedEvent> = recorder.map(|r| r.snapshot()).unwrap_or_default();
    for c in &snap.classes {
        let live_total: u64 = c.transitions.iter().map(|t| t.count).sum();
        if live_total < cfg.min_class_events {
            continue;
        }
        let Some(base) = baseline.class(&c.name) else {
            report.classes_unmatched += 1;
            continue;
        };
        report.classes_scored += 1;
        // Union of edges, live counts first.
        let mut novel: Vec<(u32, u32, u64)> = Vec::new();
        let mut l1 = 0.0f64;
        let mut chi2 = 0.0f64;
        for t in &c.transitions {
            let p = t.count as f64 / live_total as f64;
            let qn = base.edge(t.from_state, t.symbol);
            let q = qn as f64 / base.total.max(1) as f64;
            l1 += (p - q).abs();
            if p + q > 0.0 {
                chi2 += (p - q) * (p - q) / (p + q);
            }
            if qn == 0 && t.count > 0 && base.total > 0 {
                novel.push((t.from_state, t.symbol, t.count));
            }
        }
        for e in &base.edges {
            let taken_live = c
                .transitions
                .iter()
                .any(|t| t.from_state == e.from && t.symbol == e.sym);
            if !taken_live {
                let q = e.n as f64 / base.total.max(1) as f64;
                l1 += q;
                chi2 += q; // (0-q)²/(0+q) = q
            }
        }
        let l1_milli = to_milli(l1);
        let chi2_milli = to_milli(chi2);
        report.class_scores.push(ClassScore {
            class: c.class,
            name: c.name.clone(),
            l1_milli,
            chi2_milli,
            novel_edges: novel.len() as u64,
        });
        let evidence = |recorded: &[RecordedEvent]| -> Vec<RecordedEvent> {
            let matching: Vec<RecordedEvent> = recorded
                .iter()
                .filter(|e| e.class == c.class)
                .cloned()
                .collect();
            let skip = matching.len().saturating_sub(cfg.evidence_events);
            matching.into_iter().skip(skip).collect()
        };
        if !novel.is_empty() {
            let mut shown: Vec<String> = novel
                .iter()
                .take(4)
                .map(|(f, s, n)| format!("{f}-[{s}]-> ({n}×)"))
                .collect();
            if novel.len() > 4 {
                shown.push(format!("+{} more", novel.len() - 4));
            }
            report.anomalies.push(Anomaly {
                code: AnomalyCode::NovelTransition,
                subject: c.name.clone(),
                class: Some(c.class),
                score_milli: novel.len() as u64 * 1000,
                detail: format!(
                    "{} edge(s) never taken in baseline: {}",
                    novel.len(),
                    shown.join(", ")
                ),
                evidence: evidence(&recorded),
            });
        }
        if l1_milli > cfg.l1_threshold_milli {
            report.anomalies.push(Anomaly {
                code: AnomalyCode::WeightDivergence,
                subject: c.name.clone(),
                class: Some(c.class),
                score_milli: l1_milli,
                detail: format!(
                    "L1 divergence {} (chi2 {}) over {} live transitions vs baseline total {}",
                    fmt_milli(l1_milli),
                    fmt_milli(chi2_milli),
                    live_total,
                    base.total
                ),
                evidence: evidence(&recorded),
            });
        }
    }
    for h in &snap.hooks {
        let Some(base) = baseline.hook(&h.hook) else {
            continue;
        };
        if h.latency.count < cfg.min_latency_samples || base.samples < cfg.min_latency_samples {
            continue;
        }
        let live_mean = Welford::from_histogram(&h.latency).mean();
        let bar = (base.mean_ns as f64 * cfg.latency_factor_milli as f64 / 1000.0)
            .max(base.mean_ns as f64 + 3.0 * base.std_ns as f64)
            .max(base.mean_ns as f64 + cfg.latency_floor_ns as f64);
        if live_mean > bar {
            let ratio_milli = to_milli(live_mean / base.mean_ns.max(1) as f64).max(1);
            report.anomalies.push(Anomaly {
                code: AnomalyCode::LatencyRegression,
                subject: h.hook.clone(),
                class: None,
                score_milli: ratio_milli,
                detail: format!(
                    "mean latency {} ns vs baseline {} ns (std {} ns, bar {} ns)",
                    live_mean.round() as u64,
                    base.mean_ns,
                    base.std_ns,
                    bar.round() as u64
                ),
                evidence: Vec::new(),
            });
        }
    }
    report
}

fn to_milli(x: f64) -> u64 {
    if x.is_finite() && x > 0.0 {
        (x * 1000.0).round().min(u64::MAX as f64) as u64
    } else {
        0
    }
}

fn fmt_milli(m: u64) -> String {
    format!("{}.{:03}", m / 1000, m % 1000)
}

/// Render a report as human-readable text, evidence snippets
/// included (indented recorder-JSONL lines, replayable as-is).
pub fn render_text(report: &AnomalyReport) -> String {
    let mut out = String::new();
    for a in &report.anomalies {
        out.push_str(&format!(
            "{} {}: `{}` {}\n",
            a.code.code(),
            a.code.label(),
            a.subject,
            a.detail
        ));
        if !a.evidence.is_empty() {
            out.push_str(&format!(
                "  evidence: last {} recorded event(s) for class {}\n",
                a.evidence.len(),
                a.class.unwrap_or(0)
            ));
            for line in events_jsonl(&a.evidence).lines() {
                out.push_str("  ");
                out.push_str(line);
                out.push('\n');
            }
        }
    }
    out.push_str(&format!(
        "anomaly summary: {} finding(s) over {} scored class(es), {} unmatched\n",
        report.anomalies.len(),
        report.classes_scored,
        report.classes_unmatched
    ));
    out
}

/// Prometheus exposition of anomaly scores: per-class divergence
/// gauges plus per-code finding counts.
pub fn prometheus(report: &AnomalyReport) -> String {
    let mut out = String::new();
    out.push_str("# HELP tesla_anomaly_class_l1_milli L1 transition-weight divergence vs baseline (x1000).\n");
    out.push_str("# TYPE tesla_anomaly_class_l1_milli gauge\n");
    for s in &report.class_scores {
        out.push_str(&format!(
            "tesla_anomaly_class_l1_milli{{class=\"{}\"}} {}\n",
            esc(&s.name),
            s.l1_milli
        ));
    }
    out.push_str("# HELP tesla_anomaly_class_chi2_milli Symmetric chi-squared divergence vs baseline (x1000).\n");
    out.push_str("# TYPE tesla_anomaly_class_chi2_milli gauge\n");
    for s in &report.class_scores {
        out.push_str(&format!(
            "tesla_anomaly_class_chi2_milli{{class=\"{}\"}} {}\n",
            esc(&s.name),
            s.chi2_milli
        ));
    }
    out.push_str(
        "# HELP tesla_anomaly_novel_edges Transitions taken that the baseline never saw.\n",
    );
    out.push_str("# TYPE tesla_anomaly_novel_edges gauge\n");
    for s in &report.class_scores {
        out.push_str(&format!(
            "tesla_anomaly_novel_edges{{class=\"{}\"}} {}\n",
            esc(&s.name),
            s.novel_edges
        ));
    }
    out.push_str("# HELP tesla_anomalies_total Findings by stable code.\n");
    out.push_str("# TYPE tesla_anomalies_total gauge\n");
    for code in [
        AnomalyCode::NovelTransition,
        AnomalyCode::WeightDivergence,
        AnomalyCode::LatencyRegression,
    ] {
        let n = report.anomalies.iter().filter(|a| a.code == code).count();
        out.push_str(&format!(
            "tesla_anomalies_total{{code=\"{}\"}} {n}\n",
            code.code()
        ));
    }
    out
}

/// JSON object of the full report (scores, findings, evidence).
pub fn json(report: &AnomalyReport) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"class_scores\": [\n");
    for (i, s) in report.class_scores.iter().enumerate() {
        let sep = if i + 1 == report.class_scores.len() {
            ""
        } else {
            ","
        };
        out.push_str(&format!(
            "    {{\"class\":{},\"name\":\"{}\",\"l1_milli\":{},\"chi2_milli\":{},\"novel_edges\":{}}}{sep}\n",
            s.class,
            json_escape(&s.name),
            s.l1_milli,
            s.chi2_milli,
            s.novel_edges
        ));
    }
    out.push_str("  ],\n  \"anomalies\": [\n");
    for (i, a) in report.anomalies.iter().enumerate() {
        let sep = if i + 1 == report.anomalies.len() {
            ""
        } else {
            ","
        };
        let class = a
            .class
            .map(|c| c.to_string())
            .unwrap_or_else(|| "null".into());
        out.push_str(&format!(
            "    {{\"code\":\"{}\",\"subject\":\"{}\",\"class\":{class},\"score_milli\":{},\"detail\":\"{}\",\"evidence_events\":{}}}{sep}\n",
            a.code.code(),
            json_escape(&a.subject),
            a.score_milli,
            json_escape(&a.detail),
            a.evidence.len()
        ));
    }
    out.push_str(&format!(
        "  ],\n  \"classes_scored\": {},\n  \"classes_unmatched\": {}\n}}\n",
        report.classes_scored, report.classes_unmatched
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::metrics::{
        ClassSnapshot, HistogramSnapshot, HookSnapshot, TransitionCount,
    };

    fn class_snap(name: &str, transitions: Vec<TransitionCount>) -> ClassSnapshot {
        ClassSnapshot {
            class: 3,
            name: name.to_string(),
            news: 1,
            clones: 0,
            updates: transitions.iter().map(|t| t.count).sum(),
            accepted: 1,
            rejected: 0,
            overflows: 0,
            evictions: 0,
            shed: 0,
            live: 0,
            high_watermark: 1,
            transitions,
        }
    }

    fn snap_with(classes: Vec<ClassSnapshot>, hooks: Vec<HookSnapshot>) -> MetricsSnapshot {
        MetricsSnapshot {
            events_total: 0,
            violations: 0,
            sites_elided: 0,
            handler_panics: 0,
            faults_absorbed: 0,
            lock_poison_recoveries: 0,
            hooks,
            classes,
        }
    }

    fn t(from: u32, sym: u32, count: u64) -> TransitionCount {
        TransitionCount {
            from_state: from,
            symbol: sym,
            count,
        }
    }

    fn base_of(snapshot: &MetricsSnapshot) -> Baseline {
        Baseline::from_snapshot(snapshot)
    }

    #[test]
    fn identical_run_scores_zero_on_every_class() {
        let snap = snap_with(
            vec![class_snap("p", vec![t(0, 1, 40), t(1, 2, 60)])],
            vec![],
        );
        let base = base_of(&snap);
        let report = score(&base, &snap, None, &ScorerConfig::default());
        assert!(report.is_clean(), "{:?}", report.anomalies);
        assert_eq!(report.classes_scored, 1);
        assert_eq!(report.class_scores[0].l1_milli, 0);
        assert_eq!(report.class_scores[0].chi2_milli, 0);
        assert_eq!(report.class_scores[0].novel_edges, 0);
    }

    #[test]
    fn novel_edge_raises_a001() {
        let healthy = snap_with(vec![class_snap("p", vec![t(0, 1, 100)])], vec![]);
        let base = base_of(&healthy);
        let live = snap_with(
            vec![class_snap("p", vec![t(0, 1, 100), t(2, 3, 1)])],
            vec![],
        );
        let report = score(&base, &live, None, &ScorerConfig::default());
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.code == AnomalyCode::NovelTransition));
        assert_eq!(report.class_scores[0].novel_edges, 1);
    }

    #[test]
    fn weight_shift_raises_a002_without_novel_edges() {
        let healthy = snap_with(
            vec![class_snap("p", vec![t(0, 1, 90), t(1, 2, 10)])],
            vec![],
        );
        let base = base_of(&healthy);
        // Same edges, flipped ratio: L1 = 2·0.8 = 1.6.
        let live = snap_with(
            vec![class_snap("p", vec![t(0, 1, 10), t(1, 2, 90)])],
            vec![],
        );
        let report = score(&base, &live, None, &ScorerConfig::default());
        let a002: Vec<_> = report
            .anomalies
            .iter()
            .filter(|a| a.code == AnomalyCode::WeightDivergence)
            .collect();
        assert_eq!(a002.len(), 1);
        assert_eq!(a002[0].score_milli, 1600);
        assert!(!report
            .anomalies
            .iter()
            .any(|a| a.code == AnomalyCode::NovelTransition));
    }

    #[test]
    fn latency_regression_needs_samples_and_a_big_bar() {
        let hook = |mean_bucket: usize, n: u64| HookSnapshot {
            hook: "fn_entry".into(),
            calls: n,
            sample_period: 1,
            latency: HistogramSnapshot {
                buckets: {
                    let mut b = vec![0u64; 40];
                    b[mean_bucket] = n;
                    b
                },
                count: n,
                sum_ns: 0,
            },
        };
        // Baseline around 2^9-ish ns; live around 2^21-ish ns.
        let base = base_of(&snap_with(vec![], vec![hook(10, 100)]));
        let live = snap_with(vec![], vec![hook(22, 100)]);
        let report = score(&base, &live, None, &ScorerConfig::default());
        assert!(report
            .anomalies
            .iter()
            .any(|a| a.code == AnomalyCode::LatencyRegression));
        // Too few samples: no flag.
        let sparse = snap_with(vec![], vec![hook(22, 4)]);
        let report = score(&base, &sparse, None, &ScorerConfig::default());
        assert!(report.is_clean());
    }

    #[test]
    fn unmatched_and_tiny_classes_are_reported_not_flagged() {
        let base = base_of(&snap_with(vec![class_snap("p", vec![t(0, 1, 50)])], vec![]));
        let live = snap_with(
            vec![
                class_snap("unknown-assertion", vec![t(0, 1, 50)]),
                class_snap("p", vec![t(5, 5, 1)]), // below min_class_events
            ],
            vec![],
        );
        let report = score(&base, &live, None, &ScorerConfig::default());
        assert!(report.is_clean());
        assert_eq!(report.classes_unmatched, 1);
        assert_eq!(report.classes_scored, 0);
    }

    #[test]
    fn exports_are_well_formed() {
        let healthy = snap_with(
            vec![class_snap("p", vec![t(0, 1, 90), t(1, 2, 10)])],
            vec![],
        );
        let base = base_of(&healthy);
        let live = snap_with(
            vec![class_snap("p", vec![t(0, 1, 10), t(1, 2, 90)])],
            vec![],
        );
        let report = score(&base, &live, None, &ScorerConfig::default());
        let prom = prometheus(&report);
        assert!(prom.contains("tesla_anomaly_class_l1_milli{class=\"p\"} 1600"));
        assert!(prom.contains("tesla_anomalies_total{code=\"TESLA-A002\"} 1"));
        let text = render_text(&report);
        assert!(text.contains("TESLA-A002 weight divergence"));
        let j = json(&report);
        assert!(j.contains("\"code\":\"TESLA-A002\""));
    }
}
