//! Healthy-run baselines: learned per-automaton transition-weight
//! distributions and per-hook latency profiles.
//!
//! A [`Baseline`] is a statistical summary of one or more *healthy*
//! runs, captured from a telemetry [`MetricsSnapshot`]:
//!
//! * per hook kind, a streaming mean/deviation of the sampled latency
//!   histogram (via [`Welford`] over bucket midpoints);
//! * per automaton class (keyed by assertion name, so a baseline
//!   survives re-registration in a different class order), the raw
//!   transition-edge counts of the [`ClassWeights`] table, from which
//!   the scorer derives normalized transition-frequency vectors.
//!
//! The on-disk format deliberately mirrors the trace-schema contract
//! of [`crate::ingress`]: line-oriented JSON with a versioned header
//! (`{"tesla_baseline":1}`), `"rec"`-tagged records, unknown fields
//! ignored for forward compatibility, and *positioned* diagnostics
//! ([`BaselineError::Malformed`] / [`BaselineError::Version`] carry a
//! 1-based line number and the byte offset of the line start) so a
//! bad baseline file fails exactly like a bad trace does.
//!
//! [`ClassWeights`]: crate::telemetry::weights::ClassWeights

use crate::ingress::json::Json;
use crate::telemetry::export::json_escape;
use crate::telemetry::metrics::{HistogramSnapshot, MetricsSnapshot};
use std::path::Path;

/// The baseline schema version this build reads and writes.
pub const BASELINE_VERSION: u32 = 1;

/// The exact header line a version-1 baseline file starts with.
pub const BASELINE_HEADER: &str = "{\"tesla_baseline\":1}";

/// Streaming mean/variance accumulator (Welford's online algorithm,
/// with Chan's parallel-merge update for weighted batches).
///
/// Numerically stable: no sum-of-squares catastrophic cancellation,
/// so it is safe over nanosecond magnitudes mixed with zeros.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Fresh, empty accumulator.
    pub fn new() -> Welford {
        Welford::default()
    }

    /// Fold one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Fold `w` identical observations in at once (Chan's merge of a
    /// zero-variance batch): equivalent to calling [`Welford::push`]
    /// `w` times, in O(1).
    pub fn push_weighted(&mut self, x: f64, w: u64) {
        if w == 0 {
            return;
        }
        let delta = x - self.mean;
        let total = self.count + w;
        self.mean += delta * w as f64 / total as f64;
        self.m2 += delta * delta * (self.count as f64 * w as f64) / total as f64;
        self.count = total;
    }

    /// Summarise a latency histogram: each bucket contributes its
    /// midpoint, weighted by its count.
    pub fn from_histogram(h: &HistogramSnapshot) -> Welford {
        let mut w = Welford::new();
        for (i, &n) in h.buckets.iter().enumerate() {
            w.push_weighted(HistogramSnapshot::bucket_midpoint_ns(i) as f64, n);
        }
        w
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 when fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// The learned latency profile of one hook kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HookBaseline {
    /// Hook label, e.g. `fn_entry` (see
    /// [`crate::telemetry::HookKind::label`]).
    pub hook: String,
    /// Total hook invocations in the baseline run (exact).
    pub calls: u64,
    /// Latency observations behind the profile (sampled).
    pub samples: u64,
    /// Mean latency over histogram bucket midpoints, rounded to ns.
    pub mean_ns: u64,
    /// Standard deviation, rounded to ns.
    pub std_ns: u64,
}

/// One observed automaton transition edge: DFA row × symbol → count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineEdge {
    /// Dense DFA row index (the DOT node id of
    /// [`crate::telemetry::weights::ClassWeights`]).
    pub from: u32,
    /// Symbol index into the automaton alphabet.
    pub sym: u32,
    /// Times the edge was taken across the baseline runs.
    pub n: u64,
}

/// The learned transition-weight distribution of one assertion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassBaseline {
    /// Assertion name — the stable key; class ids are registration
    /// order and do not survive across runs.
    pub name: String,
    /// Sum of all edge counts.
    pub total: u64,
    /// Observed edges, sorted by `(from, sym)`.
    pub edges: Vec<BaselineEdge>,
}

impl ClassBaseline {
    /// Count for an edge (0 when never taken in the baseline).
    pub fn edge(&self, from: u32, sym: u32) -> u64 {
        self.edges
            .binary_search_by_key(&(from, sym), |e| (e.from, e.sym))
            .map(|i| self.edges[i].n)
            .unwrap_or(0)
    }
}

/// A persisted healthy-run model: what "normal" looks like.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Per-hook latency profiles.
    pub hooks: Vec<HookBaseline>,
    /// Per-assertion transition distributions.
    pub classes: Vec<ClassBaseline>,
}

/// Why a baseline file could not be used. Mirrors
/// [`crate::IngressError`]'s taxonomy and wording so the CLI's
/// positioned-diagnostic contract (exit 2) is uniform across trace
/// and baseline inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The file could not be read or written.
    Io(String),
    /// A line violated the baseline schema. Positioned by 1-based
    /// line number and the byte offset of that line's start.
    Malformed {
        /// 1-based line number.
        line: u64,
        /// Byte offset of the line's first byte.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// The header declared a version this build does not speak.
    Version {
        /// 1-based line number of the header.
        line: u64,
        /// Byte offset of the header line.
        offset: u64,
        /// The declared version.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::Io(e) => write!(f, "baseline I/O error: {e}"),
            BaselineError::Malformed {
                line,
                offset,
                detail,
            } => write!(
                f,
                "malformed baseline line {line} (byte offset {offset}): {detail}"
            ),
            BaselineError::Version {
                line,
                offset,
                found,
                supported,
            } => write!(
                f,
                "unsupported baseline version {found} at line {line} \
                 (byte offset {offset}); this build speaks version {supported}"
            ),
        }
    }
}

impl std::error::Error for BaselineError {}

impl Baseline {
    /// Learn a baseline from a telemetry snapshot of a healthy run.
    ///
    /// Classes with no observed transitions contribute nothing (an
    /// assertion that never fired carries no distribution to compare
    /// against). Classes sharing an assertion name — the same spec
    /// registered into several classes — are merged by summing edge
    /// counts, which is exactly the "several healthy runs" semantics.
    pub fn from_snapshot(snap: &MetricsSnapshot) -> Baseline {
        let mut hooks = Vec::new();
        for h in &snap.hooks {
            if h.calls == 0 && h.latency.count == 0 {
                continue;
            }
            let w = Welford::from_histogram(&h.latency);
            hooks.push(HookBaseline {
                hook: h.hook.clone(),
                calls: h.calls,
                samples: w.count(),
                mean_ns: round_ns(w.mean()),
                std_ns: round_ns(w.std_dev()),
            });
        }
        let mut classes: Vec<ClassBaseline> = Vec::new();
        for c in &snap.classes {
            if c.transitions.is_empty() {
                continue;
            }
            let cb = match classes.iter_mut().find(|cb| cb.name == c.name) {
                Some(cb) => cb,
                None => {
                    classes.push(ClassBaseline {
                        name: c.name.clone(),
                        total: 0,
                        edges: Vec::new(),
                    });
                    classes.last_mut().expect("just pushed")
                }
            };
            for t in &c.transitions {
                cb.total = cb.total.saturating_add(t.count);
                match cb
                    .edges
                    .binary_search_by_key(&(t.from_state, t.symbol), |e| (e.from, e.sym))
                {
                    Ok(i) => cb.edges[i].n = cb.edges[i].n.saturating_add(t.count),
                    Err(i) => cb.edges.insert(
                        i,
                        BaselineEdge {
                            from: t.from_state,
                            sym: t.symbol,
                            n: t.count,
                        },
                    ),
                }
            }
        }
        Baseline { hooks, classes }
    }

    /// The learned profile for a hook label, if any.
    pub fn hook(&self, label: &str) -> Option<&HookBaseline> {
        self.hooks.iter().find(|h| h.hook == label)
    }

    /// The learned distribution for an assertion name, if any.
    pub fn class(&self, name: &str) -> Option<&ClassBaseline> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Serialise to the versioned line-oriented format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(BASELINE_HEADER);
        out.push('\n');
        for h in &self.hooks {
            out.push_str(&format!(
                "{{\"rec\":\"hook\",\"hook\":\"{}\",\"calls\":{},\"samples\":{},\
                 \"mean_ns\":{},\"std_ns\":{}}}\n",
                json_escape(&h.hook),
                h.calls,
                h.samples,
                h.mean_ns,
                h.std_ns
            ));
        }
        for c in &self.classes {
            let edges: Vec<String> = c
                .edges
                .iter()
                .map(|e| format!("{{\"from\":{},\"sym\":{},\"n\":{}}}", e.from, e.sym, e.n))
                .collect();
            out.push_str(&format!(
                "{{\"rec\":\"class\",\"class\":\"{}\",\"total\":{},\"edges\":[{}]}}\n",
                json_escape(&c.name),
                c.total,
                edges.join(",")
            ));
        }
        out
    }

    /// Parse the versioned line-oriented format.
    ///
    /// # Errors
    ///
    /// [`BaselineError::Version`] when the header declares a version
    /// other than [`BASELINE_VERSION`]; [`BaselineError::Malformed`]
    /// for anything else the schema rejects — both positioned by line
    /// and byte offset.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let mut line_no: u64 = 0;
        let mut offset: u64 = 0;
        let mut saw_header = false;
        let mut b = Baseline::default();
        for raw in text.split('\n') {
            line_no += 1;
            let line_offset = offset;
            offset += raw.len() as u64 + 1;
            let line = raw.strip_suffix('\r').unwrap_or(raw);
            if line.trim().is_empty() {
                continue;
            }
            let malformed = |detail: String| BaselineError::Malformed {
                line: line_no,
                offset: line_offset,
                detail,
            };
            let val = Json::parse(line).map_err(&malformed)?;
            if !saw_header {
                let v = val
                    .get("tesla_baseline")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| {
                        malformed(format!("expected baseline header {BASELINE_HEADER}"))
                    })?;
                if v != u64::from(BASELINE_VERSION) {
                    return Err(BaselineError::Version {
                        line: line_no,
                        offset: line_offset,
                        found: u32::try_from(v).unwrap_or(u32::MAX),
                        supported: BASELINE_VERSION,
                    });
                }
                saw_header = true;
                continue;
            }
            match str_field(&val, "rec").map_err(&malformed)? {
                "hook" => b.hooks.push(HookBaseline {
                    hook: str_field(&val, "hook").map_err(&malformed)?.to_string(),
                    calls: u64_field(&val, "calls").map_err(&malformed)?,
                    samples: u64_field(&val, "samples").map_err(&malformed)?,
                    mean_ns: u64_field(&val, "mean_ns").map_err(&malformed)?,
                    std_ns: u64_field(&val, "std_ns").map_err(&malformed)?,
                }),
                "class" => {
                    let mut edges = Vec::new();
                    let arr = val
                        .get("edges")
                        .ok_or_else(|| malformed("missing field `edges`".into()))?
                        .as_array()
                        .ok_or_else(|| malformed("field `edges` must be an array".into()))?;
                    for e in arr {
                        edges.push(BaselineEdge {
                            from: u32_field(e, "from").map_err(&malformed)?,
                            sym: u32_field(e, "sym").map_err(&malformed)?,
                            n: u64_field(e, "n").map_err(&malformed)?,
                        });
                    }
                    edges.sort_by_key(|e| (e.from, e.sym));
                    b.classes.push(ClassBaseline {
                        name: str_field(&val, "class").map_err(&malformed)?.to_string(),
                        total: u64_field(&val, "total").map_err(&malformed)?,
                        edges,
                    });
                }
                other => {
                    return Err(malformed(format!("unknown record type `{other}`")));
                }
            }
        }
        if !saw_header {
            return Err(BaselineError::Malformed {
                line: 1,
                offset: 0,
                detail: format!("empty baseline: missing header {BASELINE_HEADER}"),
            });
        }
        Ok(b)
    }

    /// Read and parse a baseline file.
    ///
    /// # Errors
    ///
    /// [`BaselineError::Io`] when the file cannot be read, otherwise
    /// whatever [`Baseline::parse`] reports.
    pub fn load(path: &Path) -> Result<Baseline, BaselineError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| BaselineError::Io(format!("{}: {e}", path.display())))?;
        Baseline::parse(&text)
    }

    /// Serialise and write a baseline file.
    ///
    /// # Errors
    ///
    /// [`BaselineError::Io`] when the file cannot be written.
    pub fn save(&self, path: &Path) -> Result<(), BaselineError> {
        std::fs::write(path, self.render())
            .map_err(|e| BaselineError::Io(format!("{}: {e}", path.display())))
    }
}

fn round_ns(x: f64) -> u64 {
    if x.is_finite() && x > 0.0 {
        x.round().min(u64::MAX as f64) as u64
    } else {
        0
    }
}

fn str_field<'a>(obj: &'a Json, key: &str) -> Result<&'a str, String> {
    obj.get(key)
        .ok_or_else(|| format!("missing field `{key}`"))?
        .as_str()
        .ok_or_else(|| format!("field `{key}` must be a string"))
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .ok_or_else(|| format!("missing field `{key}`"))?
        .as_u64()
        .ok_or_else(|| format!("field `{key}` must be an unsigned integer"))
}

fn u32_field(obj: &Json, key: &str) -> Result<u32, String> {
    u32::try_from(u64_field(obj, key)?).map_err(|_| format!("field `{key}` is out of range"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let xs = [4.0, 7.0, 13.0, 16.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        assert_eq!(w.count(), 4);
        assert!((w.mean() - 10.0).abs() < 1e-9);
        // Population variance of [4,7,13,16] around 10: (36+9+9+36)/4.
        assert!((w.variance() - 22.5).abs() < 1e-9);
    }

    #[test]
    fn weighted_push_equals_repeated_push() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        for _ in 0..5 {
            a.push(3.0);
        }
        for _ in 0..2 {
            a.push(11.0);
        }
        b.push_weighted(3.0, 5);
        b.push_weighted(11.0, 2);
        assert_eq!(a.count(), b.count());
        assert!((a.mean() - b.mean()).abs() < 1e-9);
        assert!((a.variance() - b.variance()).abs() < 1e-9);
    }

    fn sample() -> Baseline {
        Baseline {
            hooks: vec![HookBaseline {
                hook: "fn_entry".into(),
                calls: 128,
                samples: 2,
                mean_ns: 512,
                std_ns: 40,
            }],
            classes: vec![ClassBaseline {
                name: "lock \"protocol\"".into(),
                total: 9,
                edges: vec![
                    BaselineEdge {
                        from: 0,
                        sym: 1,
                        n: 4,
                    },
                    BaselineEdge {
                        from: 1,
                        sym: 2,
                        n: 5,
                    },
                ],
            }],
        }
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let b = sample();
        let text = b.render();
        assert!(text.starts_with(BASELINE_HEADER));
        let back = Baseline::parse(&text).expect("round trip");
        assert_eq!(b, back);
        assert_eq!(back.class("lock \"protocol\"").unwrap().edge(1, 2), 5);
        assert_eq!(back.class("lock \"protocol\"").unwrap().edge(3, 3), 0);
    }

    #[test]
    fn version_bump_is_a_positioned_error() {
        let err = Baseline::parse("{\"tesla_baseline\":2}\n").unwrap_err();
        assert_eq!(
            err,
            BaselineError::Version {
                line: 1,
                offset: 0,
                found: 2,
                supported: BASELINE_VERSION
            }
        );
        assert!(err.to_string().contains("unsupported baseline version 2"));
    }

    #[test]
    fn malformed_record_is_positioned() {
        let text = format!("{BASELINE_HEADER}\n{{\"rec\":\"hook\"}}\n");
        match Baseline::parse(&text).unwrap_err() {
            BaselineError::Malformed {
                line,
                offset,
                detail,
            } => {
                assert_eq!(line, 2);
                assert_eq!(offset, BASELINE_HEADER.len() as u64 + 1);
                assert!(detail.contains("missing field `hook`"), "{detail}");
            }
            other => panic!("expected Malformed, got {other:?}"),
        }
    }

    #[test]
    fn unknown_record_and_missing_header_are_rejected() {
        let text = format!("{BASELINE_HEADER}\n{{\"rec\":\"mystery\"}}\n");
        assert!(matches!(
            Baseline::parse(&text),
            Err(BaselineError::Malformed { line: 2, .. })
        ));
        assert!(matches!(
            Baseline::parse(""),
            Err(BaselineError::Malformed { line: 1, .. })
        ));
        // A record before the header is a header error, not silently
        // reinterpreted.
        assert!(matches!(
            Baseline::parse("{\"rec\":\"hook\"}\n"),
            Err(BaselineError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn unknown_fields_are_forward_compatible() {
        let text = format!(
            "{BASELINE_HEADER}\n{{\"rec\":\"hook\",\"hook\":\"x\",\"calls\":1,\
             \"samples\":1,\"mean_ns\":2,\"std_ns\":0,\"future\":\"ignored\"}}\n"
        );
        let b = Baseline::parse(&text).expect("unknown fields ignored");
        assert_eq!(b.hooks.len(), 1);
    }
}
