//! The adaptive overhead governor: a feedback controller that holds
//! an instrumented-overhead SLO by shedding *observation* work.
//!
//! ## Control loop
//!
//! Every [`GovernorConfig::tick_events`] hook events the governor
//! recomputes its overhead estimate from hook-latency telemetry:
//!
//! ```text
//! cost     = Σ_kind p50_latency(kind) × calls(kind)      (robust)
//! overhead = wall / max(wall − cost, wall/16)
//! ```
//!
//! The p50 (not the mean) makes the estimate immune to clock-skew
//! phantoms — a handful of injected 1 s "latencies" moves a mean by
//! orders of magnitude but leaves the median untouched — and the
//! `wall/16` floor bounds the estimate at 16× even if the cost model
//! goes wild.
//!
//! Against the SLO the controller walks a monotone escalation ladder
//! (with one-step hysteresis: it relaxes only below 90% of the SLO):
//!
//! 1. **levels 1–3** — multiply every hook's latency sampling period
//!    (64 → 256 → 1024 → 4096): pure telemetry cost;
//! 2. **levels 4–7** — deliver only 1-in-{2,4,8,16} in-place `Update`
//!    notifications to handlers (weights/recorder become uniformly
//!    sampled): pure observation cost;
//! 3. **levels 8–10** — *only* with [`GovernorConfig::allow_shed`] —
//!    shed 1-in-{8,4,2} specialising clones, reusing the
//!    degraded-mode soundness rules of [`crate::store`].
//!
//! ## Soundness
//!
//! Levels 1–7 never touch the automaton machinery: every event still
//! advances every instance, so the violation list is **byte-identical**
//! to an ungoverned run — that is the default operating envelope.
//! Levels 8–10 shed real work; exactly as in degraded mode, shed
//! clones can only *suppress* checks (a site miss while shedding
//! downgrades to [`crate::LifecycleEvent::Shed`]), never fabricate a
//! violation and never report a false pass. In-place updates — the
//! transitions that can push an automaton past a guard — are never
//! shed at any level.

use crate::telemetry::metrics::{HookKind, MetricsRegistry, LATENCY_SAMPLE_PERIOD};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Governor parameters, validated at [`crate::Tesla::try_new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorConfig {
    /// Overhead SLO ×1000 (1200 = "hold instrumented overhead at or
    /// below 1.2×"). Must exceed 1000.
    pub slo_milli: u32,
    /// Hook events between controller ticks. Must be nonzero.
    pub tick_events: u32,
    /// Permit the clone-shedding levels (8–10). Off by default: the
    /// default envelope keeps violation detection exact.
    pub allow_shed: bool,
}

impl Default for GovernorConfig {
    fn default() -> GovernorConfig {
        GovernorConfig {
            slo_milli: 1200,
            tick_events: 1024,
            allow_shed: false,
        }
    }
}

/// One recorded controller action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GovernorDecision {
    /// Hook-event count at the tick.
    pub at_event: u64,
    /// Overhead estimate that triggered the move (×1000).
    pub overhead_milli: u64,
    /// Escalation level after the move.
    pub level: u32,
    /// Per-hook latency sampling period now in force.
    pub sample_period: u32,
    /// Update-notification delivery period (1 = all).
    pub notify_period: u32,
    /// Clone-shed period (0 = off).
    pub shed_period: u32,
}

/// Escalation ceiling without / with `allow_shed`.
const MAX_LEVEL_EXACT: u32 = 7;
const MAX_LEVEL_SHED: u32 = 10;
/// Bounded decision log.
const MAX_DECISIONS: usize = 256;

/// The feedback controller. One per engine, shared by every hook.
#[derive(Debug)]
pub struct Governor {
    cfg: GovernorConfig,
    start: Instant,
    events: AtomicU64,
    level: AtomicU32,
    notify_period: AtomicU32,
    notify_tick: AtomicU64,
    shed_period: AtomicU32,
    shed_tick: AtomicU64,
    overhead_milli: AtomicU64,
    in_tick: AtomicBool,
    decisions: Mutex<Vec<GovernorDecision>>,
}

impl Governor {
    /// Fresh controller at level 0 (nothing shed, base sampling).
    pub fn new(cfg: GovernorConfig) -> Governor {
        Governor {
            cfg,
            start: Instant::now(),
            events: AtomicU64::new(0),
            level: AtomicU32::new(0),
            notify_period: AtomicU32::new(1),
            notify_tick: AtomicU64::new(0),
            shed_period: AtomicU32::new(0),
            shed_tick: AtomicU64::new(0),
            overhead_milli: AtomicU64::new(1000),
            in_tick: AtomicBool::new(false),
            decisions: Mutex::new(Vec::new()),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &GovernorConfig {
        &self.cfg
    }

    /// Actuator settings for a level: (latency sample period,
    /// update-notify period, clone-shed period).
    fn settings(level: u32) -> (u32, u32, u32) {
        let sample = LATENCY_SAMPLE_PERIOD << (2 * level.min(3));
        let notify = match level {
            0..=3 => 1,
            4 => 2,
            5 => 4,
            6 => 8,
            _ => 16,
        };
        let shed = match level {
            0..=7 => 0,
            8 => 8,
            9 => 4,
            _ => 2,
        };
        (sample, notify, shed)
    }

    /// Count one hook event; run a controller tick every
    /// `tick_events`. Called from the engine's hook prologue.
    #[inline]
    pub fn on_event(&self, metrics: &MetricsRegistry) {
        let n = self.events.fetch_add(1, Ordering::Relaxed) + 1;
        if n % u64::from(self.cfg.tick_events.max(1)) == 0 {
            self.tick(n, metrics);
        }
    }

    /// Should this in-place `Update` notification be delivered?
    /// Counts 1-in-`notify_period`; always true at level ≤ 3.
    #[inline]
    pub fn admit_update(&self) -> bool {
        let p = self.notify_period.load(Ordering::Relaxed);
        if p <= 1 {
            return true;
        }
        self.notify_tick.fetch_add(1, Ordering::Relaxed) % u64::from(p) == 0
    }

    /// Current clone-shed period (0 unless `allow_shed` escalated).
    #[inline]
    pub fn shed_period(&self) -> u32 {
        self.shed_period.load(Ordering::Relaxed)
    }

    /// Should this specialising clone be shed? Counts
    /// 1-in-[`Governor::shed_period`] on a phase that rolls across
    /// scope generations — scoped automata that clone once per scope
    /// still shed their share, which a per-scope counter would miss.
    #[inline]
    pub fn shed_clone(&self) -> bool {
        let p = self.shed_period.load(Ordering::Relaxed);
        if p == 0 {
            return false;
        }
        self.shed_tick.fetch_add(1, Ordering::Relaxed) % u64::from(p) == 0
    }

    /// Latest overhead estimate ×1000.
    pub fn overhead_milli(&self) -> u64 {
        self.overhead_milli.load(Ordering::Relaxed)
    }

    /// Current escalation level.
    pub fn level(&self) -> u32 {
        self.level.load(Ordering::Relaxed)
    }

    /// Hook events seen so far.
    pub fn events(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// The recorded controller actions (bounded at 256).
    pub fn decisions(&self) -> Vec<GovernorDecision> {
        self.decisions.lock().map(|d| d.clone()).unwrap_or_default()
    }

    /// Recompute the overhead estimate without adjusting anything —
    /// the number `tesla run --govern` prints at exit.
    pub fn estimate_overhead_milli(&self, metrics: &MetricsRegistry) -> u64 {
        let estimate = self.estimate(metrics);
        self.overhead_milli.store(estimate, Ordering::Relaxed);
        estimate
    }

    fn estimate(&self, metrics: &MetricsRegistry) -> u64 {
        let wall = self.start.elapsed().as_nanos().max(1);
        let mut cost: u128 = 0;
        for kind in HookKind::ALL {
            let calls = metrics.hook_calls(kind);
            if calls == 0 {
                continue;
            }
            let h = metrics.hook_latency(kind);
            if h.count == 0 {
                continue;
            }
            cost += u128::from(h.quantile_ns(0.5)) * u128::from(calls);
        }
        // Even a wild cost model cannot report more than 16×: the
        // app-time floor is wall/16.
        let cost = cost.min(wall - wall / 16);
        ((wall * 1000) / (wall - cost).max(1)).min(u64::MAX as u128) as u64
    }

    fn tick(&self, at_event: u64, metrics: &MetricsRegistry) {
        if self.in_tick.swap(true, Ordering::Acquire) {
            return; // another thread is mid-tick
        }
        let overhead = self.estimate(metrics);
        self.overhead_milli.store(overhead, Ordering::Relaxed);
        let slo = u64::from(self.cfg.slo_milli);
        let max_level = if self.cfg.allow_shed {
            MAX_LEVEL_SHED
        } else {
            MAX_LEVEL_EXACT
        };
        let level = self.level.load(Ordering::Relaxed);
        let new_level = if overhead > slo {
            (level + 1).min(max_level)
        } else if overhead * 10 < slo * 9 {
            level.saturating_sub(1)
        } else {
            level
        };
        if new_level != level {
            let (sample, notify, shed) = Governor::settings(new_level);
            for kind in HookKind::ALL {
                metrics.set_sample_period(kind, sample);
            }
            self.notify_period.store(notify, Ordering::Relaxed);
            self.shed_period.store(shed, Ordering::Relaxed);
            self.level.store(new_level, Ordering::Relaxed);
            if let Ok(mut d) = self.decisions.lock() {
                if d.len() < MAX_DECISIONS {
                    d.push(GovernorDecision {
                        at_event,
                        overhead_milli: overhead,
                        level: new_level,
                        sample_period: sample,
                        notify_period: notify,
                        shed_period: shed,
                    });
                }
            }
        }
        self.in_tick.store(false, Ordering::Release);
    }

    /// Render the decision log as one line per action.
    pub fn render_decisions(&self) -> String {
        self.decisions()
            .iter()
            .map(|d| {
                let shed = if d.shed_period == 0 {
                    "off".to_string()
                } else {
                    format!("1/{}", d.shed_period)
                };
                format!(
                    "govern: event {} overhead {} -> level {} \
                     (latency sample 1/{}, update notify 1/{}, clone shed {})",
                    d.at_event,
                    fmt_overhead(d.overhead_milli),
                    d.level,
                    d.sample_period,
                    d.notify_period,
                    shed
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// `1234` → `"1.23×"`.
pub fn fmt_overhead(milli: u64) -> String {
    format!("{}.{:02}x", milli / 1000, (milli % 1000) / 10)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn escalation_ladder_is_monotone_and_ordered() {
        let mut prev = Governor::settings(0);
        assert_eq!(prev, (LATENCY_SAMPLE_PERIOD, 1, 0));
        for level in 1..=MAX_LEVEL_SHED {
            let (s, n, sh) = Governor::settings(level);
            let (ps, pn, psh) = prev;
            assert!(s >= ps, "sample period never relaxes on escalation");
            assert!(n >= pn, "notify period never relaxes on escalation");
            // Shed periods count "1 clone in N": once engaged, N only
            // shrinks (shedding a larger share) as the level climbs.
            assert!(
                psh == 0 || (sh != 0 && sh <= psh),
                "shed only tightens once engaged"
            );
            prev = (s, n, sh);
        }
        // Exact levels never shed clones.
        for level in 0..=MAX_LEVEL_EXACT {
            assert_eq!(Governor::settings(level).2, 0);
        }
    }

    #[test]
    fn heavy_hook_cost_escalates_and_adjusts_sampling() {
        let metrics = MetricsRegistry::new();
        // Fake an expensive world: every hook call "took" ~1 ms.
        for _ in 0..1000 {
            metrics.record_hook(HookKind::FnEntry, Duration::from_nanos(1_000_000));
        }
        let g = Governor::new(GovernorConfig {
            slo_milli: 1100,
            tick_events: 8,
            allow_shed: false,
        });
        for _ in 0..64 {
            g.on_event(&metrics);
        }
        assert!(g.overhead_milli() > 1100, "estimate {}", g.overhead_milli());
        assert!(g.level() > 0, "controller escalated");
        assert!(g.level() <= MAX_LEVEL_EXACT, "exact mode caps below shed");
        assert_eq!(g.shed_period(), 0, "no clone shedding without allow_shed");
        assert!(!g.decisions().is_empty());
        assert!(
            metrics.sample_period(HookKind::FnEntry) > LATENCY_SAMPLE_PERIOD,
            "sampling period widened"
        );
        assert!(g.render_decisions().contains("govern: event"));
    }

    #[test]
    fn idle_world_stays_at_level_zero() {
        let metrics = MetricsRegistry::new();
        let g = Governor::new(GovernorConfig {
            slo_milli: 1200,
            tick_events: 4,
            allow_shed: true,
        });
        for _ in 0..64 {
            g.on_event(&metrics);
        }
        assert_eq!(g.level(), 0);
        assert_eq!(g.shed_period(), 0);
        assert!(g.decisions().is_empty());
        assert!(g.admit_update(), "level 0 admits every update");
    }

    #[test]
    fn allow_shed_reaches_the_shed_levels() {
        let metrics = MetricsRegistry::new();
        for _ in 0..1000 {
            metrics.record_hook(HookKind::FnEntry, Duration::from_nanos(1_000_000));
        }
        let g = Governor::new(GovernorConfig {
            slo_milli: 1100,
            tick_events: 2,
            allow_shed: true,
        });
        for _ in 0..64 {
            g.on_event(&metrics);
        }
        assert_eq!(g.level(), MAX_LEVEL_SHED);
        assert!(g.shed_period() > 0);
        // 1-in-16 update notifications at the top of the ladder.
        let admitted = (0..160).filter(|_| g.admit_update()).count();
        assert_eq!(admitted, 10);
        // 1-in-2 clone shedding, on a phase that is independent of
        // scope churn: exactly half of any draw sequence sheds.
        let shed = (0..10).filter(|_| g.shed_clone()).count();
        assert_eq!(shed, 5);
    }

    #[test]
    fn shed_clone_is_inert_below_the_shed_levels() {
        let g = Governor::new(GovernorConfig::default());
        assert!((0..32).all(|_| !g.shed_clone()));
    }

    #[test]
    fn overhead_formatting() {
        assert_eq!(fmt_overhead(1000), "1.00x");
        assert_eq!(fmt_overhead(1234), "1.23x");
        assert_eq!(fmt_overhead(16000), "16.00x");
    }
}
