//! The flight recorder: bounded, per-thread, lock-free event rings.
//!
//! Production monitoring wants "the last N things that happened",
//! not an unbounded log: the paper's GNUstep investigation replayed
//! "detailed information about the events being delivered" and the
//! kernel aggregated through DTrace's bounded per-CPU buffers. The
//! recorder reproduces that shape:
//!
//! * Each thread writes to its **own** ring — registered once on
//!   first touch (the only lock, amortised to zero) and cached in a
//!   thread-local, mirroring the engine's `EngineTls` pattern.
//! * A ring slot is one `seq` word plus four payload words, all
//!   `AtomicU64` — a seqlock in safe Rust. The writer bumps `seq` to
//!   odd, stores the payload, bumps back to even; a snapshotting
//!   reader retries any slot whose `seq` was odd or moved. Torn reads
//!   are *detected*, never returned.
//! * The ring overwrites oldest. [`FlightRecorder::snapshot`] merges
//!   all rings into a timestamp-sorted event list; exporters in
//!   [`crate::telemetry::export`] turn that into JSONL or
//!   chrome://tracing output.

use crate::event::LifecycleEvent;
use crate::handlers::EventHandler;
use parking_lot::Mutex;
use serde::Serialize;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use tesla_automata::StateSet;

/// Default per-thread ring capacity (events).
pub const DEFAULT_CAPACITY: usize = 8192;

/// Timestamps are re-read from the clock every `TS_REFRESH` events
/// per ring; the events in between reuse the cached reading plus
/// their offset in the batch (so a ring's timestamps stay strictly
/// ordered). One `Instant::now()` per event would cost more than the
/// whole seqlock write; at this refresh rate the trace's cross-thread
/// ordering is accurate to roughly one batch of events.
const TS_REFRESH: u64 = 16;

/// Event-kind discriminants in the packed representation.
const K_NEW: u64 = 0;
const K_CLONE: u64 = 1;
const K_UPDATE: u64 = 2;
const K_ERROR: u64 = 3;
const K_FINALISE: u64 = 4;
const K_OVERFLOW: u64 = 5;
const K_EVICTED: u64 = 6;
const K_SHED: u64 = 7;

struct Slot {
    seq: AtomicU64,
    w0: AtomicU64,
    w1: AtomicU64,
    w2: AtomicU64,
    w3: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            w0: AtomicU64::new(0),
            w1: AtomicU64::new(0),
            w2: AtomicU64::new(0),
            w3: AtomicU64::new(0),
        }
    }
}

struct ThreadRing {
    tid: u64,
    mask: u64,
    /// Total events ever pushed; `head & mask` is the next slot.
    head: AtomicU64,
    /// Clock reading cached at the last [`TS_REFRESH`] boundary.
    /// Owner-written, relaxed: only a hint for event timestamps.
    ts_cache: AtomicU64,
    slots: Box<[Slot]>,
}

impl ThreadRing {
    fn new(tid: u64, capacity: usize) -> ThreadRing {
        let cap = capacity.next_power_of_two().max(8);
        ThreadRing {
            tid,
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
            ts_cache: AtomicU64::new(0),
            slots: (0..cap).map(|_| Slot::new()).collect(),
        }
    }

    /// Owner-thread only: a nanosecond timestamp for the next event,
    /// re-reading the clock only at [`TS_REFRESH`] boundaries.
    #[inline]
    fn stamp(&self, epoch: &Instant) -> u64 {
        let i = self.head.load(Ordering::Relaxed);
        let off = i & (TS_REFRESH - 1);
        if off == 0 {
            let now = epoch.elapsed().as_nanos() as u64;
            self.ts_cache.store(now, Ordering::Relaxed);
            now
        } else {
            self.ts_cache.load(Ordering::Relaxed) + off
        }
    }

    /// Owner-thread only: overwrite the oldest slot under the seqlock
    /// protocol.
    #[inline]
    fn push(&self, w: [u64; 4]) {
        let i = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(i & self.mask) as usize];
        let s = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(s + 1, Ordering::Release); // odd: write in progress
        slot.w0.store(w[0], Ordering::Release);
        slot.w1.store(w[1], Ordering::Release);
        slot.w2.store(w[2], Ordering::Release);
        slot.w3.store(w[3], Ordering::Release);
        slot.seq.store(s + 2, Ordering::Release); // even: stable
        self.head.store(i + 1, Ordering::Release);
    }

    /// Any thread: read the current window, skipping slots that are
    /// mid-write or were overwritten during the read.
    fn read(&self, out: &mut Vec<RecordedEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let n = head.min(cap);
        for i in (head - n)..head {
            let slot = &self.slots[(i & self.mask) as usize];
            for _attempt in 0..8 {
                let s1 = slot.seq.load(Ordering::Acquire);
                if s1 & 1 == 1 {
                    continue;
                }
                let w = [
                    slot.w0.load(Ordering::Acquire),
                    slot.w1.load(Ordering::Acquire),
                    slot.w2.load(Ordering::Acquire),
                    slot.w3.load(Ordering::Acquire),
                ];
                if slot.seq.load(Ordering::Acquire) == s1 {
                    out.push(RecordedEvent::unpack(self.tid, w));
                    break;
                }
            }
        }
    }
}

/// A decoded flight-recorder record. The packed form keeps 64 bits of
/// state-set payload, so NFA states ≥ 64 are truncated in the *trace*
/// (never in the runtime itself); real automata in this reproduction
/// have well under 64 states.
#[derive(Debug, Clone, Serialize)]
pub struct RecordedEvent {
    /// Nanoseconds since the recorder was created.
    pub ts_ns: u64,
    /// Recorder-assigned dense thread id.
    pub thread: u64,
    /// Event kind: `new`, `clone`, `update`, `error`, `finalise`,
    /// `overflow`, `evicted`, `shed`.
    pub kind: &'static str,
    /// Automaton class.
    pub class: u32,
    /// Symbol id (updates only).
    pub symbol: u32,
    /// Instance index (clones: the source instance).
    pub instance: u32,
    /// Kind-specific extra: clone target instance, finalise
    /// acceptance (0/1).
    pub aux: u32,
    /// Low 64 bits of the relevant state set (updates: source states;
    /// clones: arrival states).
    pub states: u64,
}

impl RecordedEvent {
    fn pack(ev: &LifecycleEvent) -> (u64, u64, u64) {
        let low = |s: &StateSet| {
            s.iter()
                .take_while(|&b| b < 64)
                .fold(0u64, |acc, b| acc | 1 << b)
        };
        match ev {
            LifecycleEvent::New { class, instance } => {
                (K_NEW | (u64::from(*class) << 8), u64::from(*instance), 0)
            }
            LifecycleEvent::Clone {
                class,
                from_instance,
                to_instance,
                states,
                ..
            } => (
                K_CLONE | (u64::from(*class) << 8),
                u64::from(*from_instance) | (u64::from(*to_instance) << 32),
                low(states),
            ),
            LifecycleEvent::Update {
                class,
                instance,
                sym,
                from_states,
                ..
            } => (
                K_UPDATE | (u64::from(*class) << 8) | (u64::from(sym.0) << 40),
                u64::from(*instance),
                low(from_states),
            ),
            LifecycleEvent::Error { .. } => (K_ERROR, 0, 0),
            LifecycleEvent::Finalise {
                class,
                instance,
                accepted,
            } => (
                K_FINALISE | (u64::from(*class) << 8),
                u64::from(*instance) | (u64::from(*accepted) << 32),
                0,
            ),
            LifecycleEvent::Overflow { class } => (K_OVERFLOW | (u64::from(*class) << 8), 0, 0),
            LifecycleEvent::Evicted { class, instance } => (
                K_EVICTED | (u64::from(*class) << 8),
                u64::from(*instance),
                0,
            ),
            LifecycleEvent::Shed { class } => (K_SHED | (u64::from(*class) << 8), 0, 0),
        }
    }

    fn unpack(thread: u64, w: [u64; 4]) -> RecordedEvent {
        let kind = match w[0] & 0xff {
            K_NEW => "new",
            K_CLONE => "clone",
            K_UPDATE => "update",
            K_ERROR => "error",
            K_FINALISE => "finalise",
            K_EVICTED => "evicted",
            K_SHED => "shed",
            _ => "overflow",
        };
        RecordedEvent {
            ts_ns: w[1],
            thread,
            kind,
            class: ((w[0] >> 8) & 0xffff_ffff) as u32,
            symbol: (w[0] >> 40) as u32,
            instance: (w[2] & 0xffff_ffff) as u32,
            aux: (w[2] >> 32) as u32,
            states: w[3],
        }
    }
}

static NEXT_RECORDER_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// This thread's rings, keyed by recorder id. Tiny: almost always
    /// one live recorder per thread.
    static TL_RINGS: RefCell<Vec<(u64, Arc<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
    /// Dense id for this thread in recorder output.
    static TL_TID: u64 =
        NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// The flight recorder. Attach to an engine with
/// [`crate::Tesla::add_handler`]; every lifecycle event is packed
/// into the calling thread's ring with no locks and no allocation
/// (after the thread's first event).
pub struct FlightRecorder {
    id: u64,
    capacity: usize,
    epoch: Instant,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new(DEFAULT_CAPACITY)
    }
}

impl FlightRecorder {
    /// New recorder; each thread gets its own ring of `capacity`
    /// events (rounded up to a power of two, minimum 8).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            id: NEXT_RECORDER_ID.fetch_add(1, Ordering::Relaxed),
            capacity,
            epoch: Instant::now(),
            rings: Mutex::new(Vec::new()),
        }
    }

    /// Per-thread ring capacity (rounded).
    pub fn capacity(&self) -> usize {
        self.capacity.next_power_of_two().max(8)
    }

    fn ring(&self) -> Arc<ThreadRing> {
        TL_RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            if let Some((_, r)) = rings.iter().find(|(id, _)| *id == self.id) {
                return r.clone();
            }
            // First event on this thread: allocate + register (the
            // only locked path, once per thread per recorder).
            let tid = TL_TID.with(|t| *t);
            let ring = Arc::new(ThreadRing::new(tid, self.capacity));
            self.rings.lock().push(ring.clone());
            // Drop cache entries whose recorder is gone (our Arc is
            // the only one left).
            rings.retain(|(_, r)| Arc::strong_count(r) > 1);
            rings.push((self.id, ring.clone()));
            ring
        })
    }

    /// Threads that have recorded at least one event.
    pub fn thread_count(&self) -> usize {
        self.rings.lock().len()
    }

    /// Total events ever recorded (including overwritten ones).
    pub fn total_recorded(&self) -> u64 {
        self.rings
            .lock()
            .iter()
            .map(|r| r.head.load(Ordering::Acquire))
            .sum()
    }

    /// Events lost to overwrite-oldest across all rings.
    pub fn overwritten(&self) -> u64 {
        let cap = self.capacity() as u64;
        self.rings
            .lock()
            .iter()
            .map(|r| r.head.load(Ordering::Acquire).saturating_sub(cap))
            .sum()
    }

    /// Merge every thread's ring into one timestamp-sorted window of
    /// the most recent events. Safe to call while writers are live;
    /// slots being overwritten mid-read are skipped, not torn.
    pub fn snapshot(&self) -> Vec<RecordedEvent> {
        let rings: Vec<Arc<ThreadRing>> = self.rings.lock().clone();
        let mut out = Vec::new();
        for ring in rings {
            ring.read(&mut out);
        }
        out.sort_by_key(|e| e.ts_ns);
        out
    }
}

impl EventHandler for FlightRecorder {
    fn on_event(&self, ev: &LifecycleEvent) {
        let (w0, w2, w3) = RecordedEvent::pack(ev);
        TL_RINGS.with(|cell| {
            // Fast path: the ring is already cached for this thread.
            // Push under the shared borrow — no lock and no Arc
            // refcount traffic per event.
            {
                let rings = cell.borrow();
                if let Some((_, r)) = rings.iter().find(|(id, _)| *id == self.id) {
                    let ts = r.stamp(&self.epoch);
                    r.push([w0, ts, w2, w3]);
                    return;
                }
            }
            // Cold path, once per thread: allocate and register.
            let r = self.ring();
            let ts = r.stamp(&self.epoch);
            r.push([w0, ts, w2, w3]);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(class: u32, instance: u32) -> LifecycleEvent {
        LifecycleEvent::New { class, instance }
    }

    #[test]
    fn records_and_decodes_events() {
        let r = FlightRecorder::new(64);
        r.on_event(&ev(3, 9));
        r.on_event(&LifecycleEvent::Finalise {
            class: 3,
            instance: 9,
            accepted: true,
        });
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].kind, "new");
        assert_eq!(snap[0].class, 3);
        assert_eq!(snap[0].instance, 9);
        assert_eq!(snap[1].kind, "finalise");
        assert_eq!(snap[1].aux, 1);
        assert!(snap[0].ts_ns <= snap[1].ts_ns);
        assert_eq!(r.total_recorded(), 2);
        assert_eq!(r.overwritten(), 0);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let r = FlightRecorder::new(8);
        for i in 0..20 {
            r.on_event(&ev(0, i));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 8);
        // The window is the *latest* 8 events.
        assert_eq!(snap.first().unwrap().instance, 12);
        assert_eq!(snap.last().unwrap().instance, 19);
        assert_eq!(r.total_recorded(), 20);
        assert_eq!(r.overwritten(), 12);
    }

    #[test]
    fn each_thread_gets_its_own_ring() {
        let r = Arc::new(FlightRecorder::new(64));
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = r.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10 {
                    r.on_event(&ev(t, i));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.thread_count(), 4);
        assert_eq!(r.total_recorded(), 40);
        assert_eq!(r.snapshot().len(), 40);
    }
}
