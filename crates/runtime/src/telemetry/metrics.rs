//! The metrics registry: atomic counters and latency histograms.
//!
//! Everything on the recording path is a relaxed atomic operation on
//! preallocated storage — no locks, no allocation — so attaching the
//! registry preserves the engine's contention-free dispatch
//! invariant. Aggregation (snapshots, export) walks the same atomics
//! read-only and can run concurrently with recording.

use crate::event::LifecycleEvent;
use crate::handlers::EventHandler;
use crate::telemetry::weights::{ClassWeights, TransitionWeights, MAX_DENSE_CLASSES};
use serde::Serialize;
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use tesla_automata::Automaton;

/// Stripes for the hottest global counters (hook calls). Each thread
/// hashes onto one stripe, so concurrent dispatch threads increment
/// disjoint cache lines; reads sum the stripes, so totals stay exact.
const COUNTER_STRIPES: usize = 16;

/// Hook latencies are *sampled*: each thread times one in every
/// `LATENCY_SAMPLE_PERIOD` of its hook invocations (starting with its
/// first). Call counts remain exact; only the histogram is a sample.
/// Two `Instant::now()` reads per hook would otherwise dominate the
/// hook's own cost on the OLTP macrobenchmark.
///
/// This is the *default* period; the effective per-kind period lives
/// in [`MetricsRegistry::sample_period`] so the overhead governor can
/// widen it at runtime.
pub const LATENCY_SAMPLE_PERIOD: u32 = 64;

/// Cap on what one observation may add to a histogram's `sum_ns`:
/// the floor of the top bucket (2³⁸ ns ≈ 4.6 min). A wild duration —
/// an injected clock skew, a suspended thread — still lands in the
/// top bucket, but can no longer poison the sum (and through it any
/// mean-based overhead estimate) by orders of magnitude.
const SUM_SATURATE_NS: u64 = 1 << (LATENCY_BUCKETS - 2);

static NEXT_STRIPE: AtomicU64 = AtomicU64::new(0);

/// Per-thread metrics state, fused into one `thread_local` so the hot
/// path pays a single TLS lookup.
struct TlMetrics {
    /// This thread's counter stripe, assigned round-robin on first use.
    stripe: usize,
    /// Per-hook-kind countdowns to this thread's next sampled timing.
    /// Starting at zero means the first invocation of each kind on
    /// each thread is always sampled, so a touched hook's histogram
    /// is never empty.
    sample: [Cell<u32>; N_HOOKS],
}

thread_local! {
    static TL_METRICS: TlMetrics = TlMetrics {
        stripe: NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) as usize % COUNTER_STRIPES,
        sample: [Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0), Cell::new(0)],
    };
}

#[inline]
fn thread_stripe() -> usize {
    TL_METRICS.with(|tl| tl.stripe)
}

/// One thread-stripe of per-hook call counters, padded to a cache
/// line so stripes never share one.
#[repr(align(64))]
struct HookCallStripe {
    calls: [AtomicU64; N_HOOKS],
}

/// The instrumentation hooks, as dense indices for counter arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HookKind {
    /// [`crate::Tesla::fn_entry`].
    FnEntry = 0,
    /// [`crate::Tesla::fn_exit`].
    FnExit = 1,
    /// [`crate::Tesla::field_store`].
    FieldStore = 2,
    /// [`crate::Tesla::msg_entry`].
    MsgEntry = 3,
    /// [`crate::Tesla::msg_exit`].
    MsgExit = 4,
    /// [`crate::Tesla::assertion_site`].
    AssertionSite = 5,
}

/// Number of hook kinds (array sizes).
pub const N_HOOKS: usize = 6;

impl HookKind {
    /// All kinds, in index order.
    pub const ALL: [HookKind; N_HOOKS] = [
        HookKind::FnEntry,
        HookKind::FnExit,
        HookKind::FieldStore,
        HookKind::MsgEntry,
        HookKind::MsgExit,
        HookKind::AssertionSite,
    ];

    /// Stable label (Prometheus `hook` label value).
    pub fn label(self) -> &'static str {
        match self {
            HookKind::FnEntry => "fn_entry",
            HookKind::FnExit => "fn_exit",
            HookKind::FieldStore => "field_store",
            HookKind::MsgEntry => "msg_entry",
            HookKind::MsgExit => "msg_exit",
            HookKind::AssertionSite => "assertion_site",
        }
    }
}

/// Log₂ latency buckets: bucket `i` holds durations below `2^i` ns
/// (and at least `2^(i-1)`), the last bucket absorbing everything
/// longer. 40 buckets reach ~18 minutes — far beyond any hook.
pub const LATENCY_BUCKETS: usize = 40;

/// A log₂-bucketed nanosecond histogram in a fixed-size atomic array.
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// New, zeroed histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Record one duration (relaxed atomics only). The bucket index
    /// clamps into the top bucket and the sum contribution saturates
    /// at [`SUM_SATURATE_NS`], so a wild observation cannot poison
    /// the aggregate.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let idx = (64 - ns.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns
            .fetch_add(ns.min(SUM_SATURATE_NS), Ordering::Relaxed);
    }

    /// Point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// Serializable histogram copy. `buckets[i]` counts durations in
/// `[2^(i-1), 2^i)` ns (bucket 0: sub-nanosecond).
#[derive(Debug, Clone, Serialize)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts.
    pub buckets: Vec<u64>,
    /// Total recorded durations.
    pub count: u64,
    /// Sum of recorded nanoseconds (each observation's contribution
    /// saturated at the top bucket's floor).
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Lower bound of bucket `i` in ns (`0` for bucket 0).
    pub fn bucket_floor_ns(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Midpoint of bucket `i` in ns — the representative value used
    /// for derived statistics (quantiles, means) over the log₂
    /// buckets: 0, 1, then `3·2^(i-2)`.
    pub fn bucket_midpoint_ns(i: usize) -> u64 {
        match i {
            0 => 0,
            1 => 1,
            _ => 3u64 << (i - 2),
        }
    }

    /// Derived quantile estimate: the midpoint of the bucket holding
    /// the `q`-quantile observation (`q` in `0.0..=1.0`). A coarse
    /// estimate — log₂ buckets bound it within 2× — but robust: a few
    /// wild outliers move the top buckets, not the median.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return HistogramSnapshot::bucket_midpoint_ns(i);
            }
        }
        HistogramSnapshot::bucket_midpoint_ns(self.buckets.len().saturating_sub(1))
    }

    /// Median latency estimate.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile latency estimate.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile latency estimate.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }
}

/// Per-class lifecycle counters and the live-instance gauge.
///
/// There is deliberately no `updates` counter here: every `Update`
/// event lands exactly one transition count in the weight store
/// (dense or spilled), so the update total is derived from there at
/// read time instead of paying a third atomic RMW per event on the
/// hot path.
pub struct ClassMetrics {
    name: OnceLock<String>,
    news: AtomicU64,
    clones: AtomicU64,
    accepted: AtomicU64,
    rejected: AtomicU64,
    overflows: AtomicU64,
    evictions: AtomicU64,
    shed: AtomicU64,
    live: AtomicI64,
    high_watermark: AtomicU64,
}

impl ClassMetrics {
    fn new() -> ClassMetrics {
        ClassMetrics {
            name: OnceLock::new(),
            news: AtomicU64::new(0),
            clones: AtomicU64::new(0),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            overflows: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            live: AtomicI64::new(0),
            high_watermark: AtomicU64::new(0),
        }
    }

    /// The class's assertion name (or a placeholder when events were
    /// observed without a registration).
    pub fn name(&self) -> &str {
        self.name
            .get()
            .map(String::as_str)
            .unwrap_or("unregistered")
    }

    /// Instance initialisations.
    pub fn news(&self) -> u64 {
        self.news.load(Ordering::Relaxed)
    }

    /// Instance clones (variable specialisations).
    pub fn clones(&self) -> u64 {
        self.clones.load(Ordering::Relaxed)
    }

    /// Accepted finalisations.
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Rejected (violating) finalisations.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Preallocation overflows.
    pub fn overflows(&self) -> u64 {
        self.overflows.load(Ordering::Relaxed)
    }

    /// Instances evicted under the [`crate::Config::max_instances`]
    /// quota (LRU policy).
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Clones shed by degraded mode after the quota tripped.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Currently live instances (approximate across threads). The
    /// internal balance is signed — stale-instance clears can emit
    /// finalises for instances whose creation predates the gauge — and
    /// clamped to zero here.
    pub fn live(&self) -> u64 {
        self.live.load(Ordering::Relaxed).max(0) as u64
    }

    /// Most instances ever live at once.
    pub fn high_watermark(&self) -> u64 {
        self.high_watermark.load(Ordering::Relaxed)
    }

    #[inline]
    fn inc_live(&self) {
        let now = self.live.fetch_add(1, Ordering::Relaxed) + 1;
        // Guarded max: in steady state the gauge oscillates below the
        // watermark and the plain load skips the second RMW. A stale
        // load can only under-read, in which case we fall through to
        // the (always correct) fetch_max.
        if now > 0 && now as u64 > self.high_watermark.load(Ordering::Relaxed) {
            self.high_watermark.fetch_max(now as u64, Ordering::Relaxed);
        }
    }

    #[inline]
    fn dec_live(&self) {
        // May transiently go negative (stale instances cleared across
        // bound epochs without matching creations); the accessor
        // clamps.
        self.live.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Per-class serializable counters.
#[derive(Debug, Clone, Serialize)]
pub struct ClassSnapshot {
    /// Class id.
    pub class: u32,
    /// Assertion name.
    pub name: String,
    /// Instance initialisations.
    pub news: u64,
    /// Instance clones.
    pub clones: u64,
    /// State updates.
    pub updates: u64,
    /// Accepted finalisations.
    pub accepted: u64,
    /// Rejected finalisations.
    pub rejected: u64,
    /// Preallocation overflows.
    pub overflows: u64,
    /// Quota evictions (LRU policy).
    pub evictions: u64,
    /// Clones shed by degraded mode.
    pub shed: u64,
    /// Currently live instances.
    pub live: u64,
    /// Live-instance high-watermark.
    pub high_watermark: u64,
    /// Non-zero transition weights.
    pub transitions: Vec<TransitionCount>,
}

/// One weighted transition edge: DFA state × symbol → count.
#[derive(Debug, Clone, Serialize)]
pub struct TransitionCount {
    /// Source DFA state (as rendered by `automata::dot`).
    pub from_state: u32,
    /// Symbol id.
    pub symbol: u32,
    /// Times the edge fired.
    pub count: u64,
}

/// Per-hook serializable counters.
#[derive(Debug, Clone, Serialize)]
pub struct HookSnapshot {
    /// Hook label (`fn_entry`, …).
    pub hook: String,
    /// Calls into the hook (exact).
    pub calls: u64,
    /// Latency sampling period in force when the snapshot was taken
    /// (one timed invocation per `sample_period` per thread; the
    /// overhead governor may have widened it from
    /// [`LATENCY_SAMPLE_PERIOD`]).
    pub sample_period: u32,
    /// Latency distribution (sampled, so `latency.count <= calls`).
    pub latency: HistogramSnapshot,
}

/// A point-in-time copy of every metric, serializable as the JSON
/// report and convertible to Prometheus text via
/// [`crate::telemetry::export::prometheus`].
#[derive(Debug, Clone, Serialize)]
pub struct MetricsSnapshot {
    /// Lifecycle events dispatched to handlers.
    pub events_total: u64,
    /// Violations observed (lifecycle `Error` events).
    pub violations: u64,
    /// Instrumentation sites elided by the static model checker.
    pub sites_elided: u64,
    /// Handler panics contained by [`crate::Dispatch`] (injected and
    /// organic alike).
    pub handler_panics: u64,
    /// Injected faults the engine reported absorbing.
    pub faults_absorbed: u64,
    /// Global-store shard locks found poisoned and recovered.
    pub lock_poison_recoveries: u64,
    /// Per-hook call counts and latencies.
    pub hooks: Vec<HookSnapshot>,
    /// Per-class lifecycle counters and transition weights.
    pub classes: Vec<ClassSnapshot>,
}

/// The registry: one allocation-free, lock-free sink for everything
/// the engine can report. Attach it to an engine as an
/// [`EventHandler`] (done automatically under
/// [`crate::Config::telemetry`]) and it aggregates; snapshot it any
/// time, including while dispatch threads are hammering it.
pub struct MetricsRegistry {
    hook_calls: Box<[HookCallStripe]>,
    hook_latency: [LatencyHistogram; N_HOOKS],
    /// Effective per-kind latency sampling periods. Default
    /// [`LATENCY_SAMPLE_PERIOD`]; the overhead governor widens them
    /// to trade histogram resolution for timer cost.
    sample_period: [AtomicU32; N_HOOKS],
    classes: Box<[OnceLock<Arc<ClassMetrics>>]>,
    weights: TransitionWeights,
    violations: AtomicU64,
    sites_elided: AtomicU64,
    handler_panics: AtomicU64,
    faults_absorbed: AtomicU64,
    lock_poison_recoveries: AtomicU64,
}

impl Default for MetricsRegistry {
    fn default() -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

impl MetricsRegistry {
    /// New, zeroed registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry {
            hook_calls: (0..COUNTER_STRIPES)
                .map(|_| HookCallStripe {
                    calls: std::array::from_fn(|_| AtomicU64::new(0)),
                })
                .collect(),
            hook_latency: std::array::from_fn(|_| LatencyHistogram::new()),
            sample_period: std::array::from_fn(|_| AtomicU32::new(LATENCY_SAMPLE_PERIOD)),
            classes: (0..MAX_DENSE_CLASSES).map(|_| OnceLock::new()).collect(),
            weights: TransitionWeights::new(),
            violations: AtomicU64::new(0),
            sites_elided: AtomicU64::new(0),
            handler_panics: AtomicU64::new(0),
            faults_absorbed: AtomicU64::new(0),
            lock_poison_recoveries: AtomicU64::new(0),
        }
    }

    /// Record one hook invocation and its duration (always
    /// histogrammed — direct calls bypass the timer's sampling).
    #[inline]
    pub fn record_hook(&self, kind: HookKind, elapsed: Duration) {
        self.hook_calls[thread_stripe()].calls[kind as usize].fetch_add(1, Ordering::Relaxed);
        self.hook_latency[kind as usize].record_ns(elapsed.as_nanos() as u64);
    }

    /// Count a hook invocation and start timing it if this thread's
    /// sampling countdown fires; the guard records on drop, so early
    /// returns are still measured. Calls are always counted exactly;
    /// latency is sampled one-in-[`MetricsRegistry::sample_period`]
    /// per thread (the period is re-read at each countdown reset, so
    /// governor adjustments take effect within one period).
    ///
    /// Unsampled invocations return `None` and pay exactly one
    /// striped-counter RMW plus one `Cell` decrement — no clock read,
    /// no guard, nothing to drop.
    #[inline]
    pub fn timer(&self, kind: HookKind) -> Option<HookTimer<'_>> {
        TL_METRICS.with(|tl| {
            self.hook_calls[tl.stripe].calls[kind as usize].fetch_add(1, Ordering::Relaxed);
            self.sample_countdown(tl, kind)
        })
    }

    /// [`MetricsRegistry::timer`] without the call count: the batched
    /// drain counts calls in bulk ([`MetricsRegistry::add_hook_calls`],
    /// one RMW per batch per hook kind) and only consults the sampling
    /// countdown per event.
    #[inline]
    pub fn sample_timer(&self, kind: HookKind) -> Option<HookTimer<'_>> {
        TL_METRICS.with(|tl| self.sample_countdown(tl, kind))
    }

    /// Batch-drain latency sampling: advance this thread's sampling
    /// countdown for `kind` by `count` events in **one** TLS access
    /// and record `per_event_ns` for every sample the countdown
    /// would have fired on the per-event path. The batch dispatcher
    /// times the whole batch with two clock reads and divides, so
    /// the histograms — and the overhead governor's cost estimator
    /// reading them — see batch-amortised per-event latencies.
    pub fn record_batch_samples(&self, kind: HookKind, count: u64, per_event_ns: u64) {
        if count == 0 {
            return;
        }
        TL_METRICS.with(|tl| {
            let cell = &tl.sample[kind as usize];
            let v = u64::from(cell.get());
            if count <= v {
                cell.set((v - count) as u32);
                return;
            }
            let period =
                u64::from(self.sample_period[kind as usize].load(Ordering::Relaxed).max(1));
            // The countdown fires once when it crosses zero, then
            // once per period for the remaining events.
            let after = count - v - 1;
            let fires = 1 + after / period;
            cell.set((period - 1 - (after % period)) as u32);
            let hist = &self.hook_latency[kind as usize];
            for _ in 0..fires {
                hist.record_ns(per_event_ns);
            }
        });
    }

    #[inline]
    fn sample_countdown(&self, tl: &TlMetrics, kind: HookKind) -> Option<HookTimer<'_>> {
        let cell = &tl.sample[kind as usize];
        let v = cell.get();
        if v == 0 {
            let period = self.sample_period[kind as usize].load(Ordering::Relaxed);
            cell.set(period.max(1) - 1);
            Some(HookTimer {
                registry: self,
                kind,
                t0: Instant::now(),
            })
        } else {
            cell.set(v - 1);
            None
        }
    }

    /// Count `n` invocations of `kind` in one striped RMW — the
    /// batch-drain amortisation of the per-event count in
    /// [`MetricsRegistry::timer`].
    #[inline]
    pub fn add_hook_calls(&self, kind: HookKind, n: u64) {
        if n == 0 {
            return;
        }
        TL_METRICS.with(|tl| {
            self.hook_calls[tl.stripe].calls[kind as usize].fetch_add(n, Ordering::Relaxed);
        });
    }

    /// The latency sampling period in force for `kind`.
    pub fn sample_period(&self, kind: HookKind) -> u32 {
        self.sample_period[kind as usize].load(Ordering::Relaxed)
    }

    /// Set the latency sampling period for `kind` (clamped to ≥ 1).
    /// Threads pick the new period up at their next countdown reset.
    pub fn set_sample_period(&self, kind: HookKind, period: u32) {
        self.sample_period[kind as usize].store(period.max(1), Ordering::Relaxed);
    }

    /// Calls into `kind` so far (exact: sums the thread stripes).
    pub fn hook_calls(&self, kind: HookKind) -> u64 {
        self.hook_calls
            .iter()
            .map(|s| s.calls[kind as usize].load(Ordering::Relaxed))
            .sum()
    }

    /// Latency distribution for `kind`.
    pub fn hook_latency(&self, kind: HookKind) -> HistogramSnapshot {
        self.hook_latency[kind as usize].snapshot()
    }

    /// Counters for `class`, if any event or registration touched it.
    pub fn class(&self, class: u32) -> Option<Arc<ClassMetrics>> {
        self.classes.get(class as usize)?.get().cloned()
    }

    /// Hot-path borrow of a class's counters: initialises the slot on
    /// first touch, and never clones the `Arc` (two ref-count RMWs
    /// per event would be pure overhead on the dispatch path).
    #[inline]
    fn class_ref(&self, class: u32) -> Option<&ClassMetrics> {
        self.classes
            .get(class as usize)
            .map(|slot| &**slot.get_or_init(|| Arc::new(ClassMetrics::new())))
    }

    /// The transition-weight store (fig. 9 edge weights).
    pub fn weights(&self) -> &TransitionWeights {
        &self.weights
    }

    /// Dense weight table for `class`, usable directly as the
    /// [`tesla_automata::dot::WeightSource`] when rendering.
    pub fn weight_source(&self, class: u32) -> Option<Arc<ClassWeights>> {
        self.weights.class(class)
    }

    /// The transition-coverage map implied by the weight tables: every
    /// (state, symbol) cell with a nonzero firing count, keyed by
    /// class *name* so maps from separate engine runs merge. This is
    /// the fuzzer's guidance signal (`tesla scenario fuzz`) — coverage
    /// falls out of the fig. 9 weight counters for free.
    pub fn coverage_map(&self) -> tesla_automata::CoverageMap {
        let mut map = tesla_automata::CoverageMap::new();
        for class in 0..self.classes.len() as u32 {
            let Some(weights) = self.weights.class(class) else {
                continue;
            };
            let Some(metrics) = self.class(class) else {
                continue;
            };
            let cov = map.class_mut(
                metrics.name(),
                weights.n_states() as u32,
                weights.n_symbols() as u32,
            );
            for (row, sym, _count) in weights.nonzero() {
                cov.mark(row, sym);
            }
        }
        map
    }

    /// Lifecycle events dispatched so far. Derived, not counted: the
    /// hot path already pays one counter per event (a lifecycle
    /// counter, a transition-weight cell, or the violation counter),
    /// so the total is the sum of those — exact at quiescence and
    /// monotone while dispatch threads are running.
    pub fn events_total(&self) -> u64 {
        let mut total = self.violations();
        for slot in self.classes.iter() {
            let Some(c) = slot.get() else { continue };
            total += c.news()
                + c.clones()
                + c.accepted()
                + c.rejected()
                + c.overflows()
                + c.evictions()
                + c.shed();
        }
        total + self.weights.grand_total()
    }

    /// Violations observed so far.
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Count a handler panic contained by [`crate::Dispatch`].
    #[inline]
    pub fn note_handler_panic(&self) {
        self.handler_panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Handler panics contained so far.
    pub fn handler_panics(&self) -> u64 {
        self.handler_panics.load(Ordering::Relaxed)
    }

    /// Count an injected fault the engine absorbed. The chaos harness
    /// asserts this equals the plan's total injected-fault count.
    #[inline]
    pub fn note_fault_absorbed(&self) {
        self.faults_absorbed.fetch_add(1, Ordering::Relaxed);
    }

    /// Injected faults absorbed so far.
    pub fn faults_absorbed(&self) -> u64 {
        self.faults_absorbed.load(Ordering::Relaxed)
    }

    /// Count a poisoned shard lock that was recovered.
    #[inline]
    pub fn note_lock_poison_recovery(&self) {
        self.lock_poison_recoveries.fetch_add(1, Ordering::Relaxed);
    }

    /// Poisoned shard locks recovered so far.
    pub fn lock_poison_recoveries(&self) -> u64 {
        self.lock_poison_recoveries.load(Ordering::Relaxed)
    }

    /// Record an injected clock-skew sample: a phantom latency lands
    /// in `kind`'s histogram (the call count is untouched — skew warps
    /// the clock, not the workload).
    #[inline]
    pub fn note_clock_skew(&self, kind: HookKind, ns: u64) {
        self.hook_latency[kind as usize].record_ns(ns);
    }

    /// Record the static checker's elision count (idempotent set).
    pub fn set_sites_elided(&self, n: u64) {
        self.sites_elided.store(n, Ordering::Relaxed);
    }

    /// Instrumentation sites the static model checker proved safe and
    /// removed (plumbed from `BuildStats`).
    pub fn sites_elided(&self) -> u64 {
        self.sites_elided.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of everything.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let hooks = HookKind::ALL
            .iter()
            .map(|&k| HookSnapshot {
                hook: k.label().to_string(),
                calls: self.hook_calls(k),
                sample_period: self.sample_period(k),
                latency: self.hook_latency(k),
            })
            .collect();
        let mut classes = Vec::new();
        for (id, slot) in self.classes.iter().enumerate() {
            let Some(c) = slot.get() else { continue };
            let transitions = self
                .weights
                .class(id as u32)
                .map(|cw| {
                    cw.nonzero()
                        .into_iter()
                        .map(|(from_state, symbol, count)| TransitionCount {
                            from_state,
                            symbol,
                            count,
                        })
                        .collect()
                })
                .unwrap_or_default();
            classes.push(ClassSnapshot {
                class: id as u32,
                name: c.name().to_string(),
                news: c.news(),
                clones: c.clones(),
                updates: self.weights.class_total(id as u32),
                accepted: c.accepted(),
                rejected: c.rejected(),
                overflows: c.overflows(),
                evictions: c.evictions(),
                shed: c.shed(),
                live: c.live(),
                high_watermark: c.high_watermark(),
                transitions,
            });
        }
        MetricsSnapshot {
            events_total: self.events_total(),
            violations: self.violations(),
            sites_elided: self.sites_elided(),
            handler_panics: self.handler_panics(),
            faults_absorbed: self.faults_absorbed(),
            lock_poison_recoveries: self.lock_poison_recoveries(),
            hooks,
            classes,
        }
    }
}

impl EventHandler for MetricsRegistry {
    fn on_event(&self, ev: &LifecycleEvent) {
        match ev {
            LifecycleEvent::New { class, .. } => {
                if let Some(c) = self.class_ref(*class) {
                    c.news.fetch_add(1, Ordering::Relaxed);
                    c.inc_live();
                }
            }
            LifecycleEvent::Clone { class, .. } => {
                if let Some(c) = self.class_ref(*class) {
                    c.clones.fetch_add(1, Ordering::Relaxed);
                    c.inc_live();
                }
            }
            LifecycleEvent::Update {
                class,
                sym,
                from_states,
                ..
            } => {
                // The weight cell is the update counter (see
                // [`ClassMetrics`]); touching the class slot keeps the
                // class visible to snapshots even before registration.
                let _ = self.class_ref(*class);
                self.weights.record(*class, from_states, *sym);
            }
            LifecycleEvent::Error { .. } => {
                self.violations.fetch_add(1, Ordering::Relaxed);
            }
            LifecycleEvent::Finalise {
                class, accepted, ..
            } => {
                if let Some(c) = self.class_ref(*class) {
                    if *accepted {
                        c.accepted.fetch_add(1, Ordering::Relaxed);
                    } else {
                        c.rejected.fetch_add(1, Ordering::Relaxed);
                    }
                    c.dec_live();
                }
            }
            LifecycleEvent::Overflow { class } => {
                if let Some(c) = self.class_ref(*class) {
                    c.overflows.fetch_add(1, Ordering::Relaxed);
                }
            }
            LifecycleEvent::Evicted { class, .. } => {
                if let Some(c) = self.class_ref(*class) {
                    c.evictions.fetch_add(1, Ordering::Relaxed);
                    c.dec_live();
                }
            }
            LifecycleEvent::Shed { class } => {
                if let Some(c) = self.class_ref(*class) {
                    c.shed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }

    fn on_register(&self, class: u32, automaton: &Automaton) {
        if let Some(c) = self.class_ref(class) {
            let _ = c.name.set(automaton.name.clone());
        }
        self.weights.register(class, automaton);
    }
}

/// Drop guard measuring one *sampled* hook invocation (see
/// [`MetricsRegistry::timer`]). Only sampled invocations get a guard
/// at all — unsampled hooks construct nothing and read no clock — so
/// the drop always histograms.
pub struct HookTimer<'a> {
    registry: &'a MetricsRegistry,
    kind: HookKind,
    t0: Instant,
}

impl Drop for HookTimer<'_> {
    fn drop(&mut self) {
        // Saturating, not wrapping: a clock that jumps (suspend,
        // injected skew) must land in the top bucket, never wrap
        // into a plausible-looking small value.
        let ns = u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.registry.hook_latency[self.kind as usize].record_ns(ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_automata::{compile, StateSet, SymbolId};
    use tesla_spec::{call, AssertionBuilder};

    #[test]
    fn histogram_buckets_are_log2() {
        let h = LatencyHistogram::new();
        h.record_ns(0); // bucket 0
        h.record_ns(1); // bucket 1
        h.record_ns(2); // bucket 2
        h.record_ns(3); // bucket 2
        h.record_ns(1 << 20); // bucket 21
        h.record_ns(u64::MAX); // clamped to the last bucket
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 2);
        assert_eq!(s.buckets[21], 1);
        assert_eq!(s.buckets[LATENCY_BUCKETS - 1], 1);
    }

    #[test]
    fn wild_durations_saturate_the_sum_and_leave_the_median_alone() {
        let h = LatencyHistogram::new();
        for _ in 0..100 {
            h.record_ns(512);
        }
        h.record_ns(u64::MAX); // a clock-skew phantom
        let s = h.snapshot();
        assert_eq!(s.count, 101);
        assert_eq!(s.buckets[LATENCY_BUCKETS - 1], 1);
        // The sum absorbed at most the top bucket's floor, not
        // u64::MAX (which would wrap every later observation away).
        assert!(s.sum_ns <= 100 * 512 + SUM_SATURATE_NS);
        assert_eq!(s.p50_ns(), HistogramSnapshot::bucket_midpoint_ns(10));
    }

    #[test]
    fn quantiles_walk_the_cumulative_buckets() {
        let h = LatencyHistogram::new();
        for _ in 0..50 {
            h.record_ns(2); // bucket 2
        }
        for _ in 0..45 {
            h.record_ns(1000); // bucket 10
        }
        for _ in 0..5 {
            h.record_ns(1 << 20); // bucket 21
        }
        let s = h.snapshot();
        assert_eq!(s.p50_ns(), HistogramSnapshot::bucket_midpoint_ns(2));
        assert_eq!(s.p95_ns(), HistogramSnapshot::bucket_midpoint_ns(10));
        assert_eq!(s.p99_ns(), HistogramSnapshot::bucket_midpoint_ns(21));
        let empty = HistogramSnapshot {
            buckets: vec![],
            count: 0,
            sum_ns: 0,
        };
        assert_eq!(empty.p50_ns(), 0);
    }

    #[test]
    fn sample_period_is_adjustable_per_kind() {
        let r = MetricsRegistry::new();
        assert_eq!(r.sample_period(HookKind::FnEntry), LATENCY_SAMPLE_PERIOD);
        r.set_sample_period(HookKind::FnEntry, 4096);
        assert_eq!(r.sample_period(HookKind::FnEntry), 4096);
        r.set_sample_period(HookKind::FnEntry, 0);
        assert_eq!(r.sample_period(HookKind::FnEntry), 1, "clamped to >= 1");
        assert_eq!(
            r.sample_period(HookKind::FnExit),
            LATENCY_SAMPLE_PERIOD,
            "other kinds untouched"
        );
        assert_eq!(r.snapshot().hooks[0].sample_period, 1);
    }

    #[test]
    fn registry_tracks_lifecycle_and_live_gauge() {
        let r = MetricsRegistry::new();
        let a = compile(
            &AssertionBuilder::within("req")
                .previously(call("check").arg_var("x").returns(0))
                .build()
                .unwrap(),
        )
        .unwrap();
        r.on_register(0, &a);
        r.on_event(&LifecycleEvent::New {
            class: 0,
            instance: 0,
        });
        r.on_event(&LifecycleEvent::Clone {
            class: 0,
            from_instance: 0,
            to_instance: 1,
            bound: vec![],
            states: a.initial_states(),
        });
        r.on_event(&LifecycleEvent::Update {
            class: 0,
            instance: 1,
            sym: a.site_sym,
            from_states: a.initial_states(),
            to_states: StateSet::singleton(1),
        });
        r.on_event(&LifecycleEvent::Finalise {
            class: 0,
            instance: 1,
            accepted: true,
        });
        let c = r.class(0).unwrap();
        assert_eq!(c.name(), a.name);
        assert_eq!(c.news(), 1);
        assert_eq!(c.clones(), 1);
        // Updates are derived from the weight store, not counted.
        assert_eq!(r.weights().class_total(0), 1);
        assert_eq!(c.accepted(), 1);
        assert_eq!(c.live(), 1); // 2 created, 1 finalised
        assert_eq!(c.high_watermark(), 2);
        assert_eq!(r.events_total(), 4);
        assert_eq!(r.weights().symbol_count(0, a.site_sym), 1);
        // Extra finalises drive the balance negative; the gauge clamps.
        r.on_event(&LifecycleEvent::Finalise {
            class: 0,
            instance: 0,
            accepted: false,
        });
        r.on_event(&LifecycleEvent::Finalise {
            class: 0,
            instance: 0,
            accepted: false,
        });
        assert_eq!(c.live(), 0);
        assert_eq!(c.rejected(), 2);
    }

    #[test]
    fn snapshot_is_serializable_and_complete() {
        let r = MetricsRegistry::new();
        r.record_hook(HookKind::FnEntry, Duration::from_nanos(100));
        r.set_sites_elided(3);
        r.on_event(&LifecycleEvent::Update {
            class: 7,
            instance: 0,
            sym: SymbolId(1),
            from_states: StateSet::singleton(0),
            to_states: StateSet::singleton(1),
        });
        let s = r.snapshot();
        assert_eq!(s.sites_elided, 3);
        assert_eq!(s.events_total, 1);
        assert_eq!(s.hooks.len(), N_HOOKS);
        assert_eq!(s.hooks[0].calls, 1);
        assert_eq!(s.classes.len(), 1);
        assert_eq!(s.classes[0].class, 7);
        assert_eq!(s.classes[0].name, "unregistered");
    }
}
