//! Runtime telemetry (§4.4.2's introspection features).
//!
//! The paper makes introspection a first-class libtesla feature: a
//! pluggable event-notification framework, in-kernel aggregation via
//! DTrace, and transition-weighted automaton graphs (fig. 9) that let
//! a programmer "visually inspect the portions of the state graph
//! that are executed in practice". This module is the reproduction's
//! DTrace substitute, built so that *observing* the runtime never
//! perturbs the contention-free dispatch path it observes:
//!
//! * [`weights`] — dense per-class transition-weight tables over
//!   (DFA state, symbol) indices. One atomic add per transition on
//!   the hot path; a striped spillover map catches the rare keys that
//!   have no dense slot (unregistered classes, merged state sets).
//! * [`metrics`] — the [`MetricsRegistry`]: per-class lifecycle
//!   counters, live-instance gauges with high-watermarks, hook-call
//!   counters and log₂-bucketed hook-latency histograms in fixed-size
//!   atomic arrays. Zero locks anywhere on the recording path.
//! * [`recorder`] — the [`FlightRecorder`]: a bounded, per-thread,
//!   overwrite-oldest ring buffer of lifecycle events using a seqlock
//!   protocol over plain `AtomicU64` words (no `unsafe`), snapshotted
//!   on demand.
//! * [`export`] — Prometheus text exposition, JSON snapshots, JSONL
//!   event dumps and chrome://tracing trace-event output.
//! * [`analysis`] — the layer that *consumes* all of the above
//!   online: healthy-run baselines, the TESLA-A00x anomaly scorer,
//!   and the adaptive overhead governor.

pub mod analysis;
pub mod export;
pub mod metrics;
pub mod recorder;
pub mod weights;

pub use analysis::{
    Anomaly, AnomalyCode, AnomalyReport, Baseline, BaselineError, ClassScore, Governor,
    GovernorConfig, GovernorDecision, ScorerConfig, Welford,
};
pub use metrics::{
    ClassMetrics, ClassSnapshot, HistogramSnapshot, HookKind, HookSnapshot, HookTimer,
    MetricsRegistry, MetricsSnapshot, TransitionCount,
};
pub use recorder::{FlightRecorder, RecordedEvent};
pub use weights::{ClassWeights, TransitionWeights};
