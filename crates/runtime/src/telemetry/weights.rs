//! Dense, lock-free transition-weight tables.
//!
//! Fig. 9's weighted graphs need a `(class, source states, symbol) →
//! count` aggregate. The first implementation kept it in one global
//! `Mutex<HashMap>`, which reintroduced a shared lock on every state
//! update and undid the contention-free dispatch work. This version
//! exploits a structural fact: libtesla instances carry exact NFA
//! state sets, and every state set reachable by plain stepping is one
//! of the determinised automaton's states. So at class-registration
//! time we build an immutable `StateSet → row` index from
//! [`Dfa::from_automaton`] (whose breadth-first state order is the
//! same one `dot::render` uses) and a dense `rows × symbols` matrix
//! of `AtomicU64` cells. Recording a transition is then one read-only
//! hash lookup plus one relaxed `fetch_add` — no locks, and the row
//! index doubles as the DFA state id the DOT renderer asks for.
//!
//! Keys with no dense slot still happen: events observed before any
//! registration (standalone handler use) and state sets produced by
//! *merging* duplicate-binding clones (`union_with` in the store can
//! build a set that is not a reachable DFA state). Those fall through
//! to a small striped map — cold by construction, and exact.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use tesla_automata::dot::WeightSource;
use tesla_automata::{Automaton, Dfa, StateSet, SymbolId};

/// A multiply-fold hasher for the hot `StateSet → row` lookup (and
/// spill striping). The std default hasher is SipHash, whose keyed
/// DoS resistance is irrelevant for trusted in-process keys and whose
/// cost dominates the whole record path for 32-byte `StateSet` keys;
/// folding each word through a rotate-xor-multiply is ~10× cheaper
/// and mixes well for bitset-shaped data.
#[derive(Default)]
struct FoldHasher(u64);

/// `2^64 / φ` — the usual Fibonacci-hashing multiplier.
const FOLD_K: u64 = 0x9e37_79b9_7f4a_7c15;

impl Hasher for FoldHasher {
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).rotate_left(25).wrapping_mul(FOLD_K);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(w));
        }
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type FoldBuild = BuildHasherDefault<FoldHasher>;

/// Classes with ids below this get dense tables; beyond it (never in
/// practice — registration is per-assertion) counts spill to the
/// striped map and stay exact, just slower.
pub const MAX_DENSE_CLASSES: usize = 1024;

const SPILL_STRIPES: usize = 16;

/// Below this many DFA states the row lookup is a linear scan of the
/// BFS-ordered state list — for a handful of 32-byte keys that beats
/// any hash-and-probe.
const LINEAR_MAX: usize = 8;

/// One class's dense transition-count matrix, in the determinised
/// automaton's breadth-first state order (the same order
/// `automata::dot` renders, so row ids are DOT state ids).
pub struct ClassWeights {
    n_syms: usize,
    /// DFA states in BFS order; a state's position is its dense row.
    states: Box<[StateSet]>,
    /// Exact state set → dense row, used once the automaton outgrows
    /// [`LINEAR_MAX`]. Immutable after construction, so concurrent
    /// readers need no synchronisation.
    state_index: HashMap<StateSet, u32, FoldBuild>,
    cells: Box<[AtomicU64]>,
}

impl ClassWeights {
    /// Build the (zeroed) matrix for one compiled automaton.
    pub fn build(automaton: &Automaton) -> ClassWeights {
        let dfa = Dfa::from_automaton(automaton);
        let n_syms = automaton.n_symbols();
        let mut state_index =
            HashMap::with_capacity_and_hasher(dfa.states.len(), FoldBuild::default());
        for (i, s) in dfa.states.iter().enumerate() {
            state_index.insert(*s, i as u32);
        }
        let cells = (0..dfa.states.len() * n_syms)
            .map(|_| AtomicU64::new(0))
            .collect();
        ClassWeights {
            n_syms,
            states: dfa.states.into_boxed_slice(),
            state_index,
            cells,
        }
    }

    /// Dense row for an exact state set, if indexed.
    #[inline]
    fn row_of(&self, from: &StateSet) -> Option<u32> {
        if self.states.len() <= LINEAR_MAX {
            self.states.iter().position(|s| s == from).map(|i| i as u32)
        } else {
            self.state_index.get(from).copied()
        }
    }

    /// Number of DFA states (matrix rows).
    pub fn n_states(&self) -> usize {
        if self.n_syms == 0 {
            0
        } else {
            self.cells.len() / self.n_syms
        }
    }

    /// Number of symbols (matrix columns).
    pub fn n_symbols(&self) -> usize {
        self.n_syms
    }

    #[inline]
    fn cell(&self, row: u32, sym: u32) -> Option<&AtomicU64> {
        if (sym as usize) < self.n_syms {
            self.cells.get(row as usize * self.n_syms + sym as usize)
        } else {
            None
        }
    }

    /// Count one firing of `sym` out of the exact state set `from`.
    /// Returns `false` when `from` has no dense row (caller spills).
    #[inline]
    pub fn record(&self, from: &StateSet, sym: SymbolId) -> bool {
        match self.row_of(from) {
            Some(row) => match self.cell(row, sym.0) {
                Some(c) => {
                    c.fetch_add(1, Ordering::Relaxed);
                    true
                }
                None => false,
            },
            None => false,
        }
    }

    /// Weight of the `row --sym-->` edge (row = DFA/DOT state id).
    pub fn get(&self, row: u32, sym: u32) -> u64 {
        self.cell(row, sym).map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Dense count for an exact source state set, if indexed.
    pub fn count_from(&self, from: &StateSet, sym: SymbolId) -> Option<u64> {
        self.row_of(from).map(|row| self.get(row, sym.0))
    }

    /// Sum of every cell — the class's dense transition count.
    pub fn total(&self) -> u64 {
        self.cells.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// All non-zero cells as `(row, symbol, count)`.
    pub fn nonzero(&self) -> Vec<(u32, u32, u64)> {
        let mut out = Vec::new();
        for (i, c) in self.cells.iter().enumerate() {
            let n = c.load(Ordering::Relaxed);
            if n > 0 {
                out.push(((i / self.n_syms) as u32, (i % self.n_syms) as u32, n));
            }
        }
        out
    }
}

/// Live transition weights are directly renderable: the dense row ids
/// are the DFA state ids `automata::dot` queries.
impl WeightSource for ClassWeights {
    fn weight(&self, from: u32, sym: u32) -> u64 {
        self.get(from, sym)
    }
}

type SpillKey = (u32, StateSet, SymbolId);

/// The full per-class weight store: dense tables installed at
/// registration via `OnceLock` slots (readers pay one atomic load),
/// plus the striped exact-spillover map.
pub struct TransitionWeights {
    dense: Box<[OnceLock<Arc<ClassWeights>>]>,
    spill: Box<[Mutex<HashMap<SpillKey, u64>>]>,
}

impl Default for TransitionWeights {
    fn default() -> TransitionWeights {
        TransitionWeights::new()
    }
}

impl TransitionWeights {
    /// New, empty store.
    pub fn new() -> TransitionWeights {
        TransitionWeights {
            dense: (0..MAX_DENSE_CLASSES).map(|_| OnceLock::new()).collect(),
            spill: (0..SPILL_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
        }
    }

    /// Install the dense table for `class` (idempotent; the first
    /// registration wins). Called at class registration — cold path.
    pub fn register(&self, class: u32, automaton: &Automaton) {
        if let Some(slot) = self.dense.get(class as usize) {
            let _ = slot.set(Arc::new(ClassWeights::build(automaton)));
        }
    }

    /// The dense table for `class`, if registered — this is the
    /// [`WeightSource`] for rendering that class's weighted graph.
    pub fn class(&self, class: u32) -> Option<Arc<ClassWeights>> {
        self.dense.get(class as usize)?.get().cloned()
    }

    fn stripe(key: &SpillKey) -> usize {
        let mut h = FoldHasher::default();
        key.hash(&mut h);
        h.finish() as usize % SPILL_STRIPES
    }

    /// Count one transition. Dense fast path: a read-only lookup and
    /// a relaxed add. The striped map only sees keys with no dense
    /// slot.
    #[inline]
    pub fn record(&self, class: u32, from: &StateSet, sym: SymbolId) {
        if let Some(slot) = self.dense.get(class as usize) {
            if let Some(cw) = slot.get() {
                if cw.record(from, sym) {
                    return;
                }
            }
        }
        let key = (class, *from, sym);
        *self.spill[Self::stripe(&key)]
            .lock()
            .entry(key)
            .or_insert(0) += 1;
    }

    /// Exact count for `(class, from, sym)` — dense plus spillover
    /// (events recorded before the class registered land in the
    /// spillover and are still included).
    pub fn count(&self, class: u32, from: &StateSet, sym: SymbolId) -> u64 {
        let dense = self
            .class(class)
            .and_then(|cw| cw.count_from(from, sym))
            .unwrap_or(0);
        let key = (class, *from, sym);
        let spilled = self.spill[Self::stripe(&key)]
            .lock()
            .get(&key)
            .copied()
            .unwrap_or(0);
        dense + spilled
    }

    /// Sum of counts for `class` on `sym` over all source state sets.
    pub fn symbol_count(&self, class: u32, sym: SymbolId) -> u64 {
        let mut total = 0;
        if let Some(cw) = self.class(class) {
            for row in 0..cw.n_states() as u32 {
                total += cw.get(row, sym.0);
            }
        }
        for stripe in self.spill.iter() {
            total += stripe
                .lock()
                .iter()
                .filter(|((c, _, s), _)| *c == class && *s == sym)
                .map(|(_, n)| *n)
                .sum::<u64>();
        }
        total
    }

    /// Every transition recorded for `class` — dense plus spillover.
    /// One weight lands per `Update` event, so this is also the
    /// class's exact update count.
    pub fn class_total(&self, class: u32) -> u64 {
        let mut total = self.class(class).map_or(0, |cw| cw.total());
        for stripe in self.spill.iter() {
            total += stripe
                .lock()
                .iter()
                .filter(|((c, _, _), _)| *c == class)
                .map(|(_, n)| *n)
                .sum::<u64>();
        }
        total
    }

    /// Every transition recorded across all classes (the global
    /// update count).
    pub fn grand_total(&self) -> u64 {
        let mut total: u64 = 0;
        for slot in self.dense.iter() {
            if let Some(cw) = slot.get() {
                total += cw.total();
            }
        }
        for stripe in self.spill.iter() {
            total += stripe.lock().values().sum::<u64>();
        }
        total
    }

    /// Symbols of `class` that fired at least once, sorted.
    pub fn covered_symbols(&self, class: u32) -> Vec<SymbolId> {
        let mut syms: Vec<SymbolId> = Vec::new();
        if let Some(cw) = self.class(class) {
            for (_, sym, _) in cw.nonzero() {
                syms.push(SymbolId(sym));
            }
        }
        for stripe in self.spill.iter() {
            syms.extend(
                stripe
                    .lock()
                    .keys()
                    .filter(|(c, _, _)| *c == class)
                    .map(|(_, _, s)| *s),
            );
        }
        syms.sort_unstable();
        syms.dedup();
        syms
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_automata::compile;
    use tesla_spec::{call, AssertionBuilder};

    fn automaton() -> Automaton {
        let a = AssertionBuilder::within("req")
            .previously(call("check").arg_var("x").returns(0))
            .build()
            .unwrap();
        compile(&a).unwrap()
    }

    #[test]
    fn dense_and_spill_counts_sum_exactly() {
        let w = TransitionWeights::new();
        let a = automaton();
        let start = a.initial_states();
        let sym = a.site_sym;
        // Before registration: spills.
        w.record(0, &start, sym);
        w.register(0, &a);
        // After registration: dense.
        w.record(0, &start, sym);
        w.record(0, &start, sym);
        assert_eq!(w.count(0, &start, sym), 3);
        assert_eq!(w.symbol_count(0, sym), 3);
        assert_eq!(w.covered_symbols(0), vec![sym]);
        // The dense table alone holds only the post-registration hits,
        // in DFA row 0 (the start state is BFS-first).
        let cw = w.class(0).unwrap();
        assert_eq!(cw.get(0, sym.0), 2);
    }

    #[test]
    fn unindexed_state_sets_spill_exactly() {
        let w = TransitionWeights::new();
        let a = automaton();
        w.register(0, &a);
        // A merged (non-DFA) state set.
        let mut merged = StateSet::singleton(0);
        merged.insert(a.n_states.saturating_sub(1));
        merged.insert(1);
        let sym = a.site_sym;
        w.record(0, &merged, sym);
        assert_eq!(w.count(0, &merged, sym), 1);
    }
}
