//! The pluggable event-notification framework (§4.4.2).
//!
//! "TESLA has a pluggable event notification framework with a set of
//! default handlers and support for user-provided handler callbacks."
//! In userspace the default prints to stderr under the `TESLA_DEBUG`
//! environment variable; in the FreeBSD kernel the default aggregates
//! via DTrace. [`CountingHandler`] is our DTrace substitute: it
//! aggregates per-transition counts that feed the weighted automaton
//! graphs of fig. 9 and the logical-coverage reports. The heavier
//! aggregation machinery (metrics registry, flight recorder) lives in
//! [`crate::telemetry`] and plugs in through the same trait.

use crate::event::LifecycleEvent;
use crate::faults::{FaultKind, FaultPlan, INJECTED_PANIC};
use crate::telemetry::weights::TransitionWeights;
use crate::telemetry::{Governor, MetricsRegistry};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use tesla_automata::{Automaton, StateSet, SymbolId};

/// A lifecycle-event observer. Handlers must be cheap and re-entrant;
/// they are called from instrumentation hooks with store locks held.
pub trait EventHandler: Send + Sync {
    /// Observe one lifecycle event.
    fn on_event(&self, ev: &LifecycleEvent);

    /// Observe a class registration (cold path). The engine calls
    /// this for every registered class — including, for handlers
    /// attached late, classes registered before the handler — so
    /// aggregating handlers can build dense per-class tables instead
    /// of locking maps on the hot path. Default: ignore.
    fn on_register(&self, class: u32, automaton: &Automaton) {
        let _ = (class, automaton);
    }
}

/// Panic-isolating lifecycle-event fan-out.
///
/// Handlers run from instrumentation hooks with store locks held, so a
/// buggy handler that unwinds would poison those locks and propagate
/// into the *host's* call stack — exactly the "instrumentation worse
/// than the bug" failure the fault model forbids. `Dispatch` wraps
/// every `on_event` in `catch_unwind`: a panicking handler degrades to
/// a counted `tesla_handler_panics_total` metric and the remaining
/// handlers still run.
///
/// When a [`FaultPlan`] is attached it may also *inject* a handler
/// panic at the top of [`Dispatch::notify`] (drawn and absorbed here,
/// which is what keeps the plan's ledger balanced).
pub struct Dispatch<'a> {
    handlers: &'a [Arc<dyn EventHandler>],
    metrics: &'a MetricsRegistry,
    faults: Option<&'a FaultPlan>,
    governor: Option<&'a Governor>,
}

impl<'a> Dispatch<'a> {
    /// Bundle a handler slice with the metrics sink (and optional
    /// fault plan) for one hook invocation.
    pub fn new(
        handlers: &'a [Arc<dyn EventHandler>],
        metrics: &'a MetricsRegistry,
        faults: Option<&'a FaultPlan>,
    ) -> Dispatch<'a> {
        Dispatch {
            handlers,
            metrics,
            faults,
            governor: None,
        }
    }

    /// Attach the overhead governor so the store can consult its
    /// actuators (update-notification sampling, clone shedding).
    pub fn with_governor(mut self, governor: Option<&'a Governor>) -> Dispatch<'a> {
        self.governor = governor;
        self
    }

    /// True when no handlers are attached (lets callers skip event
    /// construction entirely).
    pub fn is_empty(&self) -> bool {
        self.handlers.is_empty()
    }

    /// The governor's clone-shed period: 0 means "shed nothing",
    /// `n > 0` means "shed one specialising clone in `n`". Nonzero
    /// only when the governor was configured with `allow_shed` and
    /// escalated past the exact levels.
    pub fn governed_shed(&self) -> u32 {
        self.governor.map_or(0, Governor::shed_period)
    }

    /// Draw the governor's clone-shed sampler for one specialising
    /// clone. False with no governor or below the shed levels; at the
    /// shed levels, true for one clone in [`Dispatch::governed_shed`]
    /// on a phase that persists across scope generations.
    pub fn shed_clone(&self) -> bool {
        self.governor.map_or(false, Governor::shed_clone)
    }

    /// Should the hot-path in-place `Update` notification be built and
    /// delivered? False when no handlers are attached, or when the
    /// governor is sampling update notifications to hold its SLO.
    /// Only *observation* is affected — the automaton state advanced
    /// regardless.
    pub fn admits_update(&self) -> bool {
        !self.is_empty() && self.governor.map_or(true, Governor::admit_update)
    }

    /// The attached fault plan, if any, so store-side injection sites
    /// (allocation failure) can draw from the same schedule.
    pub fn faults(&self) -> Option<&FaultPlan> {
        self.faults
    }

    /// The metrics sink absorbed faults are accounted against.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.metrics
    }

    /// Deliver `ev` to every handler, isolating panics per handler.
    pub fn notify(&self, ev: &LifecycleEvent) {
        if let Some(fp) = self.faults {
            if fp.draw(FaultKind::HandlerPanic) {
                // Synthetic buggy handler: panics before doing work.
                let r = catch_unwind(|| std::panic::panic_any(INJECTED_PANIC));
                debug_assert!(r.is_err());
                self.metrics.note_handler_panic();
                self.metrics.note_fault_absorbed();
                fp.absorbed(FaultKind::HandlerPanic);
            }
        }
        for h in self.handlers {
            if catch_unwind(AssertUnwindSafe(|| h.on_event(ev))).is_err() {
                self.metrics.note_handler_panic();
            }
        }
    }
}

/// Prints lifecycle events to stderr when the `TESLA_DEBUG`
/// environment variable is set (the paper's userspace default).
pub struct StderrHandler {
    enabled: bool,
}

impl StderrHandler {
    /// Create, sampling `TESLA_DEBUG` once.
    pub fn from_env() -> StderrHandler {
        StderrHandler {
            enabled: std::env::var_os("TESLA_DEBUG").is_some(),
        }
    }

    /// Create with an explicit enable flag (tests).
    pub fn new(enabled: bool) -> StderrHandler {
        StderrHandler { enabled }
    }
}

impl EventHandler for StderrHandler {
    fn on_event(&self, ev: &LifecycleEvent) {
        if self.enabled {
            eprintln!("tesla: {ev:?}");
        }
    }
}

/// Records lifecycle events; used by tests and by the
/// trace-exploration workflows of §3.5.3 (the GNUstep investigation
/// logged "detailed information about the events being delivered").
///
/// [`RecordingHandler::new`] is unbounded — fine for tests, unsafe
/// for production paths. Long-running workloads should use
/// [`RecordingHandler::bounded`], which keeps the most recent
/// `capacity` events and counts what it dropped (or the ring-buffer
/// [`crate::telemetry::FlightRecorder`], which also drops the lock).
#[derive(Default)]
pub struct RecordingHandler {
    events: Mutex<VecDeque<LifecycleEvent>>,
    capacity: Option<usize>,
    dropped: AtomicU64,
}

impl RecordingHandler {
    /// New, empty, *unbounded* recorder (tests and short traces).
    pub fn new() -> RecordingHandler {
        RecordingHandler::default()
    }

    /// New recorder keeping only the most recent `capacity` events
    /// (overwrite-oldest).
    pub fn bounded(capacity: usize) -> RecordingHandler {
        RecordingHandler {
            events: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
            capacity: Some(capacity.max(1)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Snapshot of the recorded events, oldest first.
    pub fn events(&self) -> Vec<LifecycleEvent> {
        self.events.lock().iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded by the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drop all recorded events.
    pub fn clear(&self) {
        self.events.lock().clear();
    }
}

impl EventHandler for RecordingHandler {
    fn on_event(&self, ev: &LifecycleEvent) {
        let mut q = self.events.lock();
        if let Some(cap) = self.capacity {
            while q.len() >= cap {
                q.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        q.push_back(ev.clone());
    }
}

/// Aggregating handler: per-class lifecycle tallies and
/// per-(class, state-set, symbol) transition counts — the data behind
/// fig. 9's weighted graphs and "counting how often a transition is
/// triggered" (§4.4.2). Because libtesla instances carry exact NFA
/// state sets, the state-set key *is* the DFA state of the rendered
/// graph.
///
/// Transition counts live in dense per-class atomic matrices built at
/// registration time (see [`TransitionWeights`]); recording is a
/// read-only index lookup plus one relaxed `fetch_add`, so the
/// handler adds no locks to the engine's contention-free hot path.
#[derive(Default)]
pub struct CountingHandler {
    news: AtomicU64,
    clones: AtomicU64,
    updates: AtomicU64,
    errors: AtomicU64,
    finalises_accepted: AtomicU64,
    finalises_rejected: AtomicU64,
    overflows: AtomicU64,
    evictions: AtomicU64,
    shed: AtomicU64,
    weights: TransitionWeights,
}

impl CountingHandler {
    /// New handler with zeroed tallies.
    pub fn new() -> CountingHandler {
        CountingHandler::default()
    }

    /// Total instance initialisations.
    pub fn news(&self) -> u64 {
        self.news.load(Ordering::Relaxed)
    }

    /// Total clones (variable specialisations).
    pub fn clones(&self) -> u64 {
        self.clones.load(Ordering::Relaxed)
    }

    /// Total state updates.
    pub fn updates(&self) -> u64 {
        self.updates.load(Ordering::Relaxed)
    }

    /// Total violations observed.
    pub fn errors(&self) -> u64 {
        self.errors.load(Ordering::Relaxed)
    }

    /// Finalisations that were acceptances.
    pub fn accepted(&self) -> u64 {
        self.finalises_accepted.load(Ordering::Relaxed)
    }

    /// Finalisations that were violations.
    pub fn rejected(&self) -> u64 {
        self.finalises_rejected.load(Ordering::Relaxed)
    }

    /// Preallocation overflows.
    pub fn overflows(&self) -> u64 {
        self.overflows.load(Ordering::Relaxed)
    }

    /// Quota evictions (LRU policy).
    pub fn evicted(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Clones shed by degraded mode.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// How often `class` took `sym` out of exactly the state set
    /// `from` — a fig. 9 edge weight.
    pub fn transition_count(&self, class: u32, from: StateSet, sym: SymbolId) -> u64 {
        self.weights.count(class, &from, sym)
    }

    /// Sum of transition counts for `class` on `sym` over all source
    /// state sets.
    pub fn symbol_count(&self, class: u32, sym: SymbolId) -> u64 {
        self.weights.symbol_count(class, sym)
    }

    /// Symbols of `class` that fired at least once — logical coverage
    /// "like traditional code coverage analysis but at a logical …
    /// level" (§4.4.2).
    pub fn covered_symbols(&self, class: u32) -> Vec<SymbolId> {
        self.weights.covered_symbols(class)
    }

    /// The underlying weight store, e.g. to fetch a class's dense
    /// table as a `dot::WeightSource`.
    pub fn weights(&self) -> &TransitionWeights {
        &self.weights
    }
}

impl EventHandler for CountingHandler {
    fn on_event(&self, ev: &LifecycleEvent) {
        match ev {
            LifecycleEvent::New { .. } => {
                self.news.fetch_add(1, Ordering::Relaxed);
            }
            LifecycleEvent::Clone { .. } => {
                // A clone is also a transition of the specialised
                // instance; the engine reports that transition via a
                // paired Update, which is where it is counted.
                self.clones.fetch_add(1, Ordering::Relaxed);
            }
            LifecycleEvent::Update {
                class,
                sym,
                from_states,
                ..
            } => {
                self.updates.fetch_add(1, Ordering::Relaxed);
                self.weights.record(*class, from_states, *sym);
            }
            LifecycleEvent::Error { .. } => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            LifecycleEvent::Finalise { accepted, .. } => {
                if *accepted {
                    self.finalises_accepted.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.finalises_rejected.fetch_add(1, Ordering::Relaxed);
                }
            }
            LifecycleEvent::Overflow { .. } => {
                self.overflows.fetch_add(1, Ordering::Relaxed);
            }
            LifecycleEvent::Evicted { .. } => {
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
            LifecycleEvent::Shed { .. } => {
                self.shed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn on_register(&self, class: u32, automaton: &Automaton) {
        self.weights.register(class, automaton);
    }
}

/// A handler wrapping an arbitrary closure — the "user-provided
/// handler callbacks" of §4.4.2, used e.g. to print GNUstep traces
/// (§3.5.3).
pub struct CallbackHandler<F: Fn(&LifecycleEvent) + Send + Sync> {
    f: F,
}

impl<F: Fn(&LifecycleEvent) + Send + Sync> CallbackHandler<F> {
    /// Wrap a closure.
    pub fn new(f: F) -> CallbackHandler<F> {
        CallbackHandler { f }
    }
}

impl<F: Fn(&LifecycleEvent) + Send + Sync> EventHandler for CallbackHandler<F> {
    fn on_event(&self, ev: &LifecycleEvent) {
        (self.f)(ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Violation, ViolationKind};
    use tesla_spec::SourceLoc;

    fn update(class: u32, from: u32, sym: u32) -> LifecycleEvent {
        LifecycleEvent::Update {
            class,
            instance: 0,
            sym: SymbolId(sym),
            from_states: StateSet::singleton(from),
            to_states: StateSet::singleton(from + 1),
        }
    }

    #[test]
    fn counting_handler_tallies() {
        let h = CountingHandler::new();
        h.on_event(&LifecycleEvent::New {
            class: 0,
            instance: 0,
        });
        h.on_event(&update(0, 0, 1));
        h.on_event(&update(0, 0, 1));
        h.on_event(&update(0, 1, 2));
        h.on_event(&LifecycleEvent::Finalise {
            class: 0,
            instance: 0,
            accepted: true,
        });
        h.on_event(&LifecycleEvent::Overflow { class: 0 });
        assert_eq!(h.news(), 1);
        assert_eq!(h.updates(), 3);
        assert_eq!(h.accepted(), 1);
        assert_eq!(h.overflows(), 1);
        assert_eq!(
            h.transition_count(0, StateSet::singleton(0), SymbolId(1)),
            2
        );
        assert_eq!(h.symbol_count(0, SymbolId(1)), 2);
        assert_eq!(h.covered_symbols(0), vec![SymbolId(1), SymbolId(2)]);
        // Other classes are unaffected.
        assert_eq!(h.symbol_count(1, SymbolId(1)), 0);
    }

    #[test]
    fn counting_handler_uses_dense_tables_after_registration() {
        use tesla_spec::{call, AssertionBuilder};
        let a = tesla_automata::compile(
            &AssertionBuilder::within("req")
                .previously(call("check").arg_var("x").returns(0))
                .build()
                .unwrap(),
        )
        .unwrap();
        let h = CountingHandler::new();
        h.on_register(0, &a);
        let start = a.initial_states();
        h.on_event(&LifecycleEvent::Update {
            class: 0,
            instance: 0,
            sym: a.site_sym,
            from_states: start,
            to_states: start,
        });
        // Counts come back through the old API…
        assert_eq!(h.transition_count(0, start, a.site_sym), 1);
        // …and land in the dense table, whose rows are DOT state ids.
        let cw = h.weights().class(0).expect("dense table installed");
        assert_eq!(cw.nonzero().len(), 1);
    }

    #[test]
    fn recording_handler_keeps_order() {
        let h = RecordingHandler::new();
        assert!(h.is_empty());
        h.on_event(&LifecycleEvent::New {
            class: 1,
            instance: 0,
        });
        h.on_event(&LifecycleEvent::Error {
            violation: Violation {
                assertion: "a".into(),
                kind: ViolationKind::Site,
                loc: SourceLoc::default(),
                source: String::new(),
                values: vec![],
                detail: String::new(),
            },
        });
        let evs = h.events();
        assert_eq!(evs.len(), 2);
        assert!(matches!(evs[0], LifecycleEvent::New { class: 1, .. }));
        h.clear();
        assert!(h.is_empty());
    }

    #[test]
    fn bounded_recording_handler_overwrites_oldest() {
        let h = RecordingHandler::bounded(3);
        for i in 0..5 {
            h.on_event(&LifecycleEvent::New {
                class: 0,
                instance: i,
            });
        }
        assert_eq!(h.len(), 3);
        assert_eq!(h.dropped(), 2);
        let evs = h.events();
        assert!(matches!(evs[0], LifecycleEvent::New { instance: 2, .. }));
        assert!(matches!(evs[2], LifecycleEvent::New { instance: 4, .. }));
    }

    #[test]
    fn callback_handler_invokes_closure() {
        use std::sync::atomic::AtomicUsize;
        let n = AtomicUsize::new(0);
        let h = CallbackHandler::new(|_| {
            n.fetch_add(1, Ordering::Relaxed);
        });
        h.on_event(&LifecycleEvent::New {
            class: 0,
            instance: 0,
        });
        h.on_event(&LifecycleEvent::New {
            class: 0,
            instance: 1,
        });
        assert_eq!(n.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn dispatch_isolates_handler_panics() {
        crate::faults::silence_injected_panics();
        let metrics = MetricsRegistry::new();
        let seen = Arc::new(AtomicU64::new(0));
        let seen2 = seen.clone();
        let bad: Arc<dyn EventHandler> = Arc::new(CallbackHandler::new(|_| {
            std::panic::panic_any(INJECTED_PANIC)
        }));
        let good: Arc<dyn EventHandler> = Arc::new(CallbackHandler::new(move |_| {
            seen2.fetch_add(1, Ordering::Relaxed);
        }));
        let handlers = vec![bad, good];
        let d = Dispatch::new(&handlers, &metrics, None);
        d.notify(&LifecycleEvent::New {
            class: 0,
            instance: 0,
        });
        d.notify(&LifecycleEvent::Overflow { class: 0 });
        // The panicking handler never unwound into us, and the healthy
        // handler behind it still saw every event.
        assert_eq!(seen.load(Ordering::Relaxed), 2);
        assert_eq!(metrics.handler_panics(), 2);
    }

    #[test]
    fn dispatch_injects_and_absorbs_handler_panics() {
        crate::faults::silence_injected_panics();
        let metrics = MetricsRegistry::new();
        let plan = FaultPlan::new(
            3,
            crate::faults::FaultSpec::none().with(FaultKind::HandlerPanic, 4),
        );
        let handlers: Vec<Arc<dyn EventHandler>> = vec![];
        let d = Dispatch::new(&handlers, &metrics, Some(&plan));
        for _ in 0..40 {
            d.notify(&LifecycleEvent::New {
                class: 0,
                instance: 0,
            });
        }
        let l = plan.ledger();
        assert_eq!(l.injected[FaultKind::HandlerPanic as usize], 10);
        assert!(l.balanced());
        assert_eq!(metrics.handler_panics(), 10);
        assert_eq!(metrics.faults_absorbed(), 10);
    }

    #[test]
    fn counting_handler_counts_evictions_and_shed() {
        let h = CountingHandler::new();
        h.on_event(&LifecycleEvent::Evicted {
            class: 2,
            instance: 1,
        });
        h.on_event(&LifecycleEvent::Shed { class: 2 });
        h.on_event(&LifecycleEvent::Shed { class: 2 });
        assert_eq!(h.evicted(), 1);
        assert_eq!(h.shed(), 2);
    }

    #[test]
    fn stderr_handler_disabled_is_silent() {
        // Just exercise the code path; nothing observable.
        let h = StderrHandler::new(false);
        h.on_event(&LifecycleEvent::New {
            class: 0,
            instance: 0,
        });
    }
}
