//! Every [`FailMode`] variant: a violation must be *delivered*
//! (logged, surfaced per the mode's contract, and visible to event
//! handlers) and the engine must stay *live* afterwards — also while
//! a fault plan is injecting handler panics into the dispatch path.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use tesla_automata::compile;
use tesla_runtime::{
    Config, FailMode, FaultKind, FaultPlan, FaultSpec, LifecycleEvent, RecordingHandler, Tesla,
};
use tesla_spec::{call, AssertionBuilder, Value};

fn engine(mode: FailMode, faults: Option<Arc<FaultPlan>>) -> (Arc<Tesla>, tesla_runtime::ClassId) {
    tesla_runtime::engine::reset_thread_state();
    let t = Arc::new(Tesla::new(Config {
        fail_mode: mode,
        telemetry: true,
        faults,
        ..Config::default()
    }));
    let a = AssertionBuilder::within("req")
        .named("req_check")
        .previously(call("check").arg_var("x").returns(0))
        .build()
        .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    (t, id)
}

/// Drive one scope: `check(ok)` passes its site; if `bad` is given,
/// a site for a value `check` never returned follows — a violation.
/// Returns the site results (pass, violation-or-Ok).
fn scope(
    t: &Tesla,
    id: tesla_runtime::ClassId,
    ok: u64,
    bad: Option<u64>,
) -> (
    Result<(), tesla_runtime::Violation>,
    Result<(), tesla_runtime::Violation>,
) {
    let req = t.intern_fn("req");
    let check = t.intern_fn("check");
    t.fn_entry(req, &[]).unwrap();
    let args = [Value(ok)];
    t.fn_entry(check, &args).unwrap();
    t.fn_exit(check, &args, Value(0)).unwrap();
    let pass = t.assertion_site(id, &[Value(ok)]);
    let fail = match bad {
        Some(b) => t.assertion_site(id, &[Value(b)]),
        None => Ok(()),
    };
    let _ = t.fn_exit(req, &[], Value(0));
    (pass, fail)
}

#[test]
fn fail_stop_returns_the_violation_and_stays_live() {
    let (t, id) = engine(FailMode::FailStop, None);
    let rec = Arc::new(RecordingHandler::new());
    t.add_handler(rec.clone());
    let (pass, fail) = scope(&t, id, 1, Some(2));
    assert!(pass.is_ok());
    let v = fail.unwrap_err();
    assert_eq!(v.assertion, "req_check");
    assert_eq!(t.violations().len(), 1);
    // Handlers saw the Error lifecycle event (delivery, not just the
    // returned value).
    assert!(rec
        .events()
        .iter()
        .any(|e| matches!(e, LifecycleEvent::Error { .. })));
    // Liveness: a fresh scope still checks correctly.
    let (pass, fail) = scope(&t, id, 3, Some(4));
    assert!(pass.is_ok());
    assert!(fail.is_err());
    assert_eq!(t.violations().len(), 2);
}

#[test]
fn log_mode_logs_and_continues() {
    let (t, id) = engine(FailMode::Log, None);
    let (pass, fail) = scope(&t, id, 1, Some(2));
    assert!(pass.is_ok());
    assert!(fail.is_ok(), "Log mode must not surface an Err");
    assert_eq!(t.violations().len(), 1);
    let (_, fail) = scope(&t, id, 3, Some(4));
    assert!(fail.is_ok());
    assert_eq!(t.violations().len(), 2);
}

#[test]
fn panic_mode_panics_with_context_and_stays_live() {
    let (t, id) = engine(FailMode::Panic, None);
    let req = t.intern_fn("req");
    let check = t.intern_fn("check");
    t.fn_entry(req, &[]).unwrap();
    let args = [Value(1)];
    t.fn_entry(check, &args).unwrap();
    t.fn_exit(check, &args, Value(0)).unwrap();
    assert!(t.assertion_site(id, &[Value(1)]).is_ok());
    let err = catch_unwind(AssertUnwindSafe(|| {
        let _ = t.assertion_site(id, &[Value(2)]);
    }))
    .unwrap_err();
    // The panic payload is the violation's display form — actionable,
    // like the fail-stop message.
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("req_check"), "panic payload: {msg}");
    // The violation was logged *before* unwinding.
    assert_eq!(t.violations().len(), 1);
    // Liveness: the engine survives its own panic (the scope it was
    // in is abandoned; the next scope is clean).
    let (pass, _) = scope(&t, id, 5, None);
    assert!(pass.is_ok());
}

#[test]
fn zero_limits_are_rejected_with_typed_errors() {
    use tesla_runtime::ConfigError;
    let cases: [(Config, ConfigError); 4] = [
        (
            Config {
                global_shards: 0,
                ..Config::default()
            },
            ConfigError::ZeroGlobalShards,
        ),
        (
            Config {
                instance_capacity: 0,
                ..Config::default()
            },
            ConfigError::ZeroInstanceCapacity,
        ),
        (
            Config {
                max_instances: Some(0),
                ..Config::default()
            },
            ConfigError::ZeroMaxInstances,
        ),
        (
            Config {
                degraded_sample: 0,
                ..Config::default()
            },
            ConfigError::ZeroDegradedSample,
        ),
    ];
    for (cfg, want) in cases {
        assert_eq!(Tesla::try_new(cfg).err(), Some(want));
    }
    // And the panicking constructor reports the same diagnosis instead
    // of a modulo-by-zero deep inside a hook.
    let err = catch_unwind(|| {
        Tesla::new(Config {
            global_shards: 0,
            ..Config::default()
        })
    })
    .err()
    .expect("zero shards must panic in Tesla::new");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("global_shards"), "panic payload: {msg}");
}

#[test]
fn all_modes_deliver_under_injected_handler_panics() {
    tesla_runtime::faults::silence_injected_panics();
    for mode in [FailMode::FailStop, FailMode::Log, FailMode::Panic] {
        let plan = Arc::new(FaultPlan::new(
            42,
            FaultSpec::none().with(FaultKind::HandlerPanic, 2),
        ));
        let (t, id) = engine(mode, Some(plan.clone()));
        let rec = Arc::new(RecordingHandler::new());
        t.add_handler(rec.clone());
        let outcome = catch_unwind(AssertUnwindSafe(|| scope(&t, id, 1, Some(2))));
        match mode {
            FailMode::Panic => {
                // Only the *violation* panics; injected handler panics
                // are absorbed.
                assert!(outcome.is_err());
            }
            FailMode::FailStop => {
                let (pass, fail) = outcome.unwrap();
                assert!(pass.is_ok());
                assert!(fail.is_err());
            }
            FailMode::Log => {
                let (pass, fail) = outcome.unwrap();
                assert!(pass.is_ok());
                assert!(fail.is_ok());
            }
        }
        // Delivery survived the panicking dispatch path: the violation
        // is in the log and handlers behind the injected panic still
        // saw the Error event.
        assert_eq!(t.violations().len(), 1, "mode {mode:?}");
        assert!(
            rec.events()
                .iter()
                .any(|e| matches!(e, LifecycleEvent::Error { .. })),
            "mode {mode:?}"
        );
        // Every injected panic was absorbed and accounted.
        let l = plan.ledger();
        assert!(l.balanced(), "mode {mode:?}: {l}");
        assert!(l.total_injected() > 0, "mode {mode:?}");
        assert_eq!(
            t.metrics().handler_panics(),
            l.total_injected(),
            "mode {mode:?}"
        );
        // Liveness after the chaos: one more scope with no violation
        // (so even Panic mode returns), which must pass cleanly.
        let (pass, _) = catch_unwind(AssertUnwindSafe(|| scope(&t, id, 7, None))).unwrap();
        assert!(pass.is_ok(), "mode {mode:?}");
    }
}
