//! Concurrent Global-context dispatch: N threads hammer the hooks at
//! once, against shared and disjoint bound groups, while snapshots
//! are swapped under traffic. Violations must never be lost, instance
//! counts must be exact, and a late `register` must be safe.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tesla_automata::compile;
use tesla_runtime::{
    Config, CountingHandler, FailMode, FlightRecorder, HookKind, Tesla, ViolationKind,
};
use tesla_spec::{call, AssertionBuilder, StaticEvent, Value};

fn global_assertion(name: &str, start: &str, end: &str, check: &str) -> tesla_spec::Assertion {
    AssertionBuilder::bounded(
        StaticEvent::Call(start.to_string()),
        StaticEvent::ReturnFrom(end.to_string()),
    )
    .global()
    .named(name)
    .previously(call(check).arg_var("v").returns(0))
    .build()
    .unwrap()
}

fn log_engine() -> Arc<Tesla> {
    // Capacity sized for the cross-thread specialisation counts below.
    Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        instance_capacity: 4096,
        ..Config::default()
    }))
}

/// One Global bound group shared by every thread: producers emit
/// disjoint value ranges, sites for produced values pass, sites for
/// unproduced values are violations — and none may be lost.
#[test]
fn shared_group_loses_no_violations_or_instances() {
    const THREADS: u64 = 4;
    const PRODUCED: u64 = 50;
    const VIOLATIONS: u64 = 7;
    let t = log_engine();
    let a = global_assertion("shared", "job_start", "job_end", "produce");
    let id = t.register(compile(&a).unwrap()).unwrap();
    let start = t.intern_fn("job_start");
    let end = t.intern_fn("job_end");
    let produce = t.intern_fn("produce");

    // The bound is held open by the main thread for the whole run.
    t.fn_entry(start, &[]).unwrap();
    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let t = t.clone();
            std::thread::spawn(move || {
                for i in 0..PRODUCED {
                    let v = w * 1_000 + i;
                    let args = [Value(v)];
                    t.fn_entry(produce, &args).unwrap();
                    t.fn_exit(produce, &args, Value(0)).unwrap();
                    // A produced value always passes its site.
                    t.assertion_site(id, &[Value(v)]).unwrap();
                }
                for _ in 0..VIOLATIONS {
                    // Never produced by anyone: a real violation.
                    t.assertion_site(id, &[Value(900_000 + w)]).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    // Exact instance count in the shared store: (∗) plus one
    // specialisation per produced value.
    assert_eq!(t.live_instances_here(id), 1 + (THREADS * PRODUCED) as usize);
    // Every violating site was recorded, none lost to racing threads.
    assert_eq!(t.violations().len(), (THREADS * VIOLATIONS) as usize);
    t.fn_exit(end, &[], Value(0)).unwrap();
    assert_eq!(t.live_instances_here(id), 0);
}

/// Disjoint Global bound groups: each thread drives its own group
/// (its own shard); verdicts and counts stay per-group exact.
#[test]
fn disjoint_groups_do_not_interfere() {
    const THREADS: usize = 4;
    const ITERS: u64 = 200;
    let t = log_engine();
    let ids: Vec<_> = (0..THREADS)
        .map(|w| {
            let a = global_assertion(
                &format!("disjoint_{w}"),
                &format!("start_{w}"),
                &format!("end_{w}"),
                &format!("check_{w}"),
            );
            t.register(compile(&a).unwrap()).unwrap()
        })
        .collect();
    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let t = t.clone();
            let id = ids[w];
            std::thread::spawn(move || {
                let start = t.intern_fn(&format!("start_{w}"));
                let end = t.intern_fn(&format!("end_{w}"));
                let check = t.intern_fn(&format!("check_{w}"));
                for i in 0..ITERS {
                    t.fn_entry(start, &[]).unwrap();
                    let args = [Value(i)];
                    t.fn_entry(check, &args).unwrap();
                    t.fn_exit(check, &args, Value(0)).unwrap();
                    t.assertion_site(id, &[Value(i)]).unwrap();
                    if i % 10 == 0 {
                        // One deliberate violation per ten iterations.
                        t.assertion_site(id, &[Value(i + 1)]).unwrap();
                    }
                    t.fn_exit(end, &[], Value(0)).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let per_thread_violations = ITERS.div_ceil(10);
    assert_eq!(
        t.violations().len(),
        THREADS * per_thread_violations as usize
    );
    // Per-class coverage is exact: every site hit and every violation
    // is attributed to the class whose thread produced it.
    for (name, hits, viols) in t.coverage() {
        assert_eq!(hits, ITERS + per_thread_violations, "{name}");
        assert_eq!(viols, per_thread_violations, "{name}");
    }
    // All groups were finalised; no instances linger in any shard.
    for &id in &ids {
        assert_eq!(t.live_instances_here(id), 0);
    }
}

/// A snapshot swap during traffic: worker threads hammer an existing
/// class while the main thread registers new classes. No events may
/// be dropped or misrouted, and the late classes must work.
#[test]
fn snapshot_swap_under_traffic_is_safe() {
    const THREADS: u64 = 4;
    const ITERS: u64 = 500;
    const LATE_CLASSES: usize = 16;
    let t = log_engine();
    let a = global_assertion("base", "job_start", "job_end", "produce");
    let id = t.register(compile(&a).unwrap()).unwrap();
    let start = t.intern_fn("job_start");
    let end = t.intern_fn("job_end");
    let produce = t.intern_fn("produce");

    t.fn_entry(start, &[]).unwrap();
    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let t = t.clone();
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    let v = w * 100_000 + i;
                    let args = [Value(v)];
                    t.fn_entry(produce, &args).unwrap();
                    t.fn_exit(produce, &args, Value(0)).unwrap();
                    t.assertion_site(id, &[Value(v)]).unwrap();
                }
            })
        })
        .collect();
    // Swap snapshots while the workers run.
    let late: Vec<_> = (0..LATE_CLASSES)
        .map(|k| {
            let a = global_assertion(
                &format!("late_{k}"),
                &format!("late_start_{k}"),
                &format!("late_end_{k}"),
                &format!("late_check_{k}"),
            );
            t.register(compile(&a).unwrap()).unwrap()
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    // No worker event was lost across the swaps.
    assert!(t.violations().is_empty());
    assert_eq!(t.live_instances_here(id), 1 + (THREADS * ITERS) as usize);
    t.fn_exit(end, &[], Value(0)).unwrap();
    // Every late class is live and enforces end to end.
    assert_eq!(t.n_classes(), 1 + LATE_CLASSES);
    for (k, &lid) in late.iter().enumerate() {
        let s = t.intern_fn(&format!("late_start_{k}"));
        let e = t.intern_fn(&format!("late_end_{k}"));
        let c = t.intern_fn(&format!("late_check_{k}"));
        t.fn_entry(s, &[]).unwrap();
        let args = [Value(k as u64)];
        t.fn_entry(c, &args).unwrap();
        t.fn_exit(c, &args, Value(0)).unwrap();
        t.assertion_site(lid, &[Value(k as u64)]).unwrap();
        t.fn_exit(e, &[], Value(0)).unwrap();
    }
    assert!(t.violations().is_empty());
}

/// Full telemetry under 8-thread dispatch: the metrics registry, a
/// flight recorder and the counting handler all ride along, a reader
/// thread takes snapshots throughout, and at the end every counter
/// must be *exact* — no event lost, none double-counted — while
/// concurrent snapshots only ever observe monotone totals.
#[test]
fn telemetry_counters_are_exact_under_parallel_dispatch() {
    const THREADS: u64 = 8;
    const PRODUCED: u64 = 40;
    const VIOLATIONS: u64 = 5;
    let t = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        instance_capacity: 4096,
        telemetry: true,
        ..Config::default()
    }));
    let recorder = Arc::new(FlightRecorder::new(1 << 14));
    let counting = Arc::new(CountingHandler::new());
    t.add_handler(recorder.clone());
    t.add_handler(counting.clone());
    let a = global_assertion("telemetry", "job_start", "job_end", "produce");
    let id = t.register(compile(&a).unwrap()).unwrap();
    let start = t.intern_fn("job_start");
    let end = t.intern_fn("job_end");
    let produce = t.intern_fn("produce");

    // A reader thread snapshots while the hammering runs: totals must
    // only grow, and snapshotting must never panic or deadlock.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let (t, recorder, stop) = (t.clone(), recorder.clone(), stop.clone());
        std::thread::spawn(move || {
            let mut last_events = 0u64;
            let mut iters = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let s = t.metrics().snapshot();
                assert!(s.events_total >= last_events, "events_total went backwards");
                last_events = s.events_total;
                let _ = recorder.snapshot();
                iters += 1;
            }
            iters
        })
    };

    t.fn_entry(start, &[]).unwrap();
    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let t = t.clone();
            std::thread::spawn(move || {
                for i in 0..PRODUCED {
                    let v = w * 1_000 + i;
                    let args = [Value(v)];
                    t.fn_entry(produce, &args).unwrap();
                    t.fn_exit(produce, &args, Value(0)).unwrap();
                    t.assertion_site(id, &[Value(v)]).unwrap();
                }
                for _ in 0..VIOLATIONS {
                    t.assertion_site(id, &[Value(900_000 + w)]).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    t.fn_exit(end, &[], Value(0)).unwrap();
    stop.store(true, Ordering::Relaxed);
    assert!(reader.join().unwrap() > 0);

    // Expected lifecycle arithmetic for the shared-group pattern:
    // one (∗) New; one Clone per produced value; each Clone pairs
    // with an Update and each passing site adds another; each
    // unproduced site is an Error; «cleanup» finalises (∗) and every
    // specialisation.
    let news = 1;
    let clones = THREADS * PRODUCED;
    let updates = 2 * THREADS * PRODUCED;
    let errors = THREADS * VIOLATIONS;
    let finalises = 1 + THREADS * PRODUCED;
    let m = t.metrics();

    assert_eq!(m.violations(), errors);
    assert_eq!(
        m.events_total(),
        news + clones + updates + errors + finalises
    );

    let snap = m.snapshot();
    let c = snap
        .classes
        .iter()
        .find(|c| c.class == id.0)
        .expect("class metrics");
    assert_eq!(c.news, news);
    assert_eq!(c.clones, clones);
    assert_eq!(c.updates, updates);
    assert_eq!(c.accepted + c.rejected, finalises);
    assert_eq!(c.live, 0);
    assert_eq!(c.high_watermark, 1 + THREADS * PRODUCED);

    // No-lost-counter: the independent CountingHandler saw the exact
    // same stream as the lock-free registry.
    assert_eq!(counting.news(), c.news);
    assert_eq!(counting.clones(), c.clones);
    assert_eq!(counting.updates(), c.updates);
    assert_eq!(counting.errors(), errors);
    assert_eq!(counting.accepted() + counting.rejected(), finalises);

    // Transition weights agree between both tables, and their total
    // equals the Update count (one edge firing per Update).
    let rw = m.weight_source(id.0).expect("registry weights");
    let cw = counting.weights().class(id.0).expect("counting weights");
    let rt: u64 = rw.nonzero().iter().map(|&(_, _, n)| n).sum();
    let ct: u64 = cw.nonzero().iter().map(|&(_, _, n)| n).sum();
    assert_eq!(rt, updates);
    assert_eq!(ct, updates);
    assert_eq!(rw.nonzero(), cw.nonzero());

    // Hook instrumentation totals are exact too.
    assert_eq!(m.hook_calls(HookKind::FnEntry), 1 + THREADS * PRODUCED);
    assert_eq!(m.hook_calls(HookKind::FnExit), 1 + THREADS * PRODUCED);
    assert_eq!(
        m.hook_calls(HookKind::AssertionSite),
        THREADS * (PRODUCED + VIOLATIONS)
    );
    // Latency histograms are sampled (one-in-N per thread): bounded
    // by the exact call count, and non-empty because each thread's
    // first hook is always sampled.
    let lat = m.hook_latency(HookKind::AssertionSite);
    assert!(lat.count > 0 && lat.count <= THREADS * (PRODUCED + VIOLATIONS));

    // The flight recorder captured the whole stream: every ring was
    // big enough, so nothing was overwritten and the merged snapshot
    // is the complete, timestamp-ordered event log.
    assert_eq!(recorder.overwritten(), 0);
    assert_eq!(recorder.total_recorded(), m.events_total());
    let log = recorder.snapshot();
    assert_eq!(log.len() as u64, m.events_total());
    assert!(log.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
    assert!(
        recorder.thread_count() >= 2,
        "worker threads got their own rings"
    );
}

/// Regression: the per-thread snapshot cache (one-slot active engine
/// plus the per-engine map) must never serve a *dropped* engine's
/// snapshot to a successor engine on the same thread — neither with
/// nor without an explicit `reset_thread_state` in between.
#[test]
fn dropped_engine_snapshot_cache_does_not_leak_into_successor() {
    fn drive_passing_cycle(t: &Tesla, id: tesla_runtime::ClassId, prefix: &str, v: u64) {
        let start = t.intern_fn(&format!("{prefix}_start"));
        let end = t.intern_fn(&format!("{prefix}_end"));
        let check = t.intern_fn(&format!("{prefix}_check"));
        t.fn_entry(start, &[]).unwrap();
        let args = [Value(v)];
        t.fn_entry(check, &args).unwrap();
        t.fn_exit(check, &args, Value(0)).unwrap();
        t.assertion_site(id, &[Value(v)]).unwrap();
        t.fn_exit(end, &[], Value(0)).unwrap();
    }

    // Engine A populates this thread's cache (hooks on this very
    // thread) and is then dropped mid-bound, with live instances and
    // a recorded violation in its snapshot.
    let a = log_engine();
    let a_class = {
        let spec = global_assertion("cache_a", "a_start", "a_end", "a_check");
        a.register(compile(&spec).unwrap()).unwrap()
    };
    drive_passing_cycle(&a, a_class, "a", 7);
    let start = a.intern_fn("a_start");
    a.fn_entry(start, &[]).unwrap();
    a.assertion_site(a_class, &[Value(999)]).unwrap(); // logged violation
    assert_eq!(a.violations().len(), 1);
    drop(a);

    // Engine B on the same thread, no reset: A's cached snapshot
    // (which *has* a class at a_class's index) must not answer for B,
    // whose snapshot has no classes yet.
    let b = log_engine();
    let err = b.assertion_site(a_class, &[Value(7)]).unwrap_err();
    assert_eq!(err.kind, ViolationKind::UnknownName);
    let b_class = {
        let spec = global_assertion("cache_b", "b_start", "b_end", "b_check");
        b.register(compile(&spec).unwrap()).unwrap()
    };
    drive_passing_cycle(&b, b_class, "b", 11);
    // B's verdicts are its own: A's logged violation did not carry
    // over, and B's bound was finalised cleanly.
    assert!(b.violations().is_empty());
    assert_eq!(b.live_instances_here(b_class), 0);
    drop(b);

    // Same again after an explicit thread-state reset: a fresh engine
    // must behave identically from a cold cache.
    tesla_runtime::engine::reset_thread_state();
    let c = log_engine();
    let err = c.assertion_site(a_class, &[Value(7)]).unwrap_err();
    assert_eq!(err.kind, ViolationKind::UnknownName);
    let c_class = {
        let spec = global_assertion("cache_c", "c_start", "c_end", "c_check");
        c.register(compile(&spec).unwrap()).unwrap()
    };
    drive_passing_cycle(&c, c_class, "c", 13);
    assert!(c.violations().is_empty());

    // And resetting *while an engine is live* only costs the cache:
    // the engine's own state (snapshot, stores, verdicts) survives.
    tesla_runtime::engine::reset_thread_state();
    drive_passing_cycle(&c, c_class, "c", 14);
    assert!(c.violations().is_empty());
}

/// A bounded recording handler under the same parallel load: the
/// buffer must stay at its cap, count its drops, and never lose the
/// *newest* events.
#[test]
fn bounded_recorder_caps_memory_under_parallel_load() {
    const THREADS: u64 = 4;
    const PRODUCED: u64 = 100;
    const CAP: usize = 64;
    let t = log_engine();
    let rec = Arc::new(tesla_runtime::RecordingHandler::bounded(CAP));
    t.add_handler(rec.clone());
    let a = global_assertion("bounded", "job_start", "job_end", "produce");
    let id = t.register(compile(&a).unwrap()).unwrap();
    let start = t.intern_fn("job_start");
    let end = t.intern_fn("job_end");
    let produce = t.intern_fn("produce");

    t.fn_entry(start, &[]).unwrap();
    let workers: Vec<_> = (0..THREADS)
        .map(|w| {
            let t = t.clone();
            std::thread::spawn(move || {
                for i in 0..PRODUCED {
                    let v = w * 1_000 + i;
                    let args = [Value(v)];
                    t.fn_entry(produce, &args).unwrap();
                    t.fn_exit(produce, &args, Value(0)).unwrap();
                    t.assertion_site(id, &[Value(v)]).unwrap();
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    t.fn_exit(end, &[], Value(0)).unwrap();

    // New + per-value (Clone + 2 Updates) + finalises.
    let total = 1 + 3 * THREADS * PRODUCED + (1 + THREADS * PRODUCED);
    assert_eq!(rec.len(), CAP);
    assert_eq!(rec.dropped(), total - CAP as u64);
    // The retained suffix is the newest CAP events: the very last
    // lifecycle event of the run («cleanup» finalisations) is there.
    let events = rec.events();
    assert!(events
        .iter()
        .any(|e| matches!(e, tesla_runtime::LifecycleEvent::Finalise { .. })));
}
