//! Behavioural tests for libtesla: the full §4.4 lifecycle driven
//! through the instrumentation hook API, including the paper's
//! figure-9 scenario, clone-on-specialise, bounds, contexts,
//! fail-stop vs log, guards, preallocation overflow and the
//! naive-vs-lazy initialisation equivalence.

use std::sync::Arc;
use tesla_automata::compile;
use tesla_runtime::{
    engine::reset_thread_state, Config, CountingHandler, FailMode, InitMode, RecordingHandler,
    Tesla, Violation, ViolationKind,
};
use tesla_spec::{call, field_assign, msg_send, AssertionBuilder, ExprBuilder, FieldOp, Value};

fn syscall_poll_engine(init: InitMode, fail: FailMode) -> (Tesla, tesla_runtime::ClassId) {
    let t = Tesla::new(Config {
        fail_mode: fail,
        init_mode: init,
        ..Config::default()
    });
    let a = AssertionBuilder::syscall()
        .named("mac_poll")
        .previously(
            call("mac_socket_check_poll")
                .any_ptr()
                .arg_var("so")
                .returns(0),
        )
        .build()
        .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    (t, id)
}

/// Run the fig. 9 scenario: enter syscall, optionally run the MAC
/// check (with `checked_so`), reach the assertion site with `site_so`,
/// exit the syscall.
fn poll_scenario(
    t: &Tesla,
    id: tesla_runtime::ClassId,
    checked_so: Option<u64>,
    site_so: Option<u64>,
) -> Result<(), Violation> {
    let syscall = t.intern_fn("amd64_syscall");
    let check = t.intern_fn("mac_socket_check_poll");
    t.fn_entry(syscall, &[Value(1), Value(2)])?;
    if let Some(so) = checked_so {
        let args = [Value(77), Value(so)];
        t.fn_entry(check, &args)?;
        t.fn_exit(check, &args, Value(0))?;
    }
    if let Some(so) = site_so {
        t.assertion_site(id, &[Value(so)])?;
    }
    t.fn_exit(syscall, &[Value(1), Value(2)], Value(0))
}

#[test]
fn previously_satisfied_accepts() {
    let (t, id) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
    assert!(poll_scenario(&t, id, Some(42), Some(42)).is_ok());
    assert!(t.violations().is_empty());
}

#[test]
fn previously_missing_is_site_violation() {
    let (t, id) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
    let err = poll_scenario(&t, id, None, Some(42)).unwrap_err();
    assert_eq!(err.kind, ViolationKind::Site);
    assert_eq!(err.assertion, "mac_poll");
}

#[test]
fn wrong_variable_value_is_a_violation() {
    // The §3.5.2 wrong-credential bug shape: a check ran, but for a
    // different object than the one at the assertion site.
    let (t, id) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
    let err = poll_scenario(&t, id, Some(42), Some(43)).unwrap_err();
    assert_eq!(err.kind, ViolationKind::Site);
    assert!(err.detail.contains("so=43"), "detail: {}", err.detail);
}

#[test]
fn check_after_site_does_not_satisfy_previously() {
    let (t, id) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
    let syscall = t.intern_fn("amd64_syscall");
    let check = t.intern_fn("mac_socket_check_poll");
    t.fn_entry(syscall, &[]).unwrap();
    let err = t.assertion_site(id, &[Value(9)]).unwrap_err();
    assert_eq!(err.kind, ViolationKind::Site);
    // Doing the check afterwards must not retroactively fix anything.
    let args = [Value(1), Value(9)];
    t.fn_entry(check, &args).unwrap();
    t.fn_exit(check, &args, Value(0)).unwrap();
}

#[test]
fn site_never_reached_is_bypass_acceptance() {
    let (t, id) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
    assert!(poll_scenario(&t, id, Some(42), None).is_ok());
    assert!(poll_scenario(&t, id, None, None).is_ok());
    assert!(t.violations().is_empty());
}

#[test]
fn events_outside_bound_are_ignored() {
    let (t, id) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
    let check = t.intern_fn("mac_socket_check_poll");
    // No syscall entered: the check and even the site are outside the
    // temporal bound — no instances exist, nothing to violate.
    let args = [Value(1), Value(5)];
    t.fn_entry(check, &args).unwrap();
    t.fn_exit(check, &args, Value(0)).unwrap();
    t.assertion_site(id, &[Value(5)]).unwrap();
    assert!(t.violations().is_empty());
}

#[test]
fn clones_specialise_per_socket() {
    let (t, id) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
    let syscall = t.intern_fn("amd64_syscall");
    let check = t.intern_fn("mac_socket_check_poll");
    t.fn_entry(syscall, &[]).unwrap();
    for so in [10u64, 20, 30] {
        let args = [Value(1), Value(so)];
        t.fn_entry(check, &args).unwrap();
        t.fn_exit(check, &args, Value(0)).unwrap();
    }
    // (∗) plus three specialised instances.
    assert_eq!(t.live_instances_here(id), 4);
    // Each specialised socket passes its own site.
    t.assertion_site(id, &[Value(20)]).unwrap();
    t.assertion_site(id, &[Value(10)]).unwrap();
    t.assertion_site(id, &[Value(30)]).unwrap();
    // An unchecked socket still fails.
    assert!(t.assertion_site(id, &[Value(40)]).is_err());
}

#[test]
fn duplicate_checks_do_not_duplicate_instances() {
    let (t, id) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
    let syscall = t.intern_fn("amd64_syscall");
    let check = t.intern_fn("mac_socket_check_poll");
    t.fn_entry(syscall, &[]).unwrap();
    for _ in 0..5 {
        let args = [Value(1), Value(7)];
        t.fn_entry(check, &args).unwrap();
        t.fn_exit(check, &args, Value(0)).unwrap();
    }
    assert_eq!(t.live_instances_here(id), 2); // (∗) and (so=7)
}

#[test]
fn failed_check_return_value_does_not_arm_the_automaton() {
    let (t, id) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
    let syscall = t.intern_fn("amd64_syscall");
    let check = t.intern_fn("mac_socket_check_poll");
    t.fn_entry(syscall, &[]).unwrap();
    let args = [Value(1), Value(7)];
    t.fn_entry(check, &args).unwrap();
    // Check ran but *failed* (EPERM): static return check == 0 fails.
    t.fn_exit(check, &args, Value::from_i64(13)).unwrap();
    let err = t.assertion_site(id, &[Value(7)]).unwrap_err();
    assert_eq!(err.kind, ViolationKind::Site);
}

fn eventually_engine(fail: FailMode) -> (Tesla, tesla_runtime::ClassId) {
    let t = Tesla::new(Config {
        fail_mode: fail,
        ..Config::default()
    });
    let a = AssertionBuilder::syscall()
        .named("sugid_flag")
        .eventually(
            field_assign("proc", "p_flag")
                .object_var("p")
                .op(FieldOp::OrAssign)
                .value_const(0x100u64),
        )
        .build()
        .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    (t, id)
}

#[test]
fn eventually_met_accepts() {
    let (t, id) = eventually_engine(FailMode::FailStop);
    let syscall = t.intern_fn("amd64_syscall");
    let (proc_s, p_flag) = (t.intern_struct("proc"), t.intern_field("p_flag"));
    t.fn_entry(syscall, &[]).unwrap();
    t.assertion_site(id, &[Value(55)]).unwrap();
    t.field_store(proc_s, p_flag, Value(55), FieldOp::OrAssign, Value(0x100))
        .unwrap();
    t.fn_exit(syscall, &[], Value(0)).unwrap();
    assert!(t.violations().is_empty());
}

#[test]
fn eventually_unmet_fails_at_cleanup() {
    let (t, id) = eventually_engine(FailMode::FailStop);
    let syscall = t.intern_fn("amd64_syscall");
    t.fn_entry(syscall, &[]).unwrap();
    t.assertion_site(id, &[Value(55)]).unwrap();
    let err = t.fn_exit(syscall, &[], Value(0)).unwrap_err();
    assert_eq!(err.kind, ViolationKind::Cleanup);
    assert_eq!(err.assertion, "sugid_flag");
}

#[test]
fn eventually_wrong_object_fails_at_cleanup() {
    let (t, id) = eventually_engine(FailMode::FailStop);
    let syscall = t.intern_fn("amd64_syscall");
    let (proc_s, p_flag) = (t.intern_struct("proc"), t.intern_field("p_flag"));
    t.fn_entry(syscall, &[]).unwrap();
    t.assertion_site(id, &[Value(55)]).unwrap();
    // Flag set on a *different* process.
    t.field_store(proc_s, p_flag, Value(56), FieldOp::OrAssign, Value(0x100))
        .unwrap();
    let err = t.fn_exit(syscall, &[], Value(0)).unwrap_err();
    assert_eq!(err.kind, ViolationKind::Cleanup);
}

#[test]
fn field_op_must_match() {
    let (t, id) = eventually_engine(FailMode::FailStop);
    let syscall = t.intern_fn("amd64_syscall");
    let (proc_s, p_flag) = (t.intern_struct("proc"), t.intern_field("p_flag"));
    t.fn_entry(syscall, &[]).unwrap();
    t.assertion_site(id, &[Value(55)]).unwrap();
    // Plain assignment is not the asserted |= event.
    t.field_store(proc_s, p_flag, Value(55), FieldOp::Assign, Value(0x100))
        .unwrap();
    assert!(t.fn_exit(syscall, &[], Value(0)).is_err());
}

#[test]
fn log_mode_collects_and_continues() {
    let (t, id) = syscall_poll_engine(InitMode::Lazy, FailMode::Log);
    assert!(poll_scenario(&t, id, None, Some(42)).is_ok());
    assert!(poll_scenario(&t, id, None, Some(43)).is_ok());
    let vs = t.violations();
    assert_eq!(vs.len(), 2);
    assert!(vs.iter().all(|v| v.kind == ViolationKind::Site));
    t.clear_violations();
    assert!(t.violations().is_empty());
}

#[test]
fn naive_and_lazy_agree_on_verdicts() {
    // Drive both engines through the same mixed trace and compare.
    for (checked, site, expect_err) in [
        (Some(1u64), Some(1u64), false),
        (Some(1), Some(2), true),
        (None, Some(1), true),
        (Some(1), None, false),
        (None, None, false),
    ] {
        let (tn, idn) = syscall_poll_engine(InitMode::Naive, FailMode::FailStop);
        let (tl, idl) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
        let rn = poll_scenario(&tn, idn, checked, site);
        let rl = poll_scenario(&tl, idl, checked, site);
        assert_eq!(rn.is_err(), expect_err, "naive {checked:?} {site:?}");
        assert_eq!(rl.is_err(), expect_err, "lazy {checked:?} {site:?}");
        assert_eq!(rn.err().map(|v| v.kind), rl.err().map(|v| v.kind));
    }
}

#[test]
fn naive_mode_creates_instances_eagerly() {
    let (t, id) = syscall_poll_engine(InitMode::Naive, FailMode::FailStop);
    let syscall = t.intern_fn("amd64_syscall");
    t.fn_entry(syscall, &[]).unwrap();
    assert_eq!(t.live_instances_here(id), 1); // (∗) exists already
    t.fn_exit(syscall, &[], Value(0)).unwrap();
    assert_eq!(t.live_instances_here(id), 0);

    let (t2, id2) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
    let syscall2 = t2.intern_fn("amd64_syscall");
    t2.fn_entry(syscall2, &[]).unwrap();
    assert_eq!(t2.live_instances_here(id2), 0); // lazy: nothing yet
    t2.fn_exit(syscall2, &[], Value(0)).unwrap();
}

#[test]
fn recursive_bound_entries_nest() {
    let t = Tesla::with_defaults();
    let a = AssertionBuilder::within("walker")
        .named("rec")
        .previously(call("prep").returns(0))
        .build()
        .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    let walker = t.intern_fn("walker");
    let prep = t.intern_fn("prep");
    // Outer enter, prep, inner enter+exit (must not expunge), site ok.
    t.fn_entry(walker, &[]).unwrap();
    t.fn_entry(prep, &[]).unwrap();
    t.fn_exit(prep, &[], Value(0)).unwrap();
    t.fn_entry(walker, &[]).unwrap();
    t.fn_exit(walker, &[], Value(0)).unwrap();
    t.assertion_site(id, &[]).unwrap();
    t.fn_exit(walker, &[], Value(0)).unwrap();
    assert!(t.violations().is_empty());
}

#[test]
fn incallstack_guard_consults_shadow_stack() {
    let t = Tesla::with_defaults();
    let a = AssertionBuilder::syscall()
        .named("ufs_read_paths")
        .body(
            ExprBuilder::in_callstack("ufs_readdir").or(ExprBuilder::from(
                call("mac_vnode_check_read")
                    .any_ptr()
                    .arg_var("vp")
                    .returns(0),
            )
            .then(ExprBuilder::site())),
        )
        .build()
        .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    let syscall = t.intern_fn("amd64_syscall");
    let readdir = t.intern_fn("ufs_readdir");

    // Inside ufs_readdir: guard passes without any MAC check.
    t.fn_entry(syscall, &[]).unwrap();
    t.fn_entry(readdir, &[]).unwrap();
    t.assertion_site(id, &[Value(3)]).unwrap();
    t.fn_exit(readdir, &[], Value(0)).unwrap();
    t.fn_exit(syscall, &[], Value(0)).unwrap();

    // Outside it, with no check: violation.
    t.fn_entry(syscall, &[]).unwrap();
    let err = t.assertion_site(id, &[Value(3)]).unwrap_err();
    assert_eq!(err.kind, ViolationKind::Site);
    let _ = t.fn_exit(syscall, &[], Value(0));
}

#[test]
fn message_events_flow_like_functions() {
    let t = Tesla::with_defaults();
    let a = AssertionBuilder::within("run_loop_iteration")
        .named("push_before_draw")
        .previously(msg_send("push").receiver_var("cur"))
        .build()
        .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    let rl = t.intern_fn("run_loop_iteration");
    let push = t.intern_selector("push");
    t.fn_entry(rl, &[]).unwrap();
    t.msg_entry(push, Value(5), &[]).unwrap();
    t.assertion_site(id, &[Value(5)]).unwrap();
    assert!(t.assertion_site(id, &[Value(6)]).is_err());
    let _ = t.fn_exit(rl, &[], Value(0));
}

#[test]
fn overflow_is_reported_not_silent() {
    let t = Tesla::new(Config {
        instance_capacity: 3,
        ..Config::default()
    });
    let counting = Arc::new(CountingHandler::new());
    t.add_handler(counting.clone());
    let a = AssertionBuilder::syscall()
        .named("tiny")
        .previously(call("check").arg_var("x").returns(0))
        .build()
        .unwrap();
    t.register(compile(&a).unwrap()).unwrap();
    let syscall = t.intern_fn("amd64_syscall");
    let check = t.intern_fn("check");
    t.fn_entry(syscall, &[]).unwrap();
    // (∗) + 2 clones fill the table; the rest overflow.
    for x in 0..10u64 {
        let args = [Value(x)];
        t.fn_entry(check, &args).unwrap();
        t.fn_exit(check, &args, Value(0)).unwrap();
    }
    t.fn_exit(syscall, &[], Value(0)).unwrap();
    assert_eq!(counting.overflows(), 8);
    assert_eq!(counting.clones(), 2);
}

#[test]
fn counting_handler_weights_transitions() {
    let (t, id) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
    let counting = Arc::new(CountingHandler::new());
    t.add_handler(counting.clone());
    for _ in 0..5 {
        poll_scenario(&t, id, Some(42), Some(42)).unwrap();
    }
    let defs = t.class_defs();
    let auto = &defs[0].automaton;
    let check_sym = auto
        .symbols
        .iter()
        .find(|s| s.kind.to_string().contains("mac_socket_check_poll"))
        .unwrap()
        .id;
    assert_eq!(counting.symbol_count(0, check_sym), 5);
    assert_eq!(counting.symbol_count(0, auto.site_sym), 5);
    assert!(counting.covered_symbols(0).contains(&auto.site_sym));
}

#[test]
fn strict_automata_reject_unexpected_events() {
    let t = Tesla::with_defaults();
    let a = AssertionBuilder::within("f")
        .named("strict_seq")
        .previously(
            ExprBuilder::from(call("a").returns(0))
                .then(call("b").returns(0))
                .strict(),
        )
        .build()
        .unwrap();
    t.register(compile(&a).unwrap()).unwrap();
    let f = t.intern_fn("f");
    let (fa, fb) = (t.intern_fn("a"), t.intern_fn("b"));
    t.fn_entry(f, &[]).unwrap();
    t.fn_entry(fa, &[]).unwrap();
    t.fn_exit(fa, &[], Value(0)).unwrap();
    t.fn_entry(fb, &[]).unwrap();
    t.fn_exit(fb, &[], Value(0)).unwrap();
    // b again, out of order: strict violation.
    t.fn_entry(fb, &[]).unwrap();
    let err = t.fn_exit(fb, &[], Value(0)).unwrap_err();
    assert_eq!(err.kind, ViolationKind::Strict);
}

#[test]
fn flags_and_bitmask_static_checks_gate_dispatch() {
    let t = Tesla::with_defaults();
    let a = AssertionBuilder::within("f")
        .named("flagged")
        .previously(call("io").arg_var("vp").arg_flags(0x80).returns(0))
        .build()
        .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    let f = t.intern_fn("f");
    let io = t.intern_fn("io");
    t.fn_entry(f, &[]).unwrap();
    // Flag missing: event does not arm the automaton.
    t.fn_entry(io, &[Value(9), Value(0x01)]).unwrap();
    t.fn_exit(io, &[Value(9), Value(0x01)], Value(0)).unwrap();
    assert!(t.assertion_site(id, &[Value(9)]).is_err());
    let _ = t.fn_exit(f, &[], Value(0));

    // Flag present (among others): arms.
    t.fn_entry(f, &[]).unwrap();
    t.fn_entry(io, &[Value(9), Value(0x81)]).unwrap();
    t.fn_exit(io, &[Value(9), Value(0x81)], Value(0)).unwrap();
    t.assertion_site(id, &[Value(9)]).unwrap();
    t.fn_exit(f, &[], Value(0)).unwrap();
}

#[test]
fn global_context_spans_threads() {
    let t = Arc::new(Tesla::with_defaults());
    let a = AssertionBuilder::bounded(
        tesla_spec::StaticEvent::Call("job_start".into()),
        tesla_spec::StaticEvent::ReturnFrom("job_end".into()),
    )
    .global()
    .named("cross_thread")
    .previously(call("produce").arg_var("item").returns(0))
    .build()
    .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    let start = t.intern_fn("job_start");
    let end = t.intern_fn("job_end");
    let produce = t.intern_fn("produce");

    t.fn_entry(start, &[]).unwrap();
    // Producer thread emits the event; consumer thread asserts.
    let tp = t.clone();
    std::thread::spawn(move || {
        let args = [Value(7)];
        tp.fn_entry(produce, &args).unwrap();
        tp.fn_exit(produce, &args, Value(0)).unwrap();
    })
    .join()
    .unwrap();
    let tc = t.clone();
    std::thread::spawn(move || {
        tc.assertion_site(id, &[Value(7)]).unwrap();
    })
    .join()
    .unwrap();
    t.fn_exit(end, &[], Value(0)).unwrap();
    assert!(t.violations().is_empty());
}

#[test]
fn per_thread_context_isolates_threads() {
    let t = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        ..Config::default()
    }));
    let a = AssertionBuilder::syscall()
        .named("thread_local_check")
        .previously(call("check").arg_var("x").returns(0))
        .build()
        .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    let syscall = t.intern_fn("amd64_syscall");
    let check = t.intern_fn("check");

    // Thread A performs the check inside its own syscall...
    let ta = t.clone();
    std::thread::spawn(move || {
        ta.fn_entry(syscall, &[]).unwrap();
        let args = [Value(7)];
        ta.fn_entry(check, &args).unwrap();
        ta.fn_exit(check, &args, Value(0)).unwrap();
        // Not exiting the syscall: the thread dies with state local.
    })
    .join()
    .unwrap();
    // ...thread B (this one) must not see it.
    t.fn_entry(syscall, &[]).unwrap();
    t.assertion_site(id, &[Value(7)]).unwrap(); // Log mode: no Err
    let _ = t.fn_exit(syscall, &[], Value(0));
    assert_eq!(t.violations().len(), 1);
    reset_thread_state();
}

#[test]
fn coverage_reports_unexercised_assertions() {
    let (t, id) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
    // A second assertion that is never exercised.
    let a2 = AssertionBuilder::syscall()
        .named("never_run")
        .previously(call("some_other_check").returns(0))
        .build()
        .unwrap();
    t.register(compile(&a2).unwrap()).unwrap();
    poll_scenario(&t, id, Some(1), Some(1)).unwrap();
    let cov = t.coverage();
    assert_eq!(cov.len(), 2);
    let by_name: std::collections::HashMap<_, _> = cov
        .into_iter()
        .map(|(n, hits, viols)| (n, (hits, viols)))
        .collect();
    assert_eq!(by_name["mac_poll"].0, 1);
    assert_eq!(by_name["never_run"].0, 0);
}

#[test]
fn recording_handler_sees_full_lifecycle() {
    let (t, id) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
    let rec = Arc::new(RecordingHandler::new());
    t.add_handler(rec.clone());
    poll_scenario(&t, id, Some(42), Some(42)).unwrap();
    let evs = rec.events();
    use tesla_runtime::LifecycleEvent as E;
    assert!(evs.iter().any(|e| matches!(e, E::New { .. })));
    assert!(evs.iter().any(|e| matches!(e, E::Clone { .. })));
    assert!(evs.iter().any(|e| matches!(e, E::Update { .. })));
    assert!(evs
        .iter()
        .any(|e| matches!(e, E::Finalise { accepted: true, .. })));
}

#[test]
fn or_assertion_accepts_either_check_at_runtime() {
    // The fig. 7 ufs_open disjunction, end to end.
    let t = Tesla::with_defaults();
    let a = AssertionBuilder::syscall()
        .named("ufs_open")
        .previously(
            ExprBuilder::from(
                call("mac_kld_check_load")
                    .any_ptr()
                    .arg_var("vp")
                    .returns(0),
            )
            .or(call("mac_vnode_check_exec")
                .any_ptr()
                .arg_var("vp")
                .returns(0))
            .or(call("mac_vnode_check_open")
                .any_ptr()
                .arg_var("vp")
                .any("int")
                .returns(0)),
        )
        .build()
        .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    let syscall = t.intern_fn("amd64_syscall");
    for check in [
        "mac_kld_check_load",
        "mac_vnode_check_exec",
        "mac_vnode_check_open",
    ] {
        let c = t.intern_fn(check);
        t.fn_entry(syscall, &[]).unwrap();
        let args = [Value(1), Value(5), Value(0)];
        t.fn_entry(c, &args).unwrap();
        t.fn_exit(c, &args, Value(0)).unwrap();
        t.assertion_site(id, &[Value(5)]).unwrap();
        t.fn_exit(syscall, &[], Value(0)).unwrap();
    }
    // None of them: violation.
    t.fn_entry(syscall, &[]).unwrap();
    assert!(t.assertion_site(id, &[Value(5)]).is_err());
}

#[test]
fn multiple_classes_share_a_bound_group() {
    let (t, id1) = syscall_poll_engine(InitMode::Naive, FailMode::FailStop);
    let a2 = AssertionBuilder::syscall()
        .named("second")
        .previously(call("other_check").arg_var("y").returns(0))
        .build()
        .unwrap();
    let id2 = t.register(compile(&a2).unwrap()).unwrap();
    let syscall = t.intern_fn("amd64_syscall");
    t.fn_entry(syscall, &[]).unwrap();
    // Naive mode materialises both eagerly.
    assert_eq!(t.live_instances_here(id1), 1);
    assert_eq!(t.live_instances_here(id2), 1);
    t.fn_exit(syscall, &[], Value(0)).unwrap();
    assert_eq!(t.live_instances_here(id1), 0);
    assert_eq!(t.live_instances_here(id2), 0);
}

// ---------------------------------------------------------------------
// §7 "free variables": variables bound only by events, never by the
// assertion site. The site passes values for its scope prefix only;
// event-bound variables constrain later events through the instance's
// binding, exactly like the function-pointer use case the paper
// sketches.
// ---------------------------------------------------------------------

#[test]
fn free_variables_bind_through_events_only() {
    let t = Tesla::with_defaults();
    // Within a request: a handle is allocated (binding `h` from the
    // *return value*), the site is passed with no scope values, and
    // the same handle must eventually be released.
    let a = AssertionBuilder::within("request")
        .named("handle_lifecycle")
        .body(
            ExprBuilder::from(call("alloc_handle").returns_var("h"))
                .then(ExprBuilder::site())
                .then(call("release_handle").arg_var("h").returns(0)),
        )
        .build()
        .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    let request = t.intern_fn("request");
    let alloc = t.intern_fn("alloc_handle");
    let release = t.intern_fn("release_handle");

    // Correct: release the handle alloc returned.
    t.fn_entry(request, &[]).unwrap();
    t.fn_entry(alloc, &[]).unwrap();
    t.fn_exit(alloc, &[], Value(77)).unwrap();
    t.assertion_site(id, &[]).unwrap(); // no site-scope values: h is free
    t.fn_entry(release, &[Value(77)]).unwrap();
    t.fn_exit(release, &[Value(77)], Value(0)).unwrap();
    t.fn_exit(request, &[], Value(0)).unwrap();
    assert!(t.violations().is_empty());

    // Wrong: release a *different* handle — the free variable's
    // binding (h=77) rejects 78, and cleanup reports the pending
    // obligation.
    t.fn_entry(request, &[]).unwrap();
    t.fn_entry(alloc, &[]).unwrap();
    t.fn_exit(alloc, &[], Value(77)).unwrap();
    t.assertion_site(id, &[]).unwrap();
    t.fn_entry(release, &[Value(78)]).unwrap();
    t.fn_exit(release, &[Value(78)], Value(0)).unwrap();
    let err = t.fn_exit(request, &[], Value(0)).unwrap_err();
    assert_eq!(err.kind, ViolationKind::Cleanup);
}

#[test]
fn free_variables_track_function_pointer_identity() {
    // The §7 motivating case: assert that the function pointer that
    // was *registered* is the one that gets *invoked*, where the
    // pointer value is never in the assertion site's scope.
    let t = Tesla::with_defaults();
    let a = AssertionBuilder::within("dispatch_loop")
        .named("fp_registered_before_use")
        .previously(
            ExprBuilder::from(call("register_cb").arg_var("fp").returns(0))
                .then(call("invoke_cb").arg_var("fp").returns(0)),
        )
        .build()
        .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    let (loop_fn, reg, inv) = (
        t.intern_fn("dispatch_loop"),
        t.intern_fn("register_cb"),
        t.intern_fn("invoke_cb"),
    );

    let run = |registered: u64, invoked: u64| -> Result<(), tesla_runtime::Violation> {
        t.fn_entry(loop_fn, &[])?;
        t.fn_entry(reg, &[Value(registered)])?;
        t.fn_exit(reg, &[Value(registered)], Value(0))?;
        t.fn_entry(inv, &[Value(invoked)])?;
        t.fn_exit(inv, &[Value(invoked)], Value(0))?;
        t.assertion_site(id, &[])?;
        t.fn_exit(loop_fn, &[], Value(0))?;
        Ok(())
    };
    run(0x1000, 0x1000).unwrap();
    // Invoking a pointer that was never registered: the sequence
    // [register(fp), invoke(fp)] never completed for any binding.
    let err = run(0x1000, 0x2000).unwrap_err();
    assert_eq!(err.kind, ViolationKind::Site);
    tesla_runtime::engine::reset_thread_state();
}

#[test]
fn late_registration_extends_dispatch_tables() {
    // Classes may be registered while the engine is already
    // processing events (the paper's "developers would only run with
    // a subset of assertions enabled" workflow implies dynamic sets).
    let (t, id1) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
    poll_scenario(&t, id1, Some(1), Some(1)).unwrap();
    // Register a second class now.
    let a2 = AssertionBuilder::syscall()
        .named("late")
        .previously(call("late_check").arg_var("y").returns(0))
        .build()
        .unwrap();
    let id2 = t.register(compile(&a2).unwrap()).unwrap();
    let syscall = t.intern_fn("amd64_syscall");
    let late = t.intern_fn("late_check");
    t.fn_entry(syscall, &[]).unwrap();
    let args = [Value(9)];
    t.fn_entry(late, &args).unwrap();
    t.fn_exit(late, &args, Value(0)).unwrap();
    t.assertion_site(id2, &[Value(9)]).unwrap();
    t.fn_exit(syscall, &[], Value(0)).unwrap();
    // The first class still works too.
    poll_scenario(&t, id1, Some(2), Some(2)).unwrap();
    assert!(t.violations().is_empty());
}

// ---------------------------------------------------------------------
// Regression tests for hot-path ordering and lifecycle bugs.
// ---------------------------------------------------------------------

#[test]
fn incallstack_guard_sees_guarded_fns_own_exit() {
    // Regression: `fn_exit` used to pop the shadow call stack *before*
    // running exit translators, so an `incallstack(f)` guard on a
    // transition consumed during `f`'s own exit event evaluated to
    // false — asymmetric with the entry event, which pushes before
    // translators run. The spec surface only attaches guards to site
    // transitions, so compile a normal assertion and patch the guard
    // onto the helper's exit-event transition, exactly what a future
    // guarded-event lowering would emit.
    use tesla_automata::{Direction, Guard, SymbolKind};
    let t = Tesla::with_defaults();
    let a = AssertionBuilder::within("g")
        .named("exit_guard")
        .previously(call("helper").returns(0))
        .build()
        .unwrap();
    let mut auto = compile(&a).unwrap();
    let exit_sym = auto
        .symbols
        .iter()
        .find(|s| {
            matches!(
                &s.kind,
                SymbolKind::Function { name, direction: Direction::Exit, .. } if name == "helper"
            )
        })
        .unwrap()
        .id;
    for tr in &mut auto.transitions {
        if tr.sym == exit_sym {
            tr.guard = Some(Guard::InCallStack("helper".into()));
        }
    }
    let id = t.register(auto).unwrap();
    let g = t.intern_fn("g");
    let helper = t.intern_fn("helper");
    t.fn_entry(g, &[]).unwrap();
    t.fn_entry(helper, &[]).unwrap();
    // The guard must see `helper` on the stack while its own exit
    // translators run.
    t.fn_exit(helper, &[], Value(0)).unwrap();
    t.assertion_site(id, &[]).unwrap();
    t.fn_exit(g, &[], Value(0)).unwrap();
    assert!(t.violations().is_empty());
}

#[test]
fn strict_violation_keeps_clones_queued_by_earlier_instances() {
    // Regression: a strict-mode violation used to return from
    // `Store::apply_event` before committing clones queued by earlier
    // instances in the same event, so Log-mode callers lost
    // specialisations that later events should still observe.
    let t = Tesla::new(Config {
        fail_mode: FailMode::Log,
        ..Config::default()
    });
    // `xor` makes the branches exclusive: once an instance has taken
    // the `b` branch, `a` has no transition from its state.
    let a = AssertionBuilder::within("g")
        .named("strict_clones")
        .previously(
            ExprBuilder::from(call("a").arg_var("x").entry())
                .xor(call("b").arg_var("y").entry())
                .strict(),
        )
        .build()
        .unwrap();
    let id = t.register(compile(&a).unwrap()).unwrap();
    let g = t.intern_fn("g");
    let (fa, fb) = (t.intern_fn("a"), t.intern_fn("b"));
    t.fn_entry(g, &[]).unwrap();
    // b(9): (∗) specialises to (y=9) down the `b` branch.
    t.fn_entry(fb, &[Value(9)]).unwrap();
    assert_eq!(t.live_instances_here(id), 2);
    // a(1): slot 0, (∗), queues the clone (x=1); then slot 1, (y=9),
    // is binding-compatible (x is unknown to it) but its branch has
    // no transition on `a` — a strict violation. The clone queued
    // before the violation must still be committed.
    t.fn_entry(fa, &[Value(1)]).unwrap();
    let vs = t.violations();
    assert_eq!(vs.len(), 1);
    assert_eq!(vs[0].kind, ViolationKind::Strict);
    assert_eq!(
        t.live_instances_here(id),
        3,
        "the clone queued before the strict violation must survive"
    );
}

#[test]
fn stale_instances_cleared_on_epoch_change() {
    // Regression: `Store::materialize` used to push a fresh (∗)
    // without clearing instances left from a prior epoch that was
    // never finalised (a scope abandoned by an unbalanced bound exit
    // or a fail-stop), and hardcoded the lifecycle slot index to 0.
    // Modelled directly on the store: the engine's own bookkeeping
    // keeps entries/exits balanced, but an abandoned store must not
    // leak old-epoch instances into the new scope.
    use std::sync::atomic::AtomicU64;
    use tesla_runtime::engine::ClassDef;
    use tesla_runtime::store::Store;
    let a = AssertionBuilder::within("g")
        .named("stale")
        .previously(call("c").arg_var("x").returns(0))
        .build()
        .unwrap();
    let auto = compile(&a).unwrap();
    let check_sym = auto
        .symbols
        .iter()
        .find(
            |s| matches!(&s.kind, tesla_automata::SymbolKind::Function { name, .. } if name == "c"),
        )
        .unwrap()
        .id;
    let def = ClassDef {
        automaton: Arc::new(auto),
        compiled: None,
        group: 0,
        capacity: 8,
        site_hits: AtomicU64::new(0),
        violation_count: AtomicU64::new(0),
        guard_fns: Vec::new(),
        quota: None,
        eviction: tesla_runtime::EvictionPolicy::default(),
        degraded_sample: 4,
    };
    let mut store = Store::default();
    store.ensure(1, 1);
    let metrics = tesla_runtime::MetricsRegistry::new();
    let no_handlers: Vec<Arc<dyn tesla_runtime::EventHandler>> = vec![];
    let silent = tesla_runtime::Dispatch::new(&no_handlers, &metrics, None);
    // Epoch 1: the bound is entered, the class materialises and
    // specialises on c(x=5).
    store.groups[0].depth = 1;
    store.groups[0].epoch = 1;
    store.materialize(0, &def, &silent);
    store.apply_event(
        0,
        &def,
        check_sym,
        &[(0, Value(5))],
        false,
        &mut |_| true,
        &silent,
    );
    assert_eq!(store.live_instances(0), 2);
    // The scope is abandoned without finalisation; the next outermost
    // bound entry starts epoch 2.
    store.groups[0].epoch = 2;
    store.groups[0].materialized.clear();
    let rec = Arc::new(RecordingHandler::new());
    let handlers: Vec<Arc<dyn tesla_runtime::EventHandler>> = vec![rec.clone()];
    let recording = tesla_runtime::Dispatch::new(&handlers, &metrics, None);
    store.materialize(0, &def, &recording);
    assert_eq!(
        store.live_instances(0),
        1,
        "epoch-1 instances must not leak into epoch 2"
    );
    // The abandoned epoch-1 instances are *reclaimed* (each reported
    // as `Evicted`, keeping the live gauge exact), then the lifecycle
    // event reports the slot the new (∗) actually landed in.
    let evs = rec.events();
    assert_eq!(evs.len(), 3, "got {evs:?}");
    assert!(
        matches!(
            evs[0],
            tesla_runtime::LifecycleEvent::Evicted {
                class: 0,
                instance: 0
            }
        ),
        "got {:?}",
        evs[0]
    );
    assert!(
        matches!(
            evs[1],
            tesla_runtime::LifecycleEvent::Evicted {
                class: 0,
                instance: 1
            }
        ),
        "got {:?}",
        evs[1]
    );
    assert!(
        matches!(
            evs[2],
            tesla_runtime::LifecycleEvent::New {
                class: 0,
                instance: 0
            }
        ),
        "got {:?}",
        evs[2]
    );
}

#[test]
fn violation_messages_carry_actionable_context() {
    let (t, id) = syscall_poll_engine(InitMode::Lazy, FailMode::FailStop);
    let err = poll_scenario(&t, id, Some(41), Some(42)).unwrap_err();
    let msg = err.to_string();
    // Assertion name, source form and the offending binding are all
    // in the fail-stop message a developer sees.
    assert!(msg.contains("mac_poll"), "{msg}");
    assert!(msg.contains("mac_socket_check_poll"), "{msg}");
    assert!(msg.contains("so=42"), "{msg}");
}
