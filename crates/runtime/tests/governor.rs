//! Engine-level properties of the adaptive overhead governor.
//!
//! The exact levels (1–7) must leave violation detection byte-for-byte
//! identical to an ungoverned run: they shed *observation* (latency
//! sampling, update notifications), never automaton work. The shed
//! levels (8–10, `allow_shed`) reuse degraded-mode soundness — a
//! suppressed check downgrades to `Shed`, never to a false verdict in
//! either direction.

use std::sync::Arc;
use tesla_automata::compile;
use tesla_runtime::{Config, FailMode, GovernorConfig, Tesla};
use tesla_spec::{call, AssertionBuilder, Value};

fn governed_assertion() -> tesla_spec::Assertion {
    AssertionBuilder::within("txn")
        .named("governor/checked-before-use")
        .previously(call("check").arg_var("x").returns(0))
        .build()
        .unwrap()
}

fn engine(governor: Option<GovernorConfig>) -> Arc<Tesla> {
    Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        telemetry: true,
        governor,
        ..Config::default()
    }))
}

/// Healthy traffic with seeded violating sites: every 43rd iteration
/// reaches the assertion site with a value `check` never blessed.
fn drive(t: &Tesla, iters: u64) -> Vec<String> {
    let id = t.register(compile(&governed_assertion()).unwrap()).unwrap();
    let txn = t.intern_fn("txn");
    let check = t.intern_fn("check");
    for i in 0..iters {
        let _ = t.fn_entry(txn, &[]);
        let x = Value(i % 8);
        let _ = t.fn_entry(check, &[x]);
        let _ = t.fn_exit(check, &[x], Value(0));
        let _ = t.assertion_site(id, &[x]);
        if i % 43 == 0 {
            let _ = t.assertion_site(id, &[Value(50_000 + i)]);
        }
        let _ = t.fn_exit(txn, &[], Value(0));
    }
    t.violations().iter().map(|v| v.to_string()).collect()
}

#[test]
fn exact_levels_keep_violations_byte_identical() {
    tesla_runtime::engine::reset_thread_state();
    let base = engine(None);
    let baseline = drive(&base, 6_000);
    assert!(!baseline.is_empty(), "workload must produce violations");

    tesla_runtime::engine::reset_thread_state();
    // A 1.05x SLO against a hook-dominated loop: the controller is
    // forced up the ladder, and without `allow_shed` must stop at the
    // exact ceiling.
    let gov = engine(Some(GovernorConfig {
        slo_milli: 1050,
        tick_events: 64,
        allow_shed: false,
    }));
    let governed = drive(&gov, 6_000);

    let g = gov.governor().expect("governor configured");
    assert!(g.level() > 0, "controller never escalated");
    assert!(
        g.level() <= 7,
        "exact ceiling breached: level {}",
        g.level()
    );
    assert_eq!(g.shed_period(), 0, "clone shedding without allow_shed");
    assert!(!g.decisions().is_empty());
    assert_eq!(
        baseline, governed,
        "exact governor levels changed the violation list"
    );
}

#[test]
fn allow_shed_suppresses_checks_but_never_fabricates_violations() {
    tesla_runtime::engine::reset_thread_state();
    let gov = engine(Some(GovernorConfig {
        slo_milli: 1001,
        tick_events: 1,
        allow_shed: true,
    }));
    // Healthy workload only: every site is genuinely satisfiable, so
    // any violation would be a false positive introduced by shedding.
    let id = gov
        .register(compile(&governed_assertion()).unwrap())
        .unwrap();
    let txn = gov.intern_fn("txn");
    let check = gov.intern_fn("check");
    for i in 0..4_000u64 {
        let _ = gov.fn_entry(txn, &[]);
        let x = Value(i % 16);
        let _ = gov.fn_entry(check, &[x]);
        let _ = gov.fn_exit(check, &[x], Value(0));
        let _ = gov.assertion_site(id, &[x]);
        let _ = gov.fn_exit(txn, &[], Value(0));
    }
    let g = gov.governor().expect("governor configured");
    assert!(
        g.level() > 7,
        "tick-per-event at a 1.001x SLO must reach the shed levels (level {})",
        g.level()
    );
    assert!(g.shed_period() > 0);
    let snap = gov.metrics().snapshot();
    let shed: u64 = snap.classes.iter().map(|c| c.shed).sum();
    assert!(shed > 0, "shed levels engaged but nothing was shed");
    assert!(
        gov.violations().is_empty(),
        "governor shedding fabricated violations: {:?}",
        gov.violations()
    );
}

#[test]
fn governor_reporting_surfaces_are_populated() {
    tesla_runtime::engine::reset_thread_state();
    let gov = engine(Some(GovernorConfig {
        slo_milli: 1050,
        tick_events: 32,
        allow_shed: false,
    }));
    drive(&gov, 2_000);
    let g = gov.governor().unwrap();
    let est = g.estimate_overhead_milli(gov.metrics());
    assert!(est >= 1000, "overhead estimate below 1.0x: {est}");
    assert!(g.events() > 0);
    let rendered = g.render_decisions();
    assert!(
        rendered.contains("govern: event"),
        "decision log empty or unrendered: {rendered:?}"
    );
    // The adjusted sampling periods surface in the metrics snapshot
    // (and from there in the Prometheus export).
    let snap = gov.metrics().snapshot();
    assert!(
        snap.hooks.iter().any(|h| h.sample_period > 64),
        "escalation never widened a sampling period"
    );
}
