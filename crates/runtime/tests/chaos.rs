//! Seeded fault-injection properties (the chaos harness).
//!
//! For *any* seeded [`FaultPlan`] the engine must degrade, never
//! fail: no panic unwinds into the caller, the live-instance gauge
//! never exceeds the configured quota, and every absorbed fault is
//! reported — the plan's injected/absorbed ledger balances and the
//! `tesla_faults_absorbed_total` metric equals the injected count.

use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use tesla_automata::compile;
use tesla_runtime::{
    Config, EvictionPolicy, FailMode, FaultPlan, FaultSpec, MetricsSnapshot, Tesla,
};
use tesla_spec::{call, AssertionBuilder, StaticEvent, Value};

const QUOTA: usize = 8;

fn chaos_assertion() -> tesla_spec::Assertion {
    AssertionBuilder::bounded(
        StaticEvent::Call("job_start".to_string()),
        StaticEvent::ReturnFrom("job_end".to_string()),
    )
    .global()
    .named("chaos")
    .previously(call("produce").arg_var("v").returns(0))
    .build()
    .unwrap()
}

fn chaos_engine(seed: u64, spec: FaultSpec) -> Arc<Tesla> {
    Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        instance_capacity: 64,
        max_instances: Some(QUOTA),
        eviction: EvictionPolicy::Lru,
        degraded_sample: 4,
        telemetry: true,
        faults: Some(Arc::new(FaultPlan::new(seed, spec))),
        ..Config::default()
    }))
}

/// A deterministic single-threaded workload: four bound scopes, each
/// specialising well past the quota (24 values against a quota of 8)
/// so eviction and degraded mode are exercised, plus violating sites.
fn workload(t: &Tesla, id: tesla_runtime::ClassId) {
    let start = t.intern_fn("job_start");
    let end = t.intern_fn("job_end");
    let produce = t.intern_fn("produce");
    for scope in 0..4u64 {
        let _ = t.fn_entry(start, &[]);
        for i in 0..24u64 {
            let v = scope * 100 + i;
            let args = [Value(v)];
            let _ = t.fn_entry(produce, &args);
            let _ = t.fn_exit(produce, &args, Value(0));
            let _ = t.assertion_site(id, &[Value(v)]);
            if i == 3 {
                // Never produced: a real violation, fired while the
                // class is still under quota (degraded mode soundly
                // suppresses site misses after evictions begin, so a
                // detectable violation must land before the burst).
                let _ = t.assertion_site(id, &[Value(9_999)]);
            }
        }
        let _ = t.fn_exit(end, &[], Value(0));
    }
}

/// Run the workload under a fresh engine with the given plan; return
/// the metrics snapshot and the plan's ledger.
fn run_chaos(seed: u64, spec: FaultSpec) -> (MetricsSnapshot, tesla_runtime::FaultLedger) {
    tesla_runtime::engine::reset_thread_state();
    let t = chaos_engine(seed, spec);
    let id = t.register(compile(&chaos_assertion()).unwrap()).unwrap();
    let res = catch_unwind(AssertUnwindSafe(|| workload(&t, id)));
    assert!(res.is_ok(), "engine unwound into the caller (seed {seed})");
    let snap = t.metrics().snapshot();
    let ledger = t.fault_plan().expect("plan configured").ledger();
    (snap, ledger)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(100))]

    /// The headline acceptance property: 100 randomized seeds, full
    /// fault menu, and the engine (a) never unwinds, (b) never lets
    /// the live gauge past the quota, (c) reports every absorbed
    /// fault.
    #[test]
    fn any_seeded_plan_degrades_gracefully(seed in any::<u64>()) {
        tesla_runtime::faults::silence_injected_panics();
        let (snap, ledger) = run_chaos(seed, FaultSpec::default_chaos());
        for c in &snap.classes {
            prop_assert!(
                c.high_watermark <= QUOTA as u64,
                "live gauge peaked at {} > quota {QUOTA} (seed {seed})",
                c.high_watermark
            );
        }
        prop_assert!(ledger.balanced(), "unbalanced ledger (seed {seed}): {ledger}");
        prop_assert_eq!(
            snap.faults_absorbed,
            ledger.total_injected(),
            "absorbed-fault metric disagrees with the plan (seed {seed})"
        );
    }
}

/// Identical seed ⇒ identical ledger: the schedule depends only on
/// the seed and the event sequence, not on wall-clock or layout.
#[test]
fn same_seed_same_ledger() {
    tesla_runtime::faults::silence_injected_panics();
    let (_, a) = run_chaos(0xDEAD_BEEF, FaultSpec::default_chaos());
    let (_, b) = run_chaos(0xDEAD_BEEF, FaultSpec::default_chaos());
    assert_eq!(a, b, "same seed must reproduce the same ledger");
    assert!(
        a.total_injected() > 0,
        "the default menu must actually fire"
    );
    // And a different seed shifts the phases. Totals of a single other
    // seed can coincide by chance (they differ by at most one fire per
    // kind), so ask only that *some* nearby seed lands elsewhere.
    let shifted = (1..=8u64).any(|k| run_chaos(0xDEAD_BEEF + k, FaultSpec::default_chaos()).1 != a);
    assert!(shifted, "eight different seeds all reproduced {a}");
}

/// A plan with no periods is free: nothing injected, nothing
/// absorbed, and the workload behaves exactly as un-faulted.
#[test]
fn empty_spec_injects_nothing() {
    let (snap, ledger) = run_chaos(7, FaultSpec::none());
    assert_eq!(ledger.total_injected(), 0);
    assert_eq!(snap.faults_absorbed, 0);
    assert_eq!(snap.handler_panics, 0);
    assert_eq!(snap.lock_poison_recoveries, 0);
}

/// Single-kind plans absorb at their own site: lock poisoning is
/// recovered (and counted), allocation failure surfaces as overflow,
/// and in both cases the ledger still balances.
#[test]
fn single_kind_plans_absorb_at_their_site() {
    use tesla_runtime::FaultKind;
    tesla_runtime::faults::silence_injected_panics();

    let (snap, ledger) = run_chaos(11, FaultSpec::none().with(FaultKind::LockPoison, 5));
    assert!(ledger.balanced());
    assert!(ledger.total_injected() > 0);
    assert_eq!(snap.lock_poison_recoveries, ledger.total_injected());

    let (snap, ledger) = run_chaos(13, FaultSpec::none().with(FaultKind::AllocFailure, 2));
    assert!(ledger.balanced());
    assert!(ledger.total_injected() > 0);
    let overflows: u64 = snap.classes.iter().map(|c| c.overflows).sum();
    assert_eq!(overflows, ledger.total_injected());

    let (snap, ledger) = run_chaos(17, FaultSpec::none().with(FaultKind::HandlerPanic, 6));
    assert!(ledger.balanced());
    assert!(ledger.total_injected() > 0);
    assert_eq!(snap.handler_panics, ledger.total_injected());
}

/// Quota + LRU *without* any faults: a burst past the quota evicts
/// the least-recently-touched instance instead of erroring, degraded
/// mode sheds a sampled share of further clones, and the gauge never
/// exceeds the quota.
#[test]
fn quota_lru_sheds_and_never_exceeds() {
    tesla_runtime::engine::reset_thread_state();
    let t = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        instance_capacity: 64,
        max_instances: Some(QUOTA),
        eviction: EvictionPolicy::Lru,
        telemetry: true,
        ..Config::default()
    }));
    let id = t.register(compile(&chaos_assertion()).unwrap()).unwrap();
    workload(&t, id);
    let snap = t.metrics().snapshot();
    let c = &snap.classes[0];
    assert!(
        c.high_watermark <= QUOTA as u64,
        "peak {}",
        c.high_watermark
    );
    assert!(c.evictions > 0, "the burst must have evicted");
    assert!(c.shed > 0, "degraded mode must have shed clones");
    // Detection stays sound for retained instances: the per-scope
    // violating site is still reported unless shed (never silently
    // wrong — a shed site emits `Shed`, not a false pass).
    assert!(!t.violations().is_empty());
}

/// Clock-skew hardening: a skew-heavy plan (a wild 1 µs–1 s phantom
/// sample every other hook event) cannot poison the telemetry
/// aggregates or runaway the governor. The histogram sum saturates
/// per observation at the top bucket's floor, and the governor's
/// overhead estimate — p50-based with a wall/16 app-time floor —
/// stays at or below its 16× cap, so the controller escalates but
/// never past the exact ceiling it was configured with.
#[test]
fn clock_skew_saturates_sums_and_bounds_the_governor() {
    use tesla_runtime::telemetry::metrics::LATENCY_BUCKETS;
    use tesla_runtime::{FaultKind, GovernorConfig};
    tesla_runtime::faults::silence_injected_panics();
    tesla_runtime::engine::reset_thread_state();

    let t = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        instance_capacity: 64,
        telemetry: true,
        governor: Some(GovernorConfig {
            slo_milli: 1200,
            tick_events: 32,
            allow_shed: false,
        }),
        faults: Some(Arc::new(FaultPlan::new(
            42,
            FaultSpec::none().with(FaultKind::ClockSkew, 2),
        ))),
        ..Config::default()
    }));
    let id = t.register(compile(&chaos_assertion()).unwrap()).unwrap();
    workload(&t, id);

    let ledger = t.fault_plan().unwrap().ledger();
    assert!(ledger.total_injected() > 0, "the skew plan must fire");
    assert!(ledger.balanced());

    // Per-observation saturation: even if *every* sample were a wild
    // 1 s phantom, the sum can absorb at most the top bucket's floor
    // per sample — never u64-wrapping territory.
    let saturate = 1u64 << (LATENCY_BUCKETS - 2);
    let snap = t.metrics().snapshot();
    for h in &snap.hooks {
        assert!(
            h.latency.sum_ns <= h.latency.count.saturating_mul(saturate),
            "{}: sum {} exceeds {} × saturation floor",
            h.hook,
            h.latency.sum_ns,
            h.latency.count
        );
    }

    // Governor robustness: the estimate is capped at 16× by the
    // wall/16 app-time floor, so phantom latencies can escalate the
    // controller (that is fine — they look like real cost) but can
    // neither blow up the estimate nor breach the exact ceiling.
    let g = t.governor().expect("governor configured");
    let est = g.estimate_overhead_milli(t.metrics());
    assert!(
        (1000..=16_000).contains(&est),
        "estimate {est} out of range"
    );
    assert!(g.level() <= 7, "exact ceiling breached under skew");
    assert_eq!(g.shed_period(), 0, "skew must not unlock clone shedding");
}

/// The Error policy (default) keeps the strict §4.4.1 semantics:
/// exceeding the quota is an overflow report, never an eviction.
#[test]
fn quota_error_policy_reports_overflow() {
    tesla_runtime::engine::reset_thread_state();
    let t = Arc::new(Tesla::new(Config {
        fail_mode: FailMode::Log,
        instance_capacity: 64,
        max_instances: Some(4),
        eviction: EvictionPolicy::Error,
        telemetry: true,
        ..Config::default()
    }));
    let id = t.register(compile(&chaos_assertion()).unwrap()).unwrap();
    workload(&t, id);
    let snap = t.metrics().snapshot();
    let c = &snap.classes[0];
    assert!(c.high_watermark <= 4);
    assert_eq!(c.evictions, 0);
    assert!(c.overflows > 0, "past-quota clones must be reported");
}
