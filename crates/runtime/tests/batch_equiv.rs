//! Differential properties: the batched drain must be
//! observationally identical to per-event dispatch.
//!
//! Random event streams (entries, exits — including never-entered
//! names, field stores, message sends, assertion sites — including
//! unknown classes) are driven through `Tesla::drive` with
//! `batch_size` 1 (the per-event reference) and with batching on,
//! under both fail modes and with the governor ticking every event.
//! The drive result, the recorded violation sequence, and the
//! deterministic counter export (`export::json_counters`) must all be
//! byte-identical — the flush-on-verdict rule means even a FailStop
//! verdict in the middle of a batch stops at exactly the same event
//! ordinal as per-event dispatch. A second axis pits interpreted NFA
//! stepping against the compiled transition matrices: same oracle,
//! same requirement.

use proptest::prelude::*;
use std::sync::Arc;
use tesla_automata::compile;
use tesla_runtime::telemetry::export::json_counters;
use tesla_runtime::{
    BufferedSource, Config, DriveError, FailMode, GovernorConfig, IngressEvent, IngressStats,
    Tesla, Violation,
};
use tesla_spec::{call, AssertionBuilder, FieldOp, Value};

/// One generated stream step; decoded into an [`IngressEvent`] by
/// [`decode`]. Kept as raw small integers so the proptest strategy
/// stays a flat tuple vector.
type Op = (u8, u64, u64);

const ENTRY_FNS: [&str; 3] = ["req", "check", "other"];
const EXIT_FNS: [&str; 4] = ["req", "check", "other", "ghost"];

fn decode(&(op, a, b): &Op) -> IngressEvent {
    match op % 10 {
        // Scope open: drives init/cleanup and lazy materialisation.
        0 => IngressEvent::FnEntry {
            name: "req".into(),
            args: vec![],
        },
        // The watched call entering and returning 0 (satisfies).
        1 => IngressEvent::FnEntry {
            name: "check".into(),
            args: vec![Value(b)],
        },
        2 => IngressEvent::FnExit {
            name: "check".into(),
            args: vec![Value(b)],
            ret: Value(0),
        },
        // Arbitrary exits; "ghost" was never entered, so resolving it
        // fails — the batched stage must reject at the same ordinal
        // as the per-event unknown-name error.
        3 => IngressEvent::FnExit {
            name: EXIT_FNS[(a % 4) as usize].into(),
            args: vec![Value(b)],
            ret: Value(b),
        },
        4 => IngressEvent::FnEntry {
            name: ENTRY_FNS[(a % 3) as usize].into(),
            args: vec![Value(b)],
        },
        5 => IngressEvent::FieldStore {
            strct: "s".into(),
            field: "f".into(),
            object: Value(a),
            op: FieldOp::Assign,
            value: Value(b),
        },
        6 => IngressEvent::MsgEntry {
            selector: "sel".into(),
            receiver: Value(a),
            args: vec![Value(b)],
        },
        7 => IngressEvent::MsgExit {
            selector: if a % 2 == 0 { "sel" } else { "ghost_sel" }.into(),
            receiver: Value(a),
            args: vec![Value(b)],
            ret: Value(0),
        },
        // Sites against both registered classes; unsatisfied bindings
        // violate (recorded under Log, fail-stop mid-batch otherwise).
        8 => IngressEvent::AssertionSite {
            class: (a % 2) as u32,
            values: vec![Value(b)],
        },
        // Rarely, an unregistered class: hard error in every mode.
        _ => IngressEvent::AssertionSite {
            class: if a == 3 { 7 } else { (a % 2) as u32 },
            values: vec![Value(b)],
        },
    }
}

/// Everything externally observable about one drive.
#[derive(Debug, PartialEq)]
struct Outcome {
    drive: Result<IngressStats, DriveError>,
    violations: Vec<Violation>,
    counters: String,
}

/// Drive `ops` through a fresh engine. `batch_size` 1 is the
/// per-event reference path; `dfa` false forces interpreted NFA
/// stepping instead of the compiled matrices; `govern` attaches a
/// non-escalating governor (huge SLO) so its per-event tick runs in
/// both paths without perturbing sampling determinism.
fn run(ops: &[Op], batch_size: usize, fail_mode: FailMode, dfa: bool, govern: bool) -> Outcome {
    tesla_runtime::engine::reset_thread_state();
    let t = Tesla::new(Config {
        fail_mode,
        telemetry: true,
        batch_size,
        governor: govern.then(|| GovernorConfig {
            slo_milli: u32::MAX,
            tick_events: 1,
            allow_shed: false,
        }),
        ..Config::default()
    });
    let per_thread = AssertionBuilder::within("req")
        .named("req_check")
        .previously(call("check").arg_var("x").returns(0))
        .build()
        .unwrap();
    let global = AssertionBuilder::within("req")
        .global()
        .named("req_check_global")
        .previously(call("check").arg_var("x").returns(0))
        .build()
        .unwrap();
    let automata = vec![
        compile(&per_thread).unwrap(),
        compile(&global).unwrap(),
    ];
    if dfa {
        t.register_batch(automata).unwrap();
    } else {
        let pairs = automata.into_iter().map(|a| (Arc::new(a), None)).collect();
        t.register_batch_compiled(pairs).unwrap();
    }
    let mut source = BufferedSource::new(ops.iter().map(decode).collect());
    let drive = t.drive(&mut source);
    Outcome {
        drive,
        violations: t.violations(),
        counters: json_counters(&t.metrics().snapshot()),
    }
}

fn ops_strategy() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((0u8..10, 0u64..4, 0u64..3), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Log mode: the whole stream flows in both paths (modulo hard
    /// errors, which must agree too).
    #[test]
    fn batched_equals_per_event_log_mode(ops in ops_strategy()) {
        let reference = run(&ops, 1, FailMode::Log, true, false);
        for batch_size in [2usize, 7, 64] {
            let batched = run(&ops, batch_size, FailMode::Log, true, false);
            prop_assert_eq!(&batched, &reference, "batch_size {}", batch_size);
        }
    }

    /// FailStop: a violation anywhere inside a batch must stop at the
    /// same 1-based ordinal with the same stats as per-event mode.
    #[test]
    fn batched_equals_per_event_fail_stop(ops in ops_strategy()) {
        let reference = run(&ops, 1, FailMode::FailStop, true, false);
        for batch_size in [2usize, 7, 64] {
            let batched = run(&ops, batch_size, FailMode::FailStop, true, false);
            prop_assert_eq!(&batched, &reference, "batch_size {}", batch_size);
        }
    }

    /// The governor tick interleaves differently under batching (it
    /// runs inside the drain loop); a non-escalating controller must
    /// leave every observable identical.
    #[test]
    fn batched_equals_per_event_with_governor(ops in ops_strategy()) {
        let reference = run(&ops, 1, FailMode::Log, true, true);
        let batched = run(&ops, 7, FailMode::Log, true, true);
        prop_assert_eq!(&batched, &reference);
    }

    /// Compiled matrices against interpreted NFA stepping: same
    /// verdicts, same counters, in both drive modes.
    #[test]
    fn compiled_dfa_equals_interpreted(ops in ops_strategy()) {
        for fail_mode in [FailMode::Log, FailMode::FailStop] {
            let interpreted = run(&ops, 1, fail_mode, false, false);
            let compiled = run(&ops, 1, fail_mode, true, false);
            prop_assert_eq!(&compiled, &interpreted, "per-event, {:?}", fail_mode);
            let compiled_batched = run(&ops, 64, fail_mode, true, false);
            prop_assert_eq!(&compiled_batched, &interpreted, "batched, {:?}", fail_mode);
        }
    }
}

/// A hand-built stream pinning the mid-batch fail-stop contract: the
/// violation lands on event 4 of a 6-event stream, strictly inside a
/// batch of 64, and the stats count exactly the events up to and
/// including the offender.
#[test]
fn fail_stop_mid_batch_stops_at_exact_ordinal() {
    let ops: Vec<Op> = vec![
        (0, 0, 0), // req entry        (opens scope)
        (1, 0, 1), // check entry
        (2, 0, 1), // check exit 0     (x = 1 satisfied)
        (8, 0, 2), // site x = 2       (never satisfied: violation)
        (1, 0, 2),
        (2, 0, 2),
    ];
    for batch_size in [1usize, 64] {
        let out = run(&ops, batch_size, FailMode::FailStop, true, false);
        match &out.drive {
            Err(DriveError::Event { seq, stats, .. }) => {
                assert_eq!(*seq, 4, "batch_size {batch_size}");
                assert_eq!(stats.events, 4);
                assert_eq!(stats.sites, 1);
                assert_eq!(stats.fn_entries, 2);
            }
            other => panic!("expected mid-stream violation, got {other:?}"),
        }
        assert_eq!(out.violations.len(), 1);
    }
}

/// An unknown closing name must reject at its exact ordinal from the
/// batched stage, matching the per-event resolve error.
#[test]
fn unknown_exit_name_rejects_at_exact_ordinal() {
    let ops: Vec<Op> = vec![
        (0, 0, 0),
        (3, 3, 0), // fn_exit "ghost": never entered
        (1, 0, 1),
    ];
    let reference = run(&ops, 1, FailMode::Log, true, false);
    let batched = run(&ops, 64, FailMode::Log, true, false);
    assert_eq!(batched, reference);
    match &reference.drive {
        Err(DriveError::Event { seq, stats, .. }) => {
            assert_eq!(*seq, 2);
            assert_eq!(stats.events, 2);
            assert_eq!(stats.fn_exits, 1);
        }
        other => panic!("expected unknown-name error, got {other:?}"),
    }
}
