//! Property test: TIR modules survive the `.bc`-analogue
//! serialisation round-trip byte-identically — the pipeline depends
//! on this for its object cache and the §5.1 IR hand-offs.

use proptest::prelude::*;
use tesla_ir::{Interp, Module, NullSink};

/// A miniature deterministic corpus (kept local so tesla-ir's tests
//  do not depend on the umbrella crate).
fn corpus_source(files: usize, assertions: usize) -> Vec<(String, String)> {
    let mut units = Vec::new();
    let mut src = String::from(
        "struct socket { int so_state; };\n\
         int mac_check(int cred, struct socket *so) { return 0; }\n\
         int entry(int cred) {\n\
             struct socket *so = malloc(sizeof(struct socket));\n\
             mac_check(cred, so);\n",
    );
    for a in 0..assertions {
        src.push_str(&format!(
            "    TESLA_WITHIN(entry, previously(mac_check(ANY(int), so) == 0)); // {a}\n"
        ));
    }
    src.push_str("    return 0;\n}\n");
    units.push(("u0.c".to_string(), src));
    for i in 1..files {
        units.push((
            format!("u{i}.c"),
            format!("int helper_{i}(int x) {{ return x * {i} + 1; }}"),
        ));
    }
    units
}

fn corpus_module(files: usize, assertions: usize) -> Module {
    let outs: Vec<Module> = corpus_source(files, assertions)
        .iter()
        .map(|(f, s)| tesla_cc::compile_unit(s, f).unwrap().module)
        .collect();
    Module::link(outs, "prog").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn module_serde_roundtrips(files in 1usize..5, assertions in 0usize..4) {
        let m = corpus_module(files, assertions);
        let text = serde_json::to_string(&m).unwrap();
        let back: Module = serde_json::from_str(&text).unwrap();
        prop_assert_eq!(&m, &back);
        // And the reloaded module still runs identically (the
        // un-instrumented program traps at the placeholder when
        // assertions are present; both sides must agree exactly).
        let mut i1 = Interp::new(&m, 100_000);
        let mut i2 = Interp::new(&back, 100_000);
        let r1 = i1.run_named("entry", &[7], &mut NullSink);
        let r2 = i2.run_named("entry", &[7], &mut NullSink);
        prop_assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    }
}
