//! The TIR interpreter.
//!
//! Executes a linked [`Module`] directly. TESLA hook instructions
//! (inserted by `tesla-instrument`) call into a [`HookSink`], which in
//! the full pipeline is libtesla; a sink returning an error aborts
//! execution (fail-stop, §4.4.2).
//!
//! Machine model: 64-bit registers; a heap of structure objects
//! addressed by opaque non-zero handles (0 is `NULL`); a call stack of
//! frames. A fuel budget bounds runaway programs.

use crate::module::{Callee, CmpOp, FieldRef, FuncId, Inst, Module, Op, Terminator};
use std::collections::HashMap;
use tesla_spec::{FieldOp, Value};

/// Receives instrumentation events during execution.
pub trait HookSink {
    /// Callee-side function entry.
    ///
    /// # Errors
    ///
    /// A violation message aborts execution.
    fn fn_entry(&mut self, name: &str, args: &[Value]) -> Result<(), String>;
    /// Callee-side function exit.
    ///
    /// # Errors
    ///
    /// A violation message aborts execution.
    fn fn_exit(&mut self, name: &str, args: &[Value], ret: Value) -> Result<(), String>;
    /// Field assignment.
    ///
    /// # Errors
    ///
    /// A violation message aborts execution.
    fn field_store(
        &mut self,
        struct_name: &str,
        field_name: &str,
        object: Value,
        op: FieldOp,
        value: Value,
    ) -> Result<(), String>;
    /// Assertion site (instrumented).
    ///
    /// # Errors
    ///
    /// A violation message aborts execution.
    fn assertion_site(&mut self, class: u32, values: &[Value]) -> Result<(), String>;
}

/// A sink that ignores everything (uninstrumented runs).
pub struct NullSink;

impl HookSink for NullSink {
    fn fn_entry(&mut self, _: &str, _: &[Value]) -> Result<(), String> {
        Ok(())
    }
    fn fn_exit(&mut self, _: &str, _: &[Value], _: Value) -> Result<(), String> {
        Ok(())
    }
    fn field_store(
        &mut self,
        _: &str,
        _: &str,
        _: Value,
        _: FieldOp,
        _: Value,
    ) -> Result<(), String> {
        Ok(())
    }
    fn assertion_site(&mut self, _: u32, _: &[Value]) -> Result<(), String> {
        Ok(())
    }
}

/// Execution failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// A TESLA hook reported a violation (fail-stop).
    Violation(String),
    /// Ran out of fuel.
    OutOfFuel,
    /// Machine-level trap: bad handle, division by zero, unknown
    /// external, `Unreachable`, …
    Trap(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Violation(v) => write!(f, "TESLA violation: {v}"),
            ExecError::OutOfFuel => write!(f, "out of fuel"),
            ExecError::Trap(t) => write!(f, "trap: {t}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A host (external) function.
pub type ExternFn = Box<dyn FnMut(&[i64]) -> i64>;

struct HeapObject {
    strct: u32,
    fields: Vec<i64>,
}

/// The interpreter.
pub struct Interp<'m> {
    module: &'m Module,
    heap: Vec<HeapObject>,
    externs: HashMap<String, ExternFn>,
    fuel: u64,
    /// Statistics: instructions retired.
    pub retired: u64,
    /// Statistics: hook events delivered.
    pub hook_events: u64,
}

impl<'m> Interp<'m> {
    /// Create an interpreter over a linked module with a fuel budget.
    pub fn new(module: &'m Module, fuel: u64) -> Interp<'m> {
        Interp {
            module,
            heap: Vec::new(),
            externs: HashMap::new(),
            fuel,
            retired: 0,
            hook_events: 0,
        }
    }

    /// Provide an external function.
    pub fn add_extern(&mut self, name: &str, f: ExternFn) {
        self.externs.insert(name.to_string(), f);
    }

    /// Run `function(args)` to completion.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on violation, trap or fuel exhaustion.
    pub fn run(
        &mut self,
        function: FuncId,
        args: &[i64],
        sink: &mut dyn HookSink,
    ) -> Result<i64, ExecError> {
        self.call(function, args, sink, 0)
    }

    /// Run a function by name.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::Trap`] if the function does not exist, or
    /// any execution error.
    pub fn run_named(
        &mut self,
        name: &str,
        args: &[i64],
        sink: &mut dyn HookSink,
    ) -> Result<i64, ExecError> {
        let f = self
            .module
            .function(name)
            .ok_or_else(|| ExecError::Trap(format!("no function `{name}`")))?;
        self.run(f, args, sink)
    }

    fn call(
        &mut self,
        func: FuncId,
        args: &[i64],
        sink: &mut dyn HookSink,
        depth: u32,
    ) -> Result<i64, ExecError> {
        if depth > 256 {
            return Err(ExecError::Trap("call stack overflow".into()));
        }
        let f = &self.module.functions[func.0 as usize];
        if args.len() != f.n_params as usize {
            return Err(ExecError::Trap(format!(
                "`{}` called with {} args, expects {}",
                f.name,
                args.len(),
                f.n_params
            )));
        }
        let mut regs = vec![0i64; f.n_regs as usize];
        regs[..args.len()].copy_from_slice(args);
        let mut bb = 0usize;
        loop {
            let block = &f.blocks[bb];
            for inst in &block.insts {
                if self.fuel == 0 {
                    return Err(ExecError::OutOfFuel);
                }
                self.fuel -= 1;
                self.retired += 1;
                match inst {
                    Inst::Const { dst, value } => regs[dst.0 as usize] = *value,
                    Inst::Copy { dst, src } => regs[dst.0 as usize] = regs[src.0 as usize],
                    Inst::Bin { dst, op, lhs, rhs } => {
                        let (a, b) = (regs[lhs.0 as usize], regs[rhs.0 as usize]);
                        regs[dst.0 as usize] = eval_bin(*op, a, b)
                            .ok_or_else(|| ExecError::Trap("division by zero".into()))?;
                    }
                    Inst::Cmp { dst, op, lhs, rhs } => {
                        let (a, b) = (regs[lhs.0 as usize], regs[rhs.0 as usize]);
                        regs[dst.0 as usize] = i64::from(eval_cmp(*op, a, b));
                    }
                    Inst::Call {
                        dst,
                        callee,
                        args: argr,
                    } => {
                        let argv: Vec<i64> = argr.iter().map(|r| regs[r.0 as usize]).collect();
                        let rv = match callee {
                            Callee::Direct(g) => self.call(*g, &argv, sink, depth + 1)?,
                            Callee::Indirect(r) => {
                                let fid = regs[r.0 as usize];
                                if fid <= 0 || fid as usize > self.module.functions.len() {
                                    return Err(ExecError::Trap(format!(
                                        "indirect call through bad function pointer {fid}"
                                    )));
                                }
                                self.call(FuncId(fid as u32 - 1), &argv, sink, depth + 1)?
                            }
                            Callee::External(name) => {
                                let mut f = self.externs.remove(name).ok_or_else(|| {
                                    ExecError::Trap(format!("unknown external `{name}`"))
                                })?;
                                let rv = f(&argv);
                                self.externs.insert(name.clone(), f);
                                rv
                            }
                        };
                        if let Some(d) = dst {
                            regs[d.0 as usize] = rv;
                        }
                    }
                    Inst::FnAddr { dst, func } => {
                        // Handles are 1-based so NULL stays falsy.
                        regs[dst.0 as usize] = i64::from(func.0) + 1;
                    }
                    Inst::New { dst, strct } => {
                        let nf = self.module.structs[strct.0 as usize].fields.len();
                        self.heap.push(HeapObject {
                            strct: strct.0,
                            fields: vec![0; nf],
                        });
                        regs[dst.0 as usize] = self.heap.len() as i64; // 1-based
                    }
                    Inst::Load { dst, obj, field } => {
                        let v = self.field(regs[obj.0 as usize], *field)?.0;
                        regs[dst.0 as usize] = v;
                    }
                    Inst::Store {
                        obj,
                        field,
                        op,
                        value,
                    } => {
                        let rhs = regs[value.0 as usize];
                        let (old, slot) = self.field(regs[obj.0 as usize], *field)?;
                        let new = apply_field_op(*op, old, rhs);
                        self.heap[slot.0].fields[slot.1] = new;
                    }
                    Inst::TeslaPseudoAssert { .. } => {
                        return Err(ExecError::Trap(
                            "reached un-instrumented __tesla_inline_assertion; \
                             run the instrumenter first"
                                .into(),
                        ));
                    }
                    Inst::TeslaHookEntry { func } => {
                        self.hook_events += 1;
                        let name = &self.module.functions[func.0 as usize].name;
                        let n = self.module.functions[func.0 as usize].n_params as usize;
                        let argv: Vec<Value> = regs[..n].iter().map(|v| Value(*v as u64)).collect();
                        sink.fn_entry(name, &argv).map_err(ExecError::Violation)?;
                    }
                    Inst::TeslaHookExit { func, ret } => {
                        self.hook_events += 1;
                        let name = &self.module.functions[func.0 as usize].name;
                        let n = self.module.functions[func.0 as usize].n_params as usize;
                        let argv: Vec<Value> = regs[..n].iter().map(|v| Value(*v as u64)).collect();
                        let rv = ret.map(|r| regs[r.0 as usize]).unwrap_or(0);
                        sink.fn_exit(name, &argv, Value(rv as u64))
                            .map_err(ExecError::Violation)?;
                    }
                    Inst::TeslaHookCallPre { name, args } => {
                        self.hook_events += 1;
                        let argv: Vec<Value> = args
                            .iter()
                            .map(|r| Value(regs[r.0 as usize] as u64))
                            .collect();
                        sink.fn_entry(name, &argv).map_err(ExecError::Violation)?;
                    }
                    Inst::TeslaHookCallPost { name, args, ret } => {
                        self.hook_events += 1;
                        let argv: Vec<Value> = args
                            .iter()
                            .map(|r| Value(regs[r.0 as usize] as u64))
                            .collect();
                        let rv = ret.map(|r| regs[r.0 as usize]).unwrap_or(0);
                        sink.fn_exit(name, &argv, Value(rv as u64))
                            .map_err(ExecError::Violation)?;
                    }
                    Inst::TeslaHookField {
                        obj,
                        field,
                        op,
                        value,
                    } => {
                        self.hook_events += 1;
                        let sd = &self.module.structs[field.strct.0 as usize];
                        sink.field_store(
                            &sd.name,
                            &sd.fields[field.field as usize],
                            Value(regs[obj.0 as usize] as u64),
                            *op,
                            Value(regs[value.0 as usize] as u64),
                        )
                        .map_err(ExecError::Violation)?;
                    }
                    Inst::TeslaSite { class, args } => {
                        self.hook_events += 1;
                        let argv: Vec<Value> = args
                            .iter()
                            .map(|r| Value(regs[r.0 as usize] as u64))
                            .collect();
                        sink.assertion_site(*class, &argv)
                            .map_err(ExecError::Violation)?;
                    }
                }
            }
            if self.fuel == 0 {
                return Err(ExecError::OutOfFuel);
            }
            self.fuel -= 1;
            match &block.term {
                Terminator::Jump(b) => bb = b.0 as usize,
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    bb = if regs[cond.0 as usize] != 0 {
                        then_bb.0 as usize
                    } else {
                        else_bb.0 as usize
                    };
                }
                Terminator::Ret(r) => {
                    return Ok(r.map(|r| regs[r.0 as usize]).unwrap_or(0));
                }
                Terminator::Unreachable => {
                    return Err(ExecError::Trap(format!(
                        "unreachable executed in `{}`",
                        f.name
                    )));
                }
            }
        }
    }

    fn field(&self, handle: i64, field: FieldRef) -> Result<(i64, (usize, usize)), ExecError> {
        if handle <= 0 || handle as usize > self.heap.len() {
            return Err(ExecError::Trap(format!("bad object handle {handle}")));
        }
        let oi = handle as usize - 1;
        let obj = &self.heap[oi];
        if obj.strct != field.strct.0 {
            return Err(ExecError::Trap(format!(
                "type confusion: object is `{}`, access via `{}`",
                self.module.structs[obj.strct as usize].name,
                self.module.structs[field.strct.0 as usize].name
            )));
        }
        let fi = field.field as usize;
        Ok((obj.fields[fi], (oi, fi)))
    }
}

fn eval_bin(op: Op, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        Op::Add => a.wrapping_add(b),
        Op::Sub => a.wrapping_sub(b),
        Op::Mul => a.wrapping_mul(b),
        Op::Div => {
            if b == 0 {
                return None;
            }
            a.wrapping_div(b)
        }
        Op::Rem => {
            if b == 0 {
                return None;
            }
            a.wrapping_rem(b)
        }
        Op::And => a & b,
        Op::Or => a | b,
        Op::Xor => a ^ b,
        Op::Shl => a.wrapping_shl(b as u32),
        Op::Shr => a.wrapping_shr(b as u32),
    })
}

fn eval_cmp(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::Eq => a == b,
        CmpOp::Ne => a != b,
        CmpOp::Lt => a < b,
        CmpOp::Le => a <= b,
        CmpOp::Gt => a > b,
        CmpOp::Ge => a >= b,
    }
}

fn apply_field_op(op: FieldOp, old: i64, rhs: i64) -> i64 {
    match op {
        FieldOp::Assign => rhs,
        FieldOp::AddAssign => old.wrapping_add(rhs),
        FieldOp::SubAssign => old.wrapping_sub(rhs),
        FieldOp::OrAssign => old | rhs,
        FieldOp::AndAssign => old & rhs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::module::{BlockId, Callee, CmpOp, FieldRef, Inst, Op, Terminator};

    /// A sink recording hook traffic as strings.
    #[derive(Default)]
    pub struct TraceSink {
        pub lines: Vec<String>,
        pub fail_on_site: bool,
    }

    impl HookSink for TraceSink {
        fn fn_entry(&mut self, name: &str, args: &[Value]) -> Result<(), String> {
            self.lines.push(format!("enter {name}({args:?})"));
            Ok(())
        }
        fn fn_exit(&mut self, name: &str, _args: &[Value], ret: Value) -> Result<(), String> {
            self.lines.push(format!("exit {name} -> {ret}"));
            Ok(())
        }
        fn field_store(
            &mut self,
            s: &str,
            f: &str,
            obj: Value,
            op: FieldOp,
            v: Value,
        ) -> Result<(), String> {
            self.lines.push(format!("store {s}.{f} [{obj}] {op} {v}"));
            Ok(())
        }
        fn assertion_site(&mut self, class: u32, values: &[Value]) -> Result<(), String> {
            self.lines.push(format!("site {class} {values:?}"));
            if self.fail_on_site {
                Err("boom".into())
            } else {
                Ok(())
            }
        }
    }

    fn fib_module() -> crate::module::Module {
        // fib(n) = n < 2 ? n : fib(n-1) + fib(n-2)
        let mut mb = ModuleBuilder::new("fib.c");
        let mut f = mb.begin_function("fib", 1);
        let two = f.constant(2);
        let c = f.fresh();
        f.inst(Inst::Cmp {
            dst: c,
            op: CmpOp::Lt,
            lhs: f.param(0),
            rhs: two,
        });
        f.end_block(Terminator::Branch {
            cond: c,
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        });
        f.end_block(Terminator::Ret(Some(f.param(0))));
        let one = f.constant(1);
        let n1 = f.fresh();
        f.inst(Inst::Bin {
            dst: n1,
            op: Op::Sub,
            lhs: f.param(0),
            rhs: one,
        });
        let r1 = f.fresh();
        f.inst(Inst::Call {
            dst: Some(r1),
            callee: Callee::Direct(FuncId(0)),
            args: vec![n1],
        });
        let two2 = f.constant(2);
        let n2 = f.fresh();
        f.inst(Inst::Bin {
            dst: n2,
            op: Op::Sub,
            lhs: f.param(0),
            rhs: two2,
        });
        let r2 = f.fresh();
        f.inst(Inst::Call {
            dst: Some(r2),
            callee: Callee::Direct(FuncId(0)),
            args: vec![n2],
        });
        let sum = f.fresh();
        f.inst(Inst::Bin {
            dst: sum,
            op: Op::Add,
            lhs: r1,
            rhs: r2,
        });
        let func = f.finish(Terminator::Ret(Some(sum)));
        mb.add_function(func);
        mb.build()
    }

    #[test]
    fn fib_runs() {
        let m = fib_module();
        let mut i = Interp::new(&m, 1_000_000);
        assert_eq!(i.run_named("fib", &[10], &mut NullSink).unwrap(), 55);
        assert!(i.retired > 0);
    }

    #[test]
    fn fuel_exhaustion_is_reported() {
        let m = fib_module();
        let mut i = Interp::new(&m, 50);
        assert_eq!(
            i.run_named("fib", &[20], &mut NullSink),
            Err(ExecError::OutOfFuel)
        );
    }

    #[test]
    fn heap_fields_and_ops() {
        let mut mb = ModuleBuilder::new("m");
        let s = mb.add_struct("proc", &["p_flag", "p_uid"]);
        let mut f = mb.begin_function("main", 0);
        let o = f.fresh();
        f.inst(Inst::New { dst: o, strct: s });
        let v = f.constant(0x100);
        f.inst(Inst::Store {
            obj: o,
            field: FieldRef { strct: s, field: 0 },
            op: FieldOp::OrAssign,
            value: v,
        });
        let v2 = f.constant(1);
        f.inst(Inst::Store {
            obj: o,
            field: FieldRef { strct: s, field: 0 },
            op: FieldOp::AddAssign,
            value: v2,
        });
        let out = f.fresh();
        f.inst(Inst::Load {
            dst: out,
            obj: o,
            field: FieldRef { strct: s, field: 0 },
        });
        let func = f.finish(Terminator::Ret(Some(out)));
        mb.add_function(func);
        let m = mb.build();
        let mut i = Interp::new(&m, 1000);
        assert_eq!(i.run_named("main", &[], &mut NullSink).unwrap(), 0x101);
    }

    #[test]
    fn null_and_type_confusion_trap() {
        let mut mb = ModuleBuilder::new("m");
        let s = mb.add_struct("a", &["x"]);
        let _t = mb.add_struct("b", &["y"]);
        let mut f = mb.begin_function("deref_null", 0);
        let z = f.constant(0);
        let out = f.fresh();
        f.inst(Inst::Load {
            dst: out,
            obj: z,
            field: FieldRef { strct: s, field: 0 },
        });
        let func = f.finish(Terminator::Ret(Some(out)));
        mb.add_function(func);
        let m = mb.build();
        let mut i = Interp::new(&m, 1000);
        match i.run_named("deref_null", &[], &mut NullSink) {
            Err(ExecError::Trap(msg)) => assert!(msg.contains("bad object handle")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn indirect_calls_through_fnaddr() {
        let mut mb = ModuleBuilder::new("m");
        // target(x) = x + 1
        let mut t = mb.begin_function("target", 1);
        let one = t.constant(1);
        let r = t.fresh();
        t.inst(Inst::Bin {
            dst: r,
            op: Op::Add,
            lhs: t.param(0),
            rhs: one,
        });
        let tf = t.finish(Terminator::Ret(Some(r)));
        let target = mb.add_function(tf);
        // main: fp = &target; return fp(41)
        let mut f = mb.begin_function("main", 0);
        let fp = f.fresh();
        f.inst(Inst::FnAddr {
            dst: fp,
            func: target,
        });
        let a = f.constant(41);
        let out = f.fresh();
        f.inst(Inst::Call {
            dst: Some(out),
            callee: Callee::Indirect(fp),
            args: vec![a],
        });
        let func = f.finish(Terminator::Ret(Some(out)));
        mb.add_function(func);
        let m = mb.build();
        let mut i = Interp::new(&m, 1000);
        assert_eq!(i.run_named("main", &[], &mut NullSink).unwrap(), 42);
    }

    #[test]
    fn hooks_reach_the_sink_and_violations_abort() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.begin_function("g", 1);
        f.inst(Inst::TeslaHookEntry { func: FuncId(0) });
        let r = f.constant(0);
        f.inst(Inst::TeslaHookExit {
            func: FuncId(0),
            ret: Some(r),
        });
        let gf = f.finish(Terminator::Ret(Some(r)));
        mb.add_function(gf);
        let mut f = mb.begin_function("main", 0);
        let a = f.constant(7);
        f.inst(Inst::Call {
            dst: None,
            callee: Callee::Direct(FuncId(0)),
            args: vec![a],
        });
        f.inst(Inst::TeslaSite {
            class: 3,
            args: vec![a],
        });
        let func = f.finish(Terminator::Ret(None));
        mb.add_function(func);
        let m = mb.build();

        let mut sink = TraceSink::default();
        let mut i = Interp::new(&m, 1000);
        i.run_named("main", &[], &mut sink).unwrap();
        assert_eq!(
            sink.lines,
            vec![
                "enter g([Value(7)])".to_string(),
                "exit g -> 0".to_string(),
                "site 3 [Value(7)]".to_string(),
            ]
        );
        assert_eq!(i.hook_events, 3);

        let mut failing = TraceSink {
            fail_on_site: true,
            ..TraceSink::default()
        };
        let mut i = Interp::new(&m, 1000);
        match i.run_named("main", &[], &mut failing) {
            Err(ExecError::Violation(v)) => assert_eq!(v, "boom"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn uninstrumented_pseudo_assert_traps() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.begin_function("main", 0);
        f.inst(Inst::TeslaPseudoAssert {
            assertion: 0,
            args: vec![],
        });
        let func = f.finish(Terminator::Ret(None));
        mb.add_function(func);
        let m = mb.build();
        let mut i = Interp::new(&m, 1000);
        match i.run_named("main", &[], &mut NullSink) {
            Err(ExecError::Trap(msg)) => assert!(msg.contains("instrumenter")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn externals_are_callable() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.begin_function("main", 0);
        let a = f.constant(21);
        let out = f.fresh();
        f.inst(Inst::Call {
            dst: Some(out),
            callee: Callee::External("double".into()),
            args: vec![a],
        });
        let func = f.finish(Terminator::Ret(Some(out)));
        mb.add_function(func);
        let m = mb.build();
        let mut i = Interp::new(&m, 1000);
        i.add_extern("double", Box::new(|args| args[0] * 2));
        assert_eq!(i.run_named("main", &[], &mut NullSink).unwrap(), 42);
        // Missing external traps.
        let mut i2 = Interp::new(&m, 1000);
        assert!(matches!(
            i2.run_named("main", &[], &mut NullSink),
            Err(ExecError::Trap(_))
        ));
    }

    #[test]
    fn division_by_zero_traps() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.begin_function("main", 0);
        let a = f.constant(1);
        let z = f.constant(0);
        let out = f.fresh();
        f.inst(Inst::Bin {
            dst: out,
            op: Op::Div,
            lhs: a,
            rhs: z,
        });
        let func = f.finish(Terminator::Ret(Some(out)));
        mb.add_function(func);
        let m = mb.build();
        let mut i = Interp::new(&m, 1000);
        assert!(matches!(
            i.run_named("main", &[], &mut NullSink),
            Err(ExecError::Trap(_))
        ));
    }
}
