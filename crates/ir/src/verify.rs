//! Structural verification of TIR modules.
//!
//! The paper notes that integrating with the compiler "lets us
//! statically check properties of the instrumentation itself" (§6);
//! this pass is that check for TIR: register bounds, block targets,
//! call arities, struct-field references, and — in *linked* mode —
//! that no un-instrumented `__tesla_inline_assertion` placeholders
//! remain.

use crate::module::{Callee, Inst, Module, Reg, Terminator};

/// A verification failure, located by function/block/instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name.
    pub function: String,
    /// Block index.
    pub block: usize,
    /// Instruction index (`usize::MAX` = terminator).
    pub inst: usize,
    /// Description.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "verify: {} in `{}` block {} inst {}",
            self.message, self.function, self.block, self.inst
        )
    }
}

impl std::error::Error for VerifyError {}

/// Verification strictness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Per-unit output of a front-end: externals and TESLA
    /// placeholders allowed.
    Unit,
    /// Linked, instrumented program about to run: placeholders are
    /// errors; direct callees must exist.
    Linked,
}

/// Verify a module.
///
/// # Errors
///
/// Returns every [`VerifyError`] found (empty `Ok` means valid).
pub fn verify(m: &Module, stage: Stage) -> Result<(), Vec<VerifyError>> {
    let mut errs = Vec::new();
    for f in &m.functions {
        let err = |block: usize, inst: usize, message: String| VerifyError {
            function: f.name.clone(),
            block,
            inst,
            message,
        };
        if f.blocks.is_empty() {
            errs.push(err(0, 0, "function has no blocks".into()));
            continue;
        }
        if f.n_params > f.n_regs {
            errs.push(err(0, 0, "n_params exceeds n_regs".into()));
        }
        let reg_ok = |r: Reg| r.0 < f.n_regs;
        for (bi, b) in f.blocks.iter().enumerate() {
            for (ii, inst) in b.insts.iter().enumerate() {
                // A macro rather than a closure: several arms also
                // push other errors, which a capturing closure would
                // conflict with.
                macro_rules! check_reg {
                    ($r:expr, $what:expr) => {
                        if !reg_ok($r) {
                            errs.push(err(
                                bi,
                                ii,
                                format!("{} register r{} out of range", $what, $r.0),
                            ));
                        }
                    };
                }
                match inst {
                    Inst::Const { dst, .. } => check_reg!(*dst, "dst"),
                    Inst::Copy { dst, src } => {
                        check_reg!(*dst, "dst");
                        check_reg!(*src, "src");
                    }
                    Inst::Bin { dst, lhs, rhs, .. } | Inst::Cmp { dst, lhs, rhs, .. } => {
                        check_reg!(*dst, "dst");
                        check_reg!(*lhs, "lhs");
                        check_reg!(*rhs, "rhs");
                    }
                    Inst::Call { dst, callee, args } => {
                        if let Some(d) = dst {
                            check_reg!(*d, "dst");
                        }
                        for a in args {
                            check_reg!(*a, "arg");
                        }
                        match callee {
                            Callee::Direct(g) => {
                                if let Some(g) = m.functions.get(g.0 as usize) {
                                    if g.n_params as usize != args.len() {
                                        errs.push(err(
                                            bi,
                                            ii,
                                            format!(
                                                "call to `{}` with {} args, expects {}",
                                                g.name,
                                                args.len(),
                                                g.n_params
                                            ),
                                        ));
                                    }
                                } else {
                                    errs.push(err(bi, ii, "call target out of range".into()));
                                }
                            }
                            Callee::Indirect(r) => check_reg!(*r, "fptr"),
                            Callee::External(name) => {
                                if stage == Stage::Linked && m.function(name).is_some() {
                                    errs.push(err(
                                        bi,
                                        ii,
                                        format!("unresolved external `{name}` after link"),
                                    ));
                                }
                            }
                        }
                    }
                    Inst::FnAddr { dst, func } => {
                        check_reg!(*dst, "dst");
                        if m.functions.get(func.0 as usize).is_none() {
                            errs.push(err(bi, ii, "fnaddr target out of range".into()));
                        }
                    }
                    Inst::New { dst, strct } => {
                        check_reg!(*dst, "dst");
                        if m.structs.get(strct.0 as usize).is_none() {
                            errs.push(err(bi, ii, "unknown struct".into()));
                        }
                    }
                    Inst::Load { dst, obj, field } => {
                        check_reg!(*dst, "dst");
                        check_reg!(*obj, "obj");
                        check_field(m, field, |msg| errs.push(err(bi, ii, msg)));
                    }
                    Inst::Store {
                        obj, value, field, ..
                    } => {
                        check_reg!(*obj, "obj");
                        check_reg!(*value, "value");
                        check_field(m, field, |msg| errs.push(err(bi, ii, msg)));
                    }
                    Inst::TeslaPseudoAssert { assertion, args } => {
                        for a in args {
                            check_reg!(*a, "arg");
                        }
                        if stage == Stage::Linked {
                            errs.push(err(
                                bi,
                                ii,
                                "un-instrumented __tesla_inline_assertion remains".into(),
                            ));
                        } else if m.assertions.get(*assertion as usize).is_none() {
                            errs.push(err(bi, ii, "assertion index out of range".into()));
                        }
                    }
                    Inst::TeslaHookEntry { func } | Inst::TeslaHookExit { func, .. } => {
                        if m.functions.get(func.0 as usize).is_none() {
                            errs.push(err(bi, ii, "hook names unknown function".into()));
                        }
                        if let Inst::TeslaHookExit { ret: Some(r), .. } = inst {
                            check_reg!(*r, "ret");
                        }
                    }
                    Inst::TeslaHookCallPre { args, .. } => {
                        for a in args {
                            check_reg!(*a, "arg");
                        }
                    }
                    Inst::TeslaHookCallPost { args, ret, .. } => {
                        for a in args {
                            check_reg!(*a, "arg");
                        }
                        if let Some(r) = ret {
                            check_reg!(*r, "ret");
                        }
                    }
                    Inst::TeslaHookField {
                        obj, value, field, ..
                    } => {
                        check_reg!(*obj, "obj");
                        check_reg!(*value, "value");
                        check_field(m, field, |msg| errs.push(err(bi, ii, msg)));
                    }
                    Inst::TeslaSite { args, .. } => {
                        for a in args {
                            check_reg!(*a, "arg");
                        }
                    }
                }
            }
            let terr = |message: String| VerifyError {
                function: f.name.clone(),
                block: bi,
                inst: usize::MAX,
                message,
            };
            match &b.term {
                Terminator::Jump(t) => {
                    if f.blocks.get(t.0 as usize).is_none() {
                        errs.push(terr("jump target out of range".into()));
                    }
                }
                Terminator::Branch {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    if !reg_ok(*cond) {
                        errs.push(terr("branch condition register out of range".into()));
                    }
                    for t in [then_bb, else_bb] {
                        if f.blocks.get(t.0 as usize).is_none() {
                            errs.push(terr("branch target out of range".into()));
                        }
                    }
                }
                Terminator::Ret(Some(r)) => {
                    if !reg_ok(*r) {
                        errs.push(terr("return register out of range".into()));
                    }
                }
                Terminator::Ret(None) | Terminator::Unreachable => {}
            }
        }
    }
    if errs.is_empty() {
        Ok(())
    } else {
        Err(errs)
    }
}

fn check_field(m: &Module, field: &crate::module::FieldRef, mut emit: impl FnMut(String)) {
    match m.structs.get(field.strct.0 as usize) {
        None => emit("field access on unknown struct".into()),
        Some(s) => {
            if s.fields.get(field.field as usize).is_none() {
                emit(format!(
                    "struct `{}` has no field index {}",
                    s.name, field.field
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::module::{BlockId, FieldRef, FuncId, StructId};

    #[test]
    fn valid_module_verifies() {
        let mut mb = ModuleBuilder::new("m");
        let s = mb.add_struct("s", &["a"]);
        let mut f = mb.begin_function("f", 1);
        let o = f.fresh();
        f.inst(Inst::New { dst: o, strct: s });
        let v = f.constant(1);
        f.inst(Inst::Store {
            obj: o,
            field: FieldRef { strct: s, field: 0 },
            op: tesla_spec::FieldOp::Assign,
            value: v,
        });
        let func = f.finish(Terminator::Ret(Some(v)));
        mb.add_function(func);
        let m = mb.build();
        assert!(verify(&m, Stage::Unit).is_ok());
        assert!(verify(&m, Stage::Linked).is_ok());
    }

    #[test]
    fn bad_register_is_caught() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.begin_function("f", 0);
        let func = f.finish(Terminator::Ret(Some(Reg(99))));
        mb.add_function(func);
        let m = mb.build();
        let errs = verify(&m, Stage::Unit).unwrap_err();
        assert!(errs[0].message.contains("return register"));
    }

    #[test]
    fn bad_block_target_is_caught() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.begin_function("f", 0);
        let func = f.finish(Terminator::Jump(BlockId(9)));
        mb.add_function(func);
        let m = mb.build();
        assert!(verify(&m, Stage::Unit).is_err());
    }

    #[test]
    fn arity_mismatch_is_caught() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.begin_function("g", 2);
        let gf = g.finish_trivial_return(None);
        mb.add_function(gf);
        let mut f = mb.begin_function("f", 0);
        f.inst(Inst::Call {
            dst: None,
            callee: Callee::Direct(FuncId(0)),
            args: vec![],
        });
        let ff = f.finish(Terminator::Ret(None));
        mb.add_function(ff);
        let m = mb.build();
        let errs = verify(&m, Stage::Unit).unwrap_err();
        assert!(errs[0].message.contains("expects 2"));
    }

    #[test]
    fn bad_field_is_caught() {
        let mut mb = ModuleBuilder::new("m");
        let s = mb.add_struct("s", &["a"]);
        let mut f = mb.begin_function("f", 1);
        let out = f.fresh();
        f.inst(Inst::Load {
            dst: out,
            obj: f.param(0),
            field: FieldRef { strct: s, field: 5 },
        });
        let func = f.finish(Terminator::Ret(Some(out)));
        mb.add_function(func);
        let m = mb.build();
        let errs = verify(&m, Stage::Unit).unwrap_err();
        assert!(errs[0].message.contains("no field index 5"));
        // Unknown struct too.
        let mut mb = ModuleBuilder::new("m2");
        let mut f = mb.begin_function("f", 1);
        let out = f.fresh();
        f.inst(Inst::Load {
            dst: out,
            obj: f.param(0),
            field: FieldRef {
                strct: StructId(7),
                field: 0,
            },
        });
        let func = f.finish(Terminator::Ret(Some(out)));
        mb.add_function(func);
        assert!(verify(&mb.build(), Stage::Unit).is_err());
    }

    #[test]
    fn linked_stage_rejects_leftover_placeholders() {
        let mut mb = ModuleBuilder::new("m");
        mb.add_assertion(
            tesla_spec::AssertionBuilder::within("f")
                .previously(tesla_spec::call("g").returns(0))
                .build()
                .unwrap(),
        );
        let mut f = mb.begin_function("f", 0);
        f.inst(Inst::TeslaPseudoAssert {
            assertion: 0,
            args: vec![],
        });
        let func = f.finish(Terminator::Ret(None));
        mb.add_function(func);
        let m = mb.build();
        assert!(verify(&m, Stage::Unit).is_ok());
        let errs = verify(&m, Stage::Linked).unwrap_err();
        assert!(errs[0].message.contains("un-instrumented"));
    }

    #[test]
    fn linked_stage_rejects_resolvable_externals() {
        let mut mb = ModuleBuilder::new("m");
        let g = mb.begin_function("g", 0);
        mb.add_function(g.finish_trivial_return(None));
        let mut f = mb.begin_function("f", 0);
        f.inst(Inst::Call {
            dst: None,
            callee: Callee::External("g".into()),
            args: vec![],
        });
        mb.add_function(f.finish(Terminator::Ret(None)));
        let m = mb.build();
        assert!(verify(&m, Stage::Unit).is_ok());
        assert!(verify(&m, Stage::Linked).is_err());
    }
}
