//! The TIR optimiser.
//!
//! One pass matters for TESLA: **inlining**. "Instrumentation is not
//! robust in the presence of function inlining and other
//! optimisations, so we run the TESLA instrumenter before
//! optimisation" (§4.2) — the paper's pipeline is Clang `-O0` →
//! instrument → `opt -O2`. This module provides the inliner (and a
//! small dead-copy cleanup) so the pipeline crate can demonstrate
//! both orders: instrument-then-optimise keeps every event;
//! optimise-then-instrument silently loses callee entry/exit events
//! for inlined functions.

use crate::module::{Block, BlockId, Callee, Function, Inst, Module, Reg, Terminator};

/// Inlining thresholds.
#[derive(Debug, Clone, Copy)]
pub struct InlineOptions {
    /// Only functions with at most this many instructions are inlined.
    pub max_insts: usize,
    /// Only leaf-ish functions with at most this many blocks.
    pub max_blocks: usize,
}

impl Default for InlineOptions {
    fn default() -> InlineOptions {
        InlineOptions {
            max_insts: 16,
            max_blocks: 3,
        }
    }
}

/// Is `f` small enough to inline, and free of constructs the simple
/// inliner cannot relocate (instrumentation hooks pin a function)?
fn inlinable(f: &Function, opts: &InlineOptions) -> bool {
    if f.blocks.len() > opts.max_blocks {
        return false;
    }
    let insts: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
    if insts > opts.max_insts {
        return false;
    }
    f.blocks.iter().all(|b| {
        b.insts.iter().all(|i| {
            !matches!(
                i,
                Inst::TeslaHookEntry { .. }
                    | Inst::TeslaHookExit { .. }
                    | Inst::TeslaSite { .. }
                    | Inst::TeslaPseudoAssert { .. }
                    | Inst::TeslaHookField { .. }
                    | Inst::TeslaHookCallPre { .. }
                    | Inst::TeslaHookCallPost { .. }
            )
        })
    })
}

/// Statistics from an optimisation run.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct OptStats {
    /// Call sites inlined.
    pub inlined_calls: usize,
    /// Dead copies removed.
    pub removed_copies: usize,
}

/// Run the optimiser over every function: inline small callees, then
/// clean up.
pub fn optimise(m: &mut Module, opts: &InlineOptions) -> OptStats {
    let mut stats = OptStats::default();
    // Snapshot callee bodies to avoid self-referential borrows; only
    // small functions are candidates so this is cheap.
    let candidates: Vec<Option<Function>> = m
        .functions
        .iter()
        .map(|f| {
            if inlinable(f, opts) {
                Some(f.clone())
            } else {
                None
            }
        })
        .collect();
    for f in &mut m.functions {
        stats.inlined_calls += inline_in_function(f, &candidates);
        stats.removed_copies += remove_dead_copies(f);
    }
    stats
}

/// Inline eligible direct calls in `f`. Returns the number of call
/// sites inlined. Single-block callees are spliced in place;
/// multi-block callees are handled by splitting the caller block.
fn inline_in_function(f: &mut Function, candidates: &[Option<Function>]) -> usize {
    let mut inlined = 0;
    // Iterate until fixpoint over a work list of blocks; inlining a
    // multi-block callee appends new blocks.
    let mut bi = 0;
    while bi < f.blocks.len() {
        let mut ii = 0;
        while ii < f.blocks[bi].insts.len() {
            let inst = f.blocks[bi].insts[ii].clone();
            let Inst::Call {
                dst,
                callee: Callee::Direct(g),
                args,
            } = inst
            else {
                ii += 1;
                continue;
            };
            // Recursive calls cannot be inlined.
            let Some(body) = candidates.get(g.0 as usize).and_then(|c| c.as_ref()) else {
                ii += 1;
                continue;
            };
            if body.name == f.name {
                ii += 1;
                continue;
            }
            if body.blocks.len() == 1 {
                splice_single_block(f, bi, ii, dst, &args, body);
            } else {
                splice_multi_block(f, bi, ii, dst, &args, body);
            }
            inlined += 1;
            // Re-examine the same index: the spliced code starts there.
            continue;
        }
        bi += 1;
    }
    inlined
}

/// Remap a callee's registers into fresh caller registers, with
/// parameters pre-bound via `Copy` from the argument registers.
fn remap_reg(r: Reg, base: u32) -> Reg {
    Reg(r.0 + base)
}

fn remap_inst_regs(inst: &mut Inst, base: u32) {
    let m = |r: &mut Reg| *r = remap_reg(*r, base);
    match inst {
        Inst::Const { dst, .. } => m(dst),
        Inst::Copy { dst, src } => {
            m(dst);
            m(src);
        }
        Inst::Bin { dst, lhs, rhs, .. } | Inst::Cmp { dst, lhs, rhs, .. } => {
            m(dst);
            m(lhs);
            m(rhs);
        }
        Inst::Call { dst, callee, args } => {
            if let Some(d) = dst {
                m(d);
            }
            if let Callee::Indirect(r) = callee {
                m(r);
            }
            args.iter_mut().for_each(m);
        }
        Inst::FnAddr { dst, .. } => m(dst),
        Inst::New { dst, .. } => m(dst),
        Inst::Load { dst, obj, .. } => {
            m(dst);
            m(obj);
        }
        Inst::Store { obj, value, .. } => {
            m(obj);
            m(value);
        }
        Inst::TeslaPseudoAssert { args, .. } | Inst::TeslaSite { args, .. } => {
            args.iter_mut().for_each(m);
        }
        Inst::TeslaHookEntry { .. } => {}
        Inst::TeslaHookExit { ret, .. } => {
            if let Some(r) = ret {
                m(r);
            }
        }
        Inst::TeslaHookCallPre { args, .. } => args.iter_mut().for_each(m),
        Inst::TeslaHookCallPost { args, ret, .. } => {
            args.iter_mut().for_each(m);
            if let Some(r) = ret {
                m(r);
            }
        }
        Inst::TeslaHookField { obj, value, .. } => {
            m(obj);
            m(value);
        }
    }
}

/// Inline a single-block callee by splicing its instructions in place
/// of the call.
fn splice_single_block(
    f: &mut Function,
    bi: usize,
    ii: usize,
    dst: Option<Reg>,
    args: &[Reg],
    body: &Function,
) {
    let base = f.n_regs;
    f.n_regs += body.n_regs;
    let mut splice: Vec<Inst> = Vec::with_capacity(body.blocks[0].insts.len() + args.len() + 1);
    for (i, a) in args.iter().enumerate() {
        splice.push(Inst::Copy {
            dst: remap_reg(Reg(i as u32), base),
            src: *a,
        });
    }
    for inst in &body.blocks[0].insts {
        let mut inst = inst.clone();
        remap_inst_regs(&mut inst, base);
        splice.push(inst);
    }
    match &body.blocks[0].term {
        Terminator::Ret(Some(r)) => {
            if let Some(d) = dst {
                splice.push(Inst::Copy {
                    dst: d,
                    src: remap_reg(*r, base),
                });
            }
        }
        Terminator::Ret(None) => {}
        _ => unreachable!("single-block inlinable callee must end in Ret"),
    }
    f.blocks[bi].insts.splice(ii..=ii, splice);
}

/// Inline a multi-block callee: split the caller block after the
/// call, append remapped callee blocks, and rewrite callee `Ret`s to
/// jump to the continuation.
fn splice_multi_block(
    f: &mut Function,
    bi: usize,
    ii: usize,
    dst: Option<Reg>,
    args: &[Reg],
    body: &Function,
) {
    let base = f.n_regs;
    f.n_regs += body.n_regs;
    let callee_block_base = f.blocks.len() as u32 + 1; // +1 for the continuation
    let cont_id = BlockId(f.blocks.len() as u32);

    // Split: caller block keeps insts[..ii] + arg copies, then jumps
    // into the callee; continuation gets insts[ii+1..] + original
    // terminator.
    let rest: Vec<Inst> = f.blocks[bi].insts.split_off(ii + 1);
    f.blocks[bi].insts.pop(); // the call itself
    for (i, a) in args.iter().enumerate() {
        f.blocks[bi].insts.push(Inst::Copy {
            dst: remap_reg(Reg(i as u32), base),
            src: *a,
        });
    }
    let orig_term = std::mem::replace(
        &mut f.blocks[bi].term,
        Terminator::Jump(BlockId(callee_block_base)),
    );
    f.blocks.push(Block {
        insts: rest,
        term: orig_term,
    }); // continuation = cont_id

    for b in &body.blocks {
        let mut insts = Vec::with_capacity(b.insts.len());
        for inst in &b.insts {
            let mut inst = inst.clone();
            remap_inst_regs(&mut inst, base);
            insts.push(inst);
        }
        let term = match &b.term {
            Terminator::Jump(t) => Terminator::Jump(BlockId(t.0 + callee_block_base)),
            Terminator::Branch {
                cond,
                then_bb,
                else_bb,
            } => Terminator::Branch {
                cond: remap_reg(*cond, base),
                then_bb: BlockId(then_bb.0 + callee_block_base),
                else_bb: BlockId(else_bb.0 + callee_block_base),
            },
            Terminator::Ret(r) => {
                if let (Some(d), Some(r)) = (dst, r) {
                    insts.push(Inst::Copy {
                        dst: d,
                        src: remap_reg(*r, base),
                    });
                }
                Terminator::Jump(cont_id)
            }
            Terminator::Unreachable => Terminator::Unreachable,
        };
        f.blocks.push(Block { insts, term });
    }
}

/// Remove `Copy { dst, src }` where `dst == src`.
fn remove_dead_copies(f: &mut Function) -> usize {
    let mut removed = 0;
    for b in &mut f.blocks {
        let before = b.insts.len();
        b.insts
            .retain(|i| !matches!(i, Inst::Copy { dst, src } if dst == src));
        removed += before - b.insts.len();
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::interp::{Interp, NullSink};
    use crate::module::{CmpOp, FuncId, Op};
    use crate::verify::{verify, Stage};

    /// add1(x) = x + 1 (single block), abs(x) = x < 0 ? -x : x
    /// (multi-block); main(n) = abs(add1(n)).
    fn program() -> Module {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.begin_function("add1", 1);
        let one = f.constant(1);
        let r = f.fresh();
        f.inst(Inst::Bin {
            dst: r,
            op: Op::Add,
            lhs: f.param(0),
            rhs: one,
        });
        let add1 = mb.add_function(f.finish(Terminator::Ret(Some(r))));

        let mut f = mb.begin_function("abs", 1);
        let z = f.constant(0);
        let c = f.fresh();
        f.inst(Inst::Cmp {
            dst: c,
            op: CmpOp::Lt,
            lhs: f.param(0),
            rhs: z,
        });
        f.end_block(Terminator::Branch {
            cond: c,
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        });
        let z2 = f.constant(0);
        let neg = f.fresh();
        f.inst(Inst::Bin {
            dst: neg,
            op: Op::Sub,
            lhs: z2,
            rhs: f.param(0),
        });
        f.end_block(Terminator::Ret(Some(neg)));
        let p0 = f.param(0);
        let abs = mb.add_function(f.finish(Terminator::Ret(Some(p0))));

        let mut f = mb.begin_function("main", 1);
        let t = f.fresh();
        f.inst(Inst::Call {
            dst: Some(t),
            callee: Callee::Direct(add1),
            args: vec![f.param(0)],
        });
        let out = f.fresh();
        f.inst(Inst::Call {
            dst: Some(out),
            callee: Callee::Direct(abs),
            args: vec![t],
        });
        mb.add_function(f.finish(Terminator::Ret(Some(out))));
        mb.build()
    }

    fn run(m: &Module, arg: i64) -> i64 {
        let mut i = Interp::new(m, 100_000);
        i.run_named("main", &[arg], &mut NullSink).unwrap()
    }

    #[test]
    fn inlining_preserves_semantics() {
        let mut m = program();
        for arg in [-10i64, -1, 0, 1, 41] {
            let expected = (arg + 1).abs();
            assert_eq!(run(&m, arg), expected, "before opt, arg={arg}");
        }
        let stats = optimise(&mut m, &InlineOptions::default());
        assert_eq!(stats.inlined_calls, 2);
        verify(&m, Stage::Linked).unwrap();
        for arg in [-10i64, -1, 0, 1, 41] {
            let expected = (arg + 1).abs();
            assert_eq!(run(&m, arg), expected, "after opt, arg={arg}");
        }
    }

    #[test]
    fn inlining_removes_call_instructions() {
        let mut m = program();
        optimise(&mut m, &InlineOptions::default());
        let main = &m.functions[m.function("main").unwrap().0 as usize];
        let calls = main
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter(|i| matches!(i, Inst::Call { .. }))
            .count();
        assert_eq!(calls, 0);
    }

    #[test]
    fn instrumented_functions_are_not_inlined() {
        let mut m = program();
        // Pretend add1 was instrumented.
        let add1 = m.function("add1").unwrap();
        m.functions[add1.0 as usize].blocks[0]
            .insts
            .insert(0, Inst::TeslaHookEntry { func: add1 });
        let stats = optimise(&mut m, &InlineOptions::default());
        // abs still inlines; add1 must not.
        assert_eq!(stats.inlined_calls, 1);
        let main = &m.functions[m.function("main").unwrap().0 as usize];
        let still_calls_add1 = main
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Call { callee: Callee::Direct(g), .. } if *g == add1));
        assert!(still_calls_add1);
    }

    #[test]
    fn recursive_functions_are_not_inlined() {
        // f(n) = n (self-recursive shape kept trivial but named same).
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.begin_function("loopy", 1);
        let r = f.fresh();
        f.inst(Inst::Call {
            dst: Some(r),
            callee: Callee::Direct(FuncId(0)),
            args: vec![f.param(0)],
        });
        mb.add_function(f.finish(Terminator::Ret(Some(r))));
        let mut m = mb.build();
        let stats = optimise(&mut m, &InlineOptions::default());
        assert_eq!(stats.inlined_calls, 0);
    }

    #[test]
    fn threshold_controls_inlining() {
        let mut m = program();
        let stats = optimise(
            &mut m,
            &InlineOptions {
                max_insts: 0,
                max_blocks: 1,
            },
        );
        assert_eq!(stats.inlined_calls, 0);
    }
}
