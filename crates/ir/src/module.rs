//! TIR data structures: modules, functions, blocks, instructions.

use serde::{Deserialize, Serialize};
use tesla_spec::FieldOp;

/// A virtual register within a function (the "infinite register
/// set").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u32);

/// A basic-block id within a function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// A function id within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuncId(pub u32);

/// A struct-type id within a module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StructId(pub u32);

/// Arithmetic and bitwise operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (signed; division by zero traps)
    Div,
    /// `%` (signed; division by zero traps)
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>` (arithmetic)
    Shr,
}

/// Comparison operators (result is 0 or 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<` (signed)
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// A call target.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Callee {
    /// A function in this module.
    Direct(FuncId),
    /// An indirect call through a function-pointer register.
    Indirect(Reg),
    /// An external (host-provided) function, by name.
    External(String),
}

/// A reference to a structure field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FieldRef {
    /// The structure type.
    pub strct: StructId,
    /// Field index within the struct definition.
    pub field: u32,
}

/// One TIR instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Inst {
    /// `dst = imm`
    Const {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        value: i64,
    },
    /// `dst = src`
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst = lhs op rhs`
    Bin {
        /// Destination register.
        dst: Reg,
        /// Operator.
        op: Op,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst = lhs cmp rhs` (0/1)
    Cmp {
        /// Destination register.
        dst: Reg,
        /// Comparison.
        op: CmpOp,
        /// Left operand.
        lhs: Reg,
        /// Right operand.
        rhs: Reg,
    },
    /// `dst? = call callee(args)`
    Call {
        /// Destination register for the return value, if used.
        dst: Option<Reg>,
        /// Target.
        callee: Callee,
        /// Argument registers.
        args: Vec<Reg>,
    },
    /// `dst = &function` — take a function's address (function
    /// pointers: `pru_sopoll`, `f_ops->fo_poll`, …).
    FnAddr {
        /// Destination register.
        dst: Reg,
        /// The function.
        func: FuncId,
    },
    /// `dst = new strct` — allocate a zeroed structure on the
    /// interpreter heap.
    New {
        /// Destination register (receives the object handle).
        dst: Reg,
        /// The structure type.
        strct: StructId,
    },
    /// `dst = obj.field`
    Load {
        /// Destination register.
        dst: Reg,
        /// Object handle register.
        obj: Reg,
        /// Which field.
        field: FieldRef,
    },
    /// `obj.field op= value` — field stores carry their operator so
    /// instrumentation can distinguish `=` from `+=`/`|=`/…
    Store {
        /// Object handle register.
        obj: Reg,
        /// Which field.
        field: FieldRef,
        /// Operator (`=` or compound).
        op: FieldOp,
        /// Right-hand side.
        value: Reg,
    },
    // --- TESLA pseudo- and hook instructions -------------------------
    /// The front-end's placeholder for an assertion site: the call to
    /// the unimplemented `__tesla_inline_assertion` (§4.2). The
    /// instrumenter replaces it with [`Inst::TeslaSite`]; the verifier
    /// rejects it in "linked" modules; the interpreter traps on it.
    TeslaPseudoAssert {
        /// Index into the module's assertion list.
        assertion: u32,
        /// Values of the assertion's scope variables.
        args: Vec<Reg>,
    },
    /// Instrumented function-entry hook (callee-side).
    TeslaHookEntry {
        /// The function whose entry this reports (== containing fn).
        func: FuncId,
    },
    /// Instrumented function-exit hook (callee-side); placed
    /// immediately before `Ret`.
    TeslaHookExit {
        /// The function whose exit this reports.
        func: FuncId,
        /// The value about to be returned, if any.
        ret: Option<Reg>,
    },
    /// Caller-side pre-call hook: reports entry of `name` with `args`.
    TeslaHookCallPre {
        /// Callee name (may be external).
        name: String,
        /// Argument registers at the call site.
        args: Vec<Reg>,
    },
    /// Caller-side post-call hook: reports exit of `name`.
    TeslaHookCallPost {
        /// Callee name.
        name: String,
        /// Argument registers at the call site.
        args: Vec<Reg>,
        /// The returned value, if captured.
        ret: Option<Reg>,
    },
    /// Instrumented field-assignment hook; placed immediately after
    /// the `Store` it reports.
    TeslaHookField {
        /// Object handle register.
        obj: Reg,
        /// Which field.
        field: FieldRef,
        /// Operator.
        op: FieldOp,
        /// Stored value register.
        value: Reg,
    },
    /// Instrumented assertion-site event (replaces
    /// [`Inst::TeslaPseudoAssert`]).
    TeslaSite {
        /// Runtime class id assigned by the instrumenter.
        class: u32,
        /// Values of the assertion's scope variables.
        args: Vec<Reg>,
    },
}

/// Block terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Unconditional jump.
    Jump(BlockId),
    /// Conditional branch on a register (non-zero = then).
    Branch {
        /// Condition register.
        cond: Reg,
        /// Non-zero target.
        then_bb: BlockId,
        /// Zero target.
        else_bb: BlockId,
    },
    /// Return, optionally with a value.
    Ret(Option<Reg>),
    /// Trap: undefined behaviour was reached.
    Unreachable,
}

/// A basic block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// The terminator.
    pub term: Terminator,
}

/// A function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Name (significant: instrumentation plans match by name).
    pub name: String,
    /// Number of parameters; parameters occupy registers `0..n_params`.
    pub n_params: u32,
    /// Total virtual registers used.
    pub n_regs: u32,
    /// Basic blocks; entry is block 0.
    pub blocks: Vec<Block>,
}

/// A structure type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructDef {
    /// Type name.
    pub name: String,
    /// Field names, in declaration order.
    pub fields: Vec<String>,
}

/// The assertion table a front-end attaches to a module: the
/// instrumenter resolves [`Inst::TeslaPseudoAssert`] indices against
/// it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModuleAssertion {
    /// The parsed assertion.
    pub assertion: tesla_spec::Assertion,
}

/// A TIR module (one compilation unit, or a linked program).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Module {
    /// Module (source file) name.
    pub name: String,
    /// Structure types.
    pub structs: Vec<StructDef>,
    /// Functions.
    pub functions: Vec<Function>,
    /// TESLA assertions written in this unit.
    pub assertions: Vec<ModuleAssertion>,
}

impl Module {
    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Find a struct by name.
    pub fn struct_by_name(&self, name: &str) -> Option<StructId> {
        self.structs
            .iter()
            .position(|s| s.name == name)
            .map(|i| StructId(i as u32))
    }

    /// Total instruction count (build-cost metrics).
    pub fn n_insts(&self) -> usize {
        self.functions
            .iter()
            .map(|f| f.blocks.iter().map(|b| b.insts.len() + 1).sum::<usize>())
            .sum()
    }

    /// Link several modules into one program: functions and structs
    /// are concatenated (names must not collide except for *declared*
    /// externals), and call targets/struct ids are re-resolved.
    ///
    /// For simplicity the front-end emits `Callee::External(name)` for
    /// cross-unit calls; linking resolves those that name a defined
    /// function. Struct definitions with identical names must be
    /// structurally equal.
    ///
    /// # Errors
    ///
    /// Returns a message on duplicate function names or mismatched
    /// struct definitions.
    pub fn link(modules: Vec<Module>, name: &str) -> Result<Module, String> {
        Module::link_refs(&modules.iter().collect::<Vec<_>>(), name)
    }

    /// [`Module::link`] over borrowed modules. The incremental build
    /// pipeline keeps per-unit objects behind `Arc` so that a cache
    /// hit copies a pointer instead of a module; linking therefore
    /// must not demand ownership (it clones only what it merges).
    ///
    /// # Errors
    ///
    /// Returns a message on duplicate function names or mismatched
    /// struct definitions.
    pub fn link_refs(modules: &[&Module], name: &str) -> Result<Module, String> {
        let mut out = Module {
            name: name.to_string(),
            ..Module::default()
        };
        // Structs: dedup by name + shape.
        for m in modules {
            for s in &m.structs {
                match out.structs.iter().find(|o| o.name == s.name) {
                    Some(existing) if existing.fields != s.fields => {
                        return Err(format!("struct `{}` defined incompatibly", s.name));
                    }
                    Some(_) => {}
                    None => out.structs.push(s.clone()),
                }
            }
        }
        // Function name table.
        for m in modules {
            for f in &m.functions {
                if out.functions.iter().any(|o| o.name == f.name) {
                    return Err(format!("duplicate definition of `{}`", f.name));
                }
                out.functions.push(f.clone());
            }
        }
        // Remap struct ids and resolve externals per originating
        // module. Function order in `out` is concatenation order, so
        // a per-module function-id offset applies.
        let mut fn_offset = 0u32;
        let mut assert_offset = 0u32;
        let mut fixed: Vec<Function> = Vec::with_capacity(out.functions.len());
        for m in modules {
            let struct_map: Vec<StructId> = m
                .structs
                .iter()
                .map(|s| out.struct_by_name(&s.name).expect("struct was merged"))
                .collect();
            for f in &m.functions {
                let mut f = f.clone();
                for b in &mut f.blocks {
                    for inst in &mut b.insts {
                        remap_inst(inst, &struct_map, fn_offset, assert_offset, &out);
                    }
                }
                fixed.push(f);
            }
            fn_offset += m.functions.len() as u32;
            assert_offset += m.assertions.len() as u32;
        }
        out.functions = fixed;
        // Assertions concatenate.
        for m in modules {
            out.assertions.extend(m.assertions.iter().cloned());
        }
        Ok(out)
    }
}

fn remap_inst(
    inst: &mut Inst,
    struct_map: &[StructId],
    fn_offset: u32,
    assert_offset: u32,
    linked: &Module,
) {
    let remap_field = |f: &mut FieldRef| {
        f.strct = struct_map[f.strct.0 as usize];
    };
    match inst {
        Inst::Call { callee, .. } => match callee {
            Callee::Direct(f) => f.0 += fn_offset,
            Callee::External(name) => {
                if let Some(f) = linked.function(name) {
                    *callee = Callee::Direct(f);
                }
            }
            Callee::Indirect(_) => {}
        },
        Inst::FnAddr { func, .. } => func.0 += fn_offset,
        Inst::New { strct, .. } => *strct = struct_map[strct.0 as usize],
        Inst::Load { field, .. } => remap_field(field),
        Inst::Store { field, .. } | Inst::TeslaHookField { field, .. } => remap_field(field),
        Inst::TeslaHookEntry { func } | Inst::TeslaHookExit { func, .. } => {
            func.0 += fn_offset;
        }
        // Assertion tables concatenate at link time, so placeholder
        // indices from later units must shift past earlier units'
        // assertions (matters when linking *un*-instrumented units,
        // e.g. for static analysis of the whole program).
        Inst::TeslaPseudoAssert { assertion, .. } => *assertion += assert_offset,
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;

    #[test]
    fn function_lookup_by_name() {
        let mut mb = ModuleBuilder::new("m");
        let f = mb.begin_function("foo", 1);
        let fb = f.finish_trivial_return(None);
        mb.add_function(fb);
        let m = mb.build();
        assert_eq!(m.function("foo"), Some(FuncId(0)));
        assert_eq!(m.function("bar"), None);
    }

    #[test]
    fn link_resolves_externals() {
        // Module a calls external "callee"; module b defines it.
        let mut a = ModuleBuilder::new("a");
        let mut f = a.begin_function("caller", 0);
        let r = f.fresh();
        f.inst(Inst::Call {
            dst: Some(r),
            callee: Callee::External("callee".into()),
            args: vec![],
        });
        let fb = f.finish(Terminator::Ret(Some(r)));
        a.add_function(fb);
        let a = a.build();

        let mut b = ModuleBuilder::new("b");
        let mut g = b.begin_function("callee", 0);
        let c = g.fresh();
        g.inst(Inst::Const { dst: c, value: 7 });
        let gb = g.finish(Terminator::Ret(Some(c)));
        b.add_function(gb);
        let b = b.build();

        let linked = Module::link(vec![a, b], "prog").unwrap();
        let caller = &linked.functions[linked.function("caller").unwrap().0 as usize];
        match &caller.blocks[0].insts[0] {
            Inst::Call {
                callee: Callee::Direct(f),
                ..
            } => {
                assert_eq!(linked.functions[f.0 as usize].name, "callee");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn link_rejects_duplicate_definitions() {
        let mk = |name: &str| {
            let mut mb = ModuleBuilder::new(name);
            let f = mb.begin_function("dup", 0);
            let fb = f.finish_trivial_return(None);
            mb.add_function(fb);
            mb.build()
        };
        let err = Module::link(vec![mk("a"), mk("b")], "prog").unwrap_err();
        assert!(err.contains("dup"));
    }

    #[test]
    fn link_merges_identical_structs_and_remaps_ids() {
        let mk = |name: &str, extra_struct: bool| {
            let mut mb = ModuleBuilder::new(name);
            if extra_struct {
                mb.add_struct("other", &["x"]);
            }
            let s = mb.add_struct("socket", &["so_state", "so_proto"]);
            let mut f = mb.begin_function(&format!("f_{name}"), 0);
            let o = f.fresh();
            f.inst(Inst::New { dst: o, strct: s });
            let v = f.fresh();
            f.inst(Inst::Const { dst: v, value: 5 });
            f.inst(Inst::Store {
                obj: o,
                field: FieldRef { strct: s, field: 0 },
                op: tesla_spec::FieldOp::Assign,
                value: v,
            });
            let fb = f.finish(Terminator::Ret(None));
            mb.add_function(fb);
            mb.build()
        };
        let linked = Module::link(vec![mk("a", false), mk("b", true)], "prog").unwrap();
        // socket defined once despite appearing in both modules.
        assert_eq!(
            linked.structs.iter().filter(|s| s.name == "socket").count(),
            1
        );
        let socket = linked.struct_by_name("socket").unwrap();
        // b's store must point at the merged socket id.
        let fb = &linked.functions[linked.function("f_b").unwrap().0 as usize];
        match &fb.blocks[0].insts[2] {
            Inst::Store { field, .. } => assert_eq!(field.strct, socket),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn link_offsets_assertion_placeholder_indices() {
        let mk = |unit: &str, fname: &str| {
            let mut mb = ModuleBuilder::new(unit);
            let a = tesla_spec::parse_assertion(&format!(
                "TESLA_WITHIN({fname}, previously(call(helper)))"
            ))
            .unwrap();
            let idx = mb.add_assertion(a);
            let mut f = mb.begin_function(fname, 0);
            f.inst(Inst::TeslaPseudoAssert {
                assertion: idx,
                args: vec![],
            });
            let fb = f.finish(Terminator::Ret(None));
            mb.add_function(fb);
            mb.build()
        };
        let linked = Module::link(vec![mk("a", "fa"), mk("b", "fb")], "prog").unwrap();
        assert_eq!(linked.assertions.len(), 2);
        let fb = &linked.functions[linked.function("fb").unwrap().0 as usize];
        match &fb.blocks[0].insts[0] {
            // Unit b's placeholder pointed at its local assertion 0;
            // after linking it must point at the concatenated index 1.
            Inst::TeslaPseudoAssert { assertion, .. } => assert_eq!(*assertion, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn link_rejects_struct_shape_conflicts() {
        let mk = |fields: &[&str]| {
            let mut mb = ModuleBuilder::new("m");
            mb.add_struct("s", fields);
            mb.build()
        };
        let err = Module::link(vec![mk(&["a"]), mk(&["a", "b"])], "p").unwrap_err();
        assert!(err.contains("incompatibly"));
    }
}
