//! # tesla-ir — TIR, the IR substrate TESLA instruments
//!
//! The paper's instrumenter "modifies compiled code to turn program
//! events into automaton transitions, transforming LLVM IR generated
//! by language front-ends" (§4.2). This crate is our LLVM-IR
//! substitute (see DESIGN.md): a small typed three-address IR for an
//! abstract machine with an infinite virtual-register set, organised
//! as modules → functions → basic blocks → instructions, plus
//!
//! * a structural [`verify`](verify::verify) pass,
//! * an [`interp`] interpreter whose TESLA hook instructions call into
//!   a [`interp::HookSink`] (libtesla, in the full pipeline),
//! * an [`opt`] optimiser with an inlining pass — which exists largely
//!   to demonstrate *why* TESLA instruments before optimisation:
//!   inlining erases callee entry/exit events (§4.2 runs Clang at
//!   `-O0`, instruments, then runs `opt -O2`).
//!
//! Divergence from LLVM noted in DESIGN.md: registers are mutable
//! (three-address code, not strict SSA). Nothing in the
//! instrumentation algorithm depends on single assignment; hooks are
//! inserted at block boundaries and around instructions exactly as in
//! the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod cfg;
pub mod interp;
pub mod module;
pub mod opt;
pub mod verify;

pub use builder::{FunctionBuilder, ModuleBuilder};
pub use cfg::{AbsVal, CallGraph, Cfg};
pub use interp::{ExecError, HookSink, Interp, NullSink};
pub use module::{
    Block, BlockId, Callee, CmpOp, FieldRef, FuncId, Function, Inst, Module, Op, Reg, StructId,
    Terminator,
};
