//! Convenience builders for TIR modules and functions.

use crate::module::{
    Block, BlockId, Function, Inst, Module, ModuleAssertion, Reg, StructDef, StructId, Terminator,
};

/// Builds a [`Module`].
#[derive(Debug)]
pub struct ModuleBuilder {
    module: Module,
}

impl ModuleBuilder {
    /// Start a module named `name` (by convention, the source file).
    pub fn new(name: &str) -> ModuleBuilder {
        ModuleBuilder {
            module: Module {
                name: name.to_string(),
                ..Module::default()
            },
        }
    }

    /// Declare a structure type.
    pub fn add_struct(&mut self, name: &str, fields: &[&str]) -> StructId {
        let id = StructId(self.module.structs.len() as u32);
        self.module.structs.push(StructDef {
            name: name.to_string(),
            fields: fields.iter().map(|f| f.to_string()).collect(),
        });
        id
    }

    /// Begin a function; finish it with [`FunctionBuilder::finish`]
    /// and attach with [`ModuleBuilder::add_function`].
    pub fn begin_function(&mut self, name: &str, n_params: u32) -> FunctionBuilder {
        FunctionBuilder::new(name, n_params)
    }

    /// Attach a finished function.
    pub fn add_function(&mut self, f: Function) -> crate::module::FuncId {
        let id = crate::module::FuncId(self.module.functions.len() as u32);
        self.module.functions.push(f);
        id
    }

    /// Attach a TESLA assertion extracted by the front-end.
    pub fn add_assertion(&mut self, a: tesla_spec::Assertion) -> u32 {
        let id = self.module.assertions.len() as u32;
        self.module
            .assertions
            .push(ModuleAssertion { assertion: a });
        id
    }

    /// Finalise the module.
    pub fn build(self) -> Module {
        self.module
    }
}

/// Builds a [`Function`] block by block.
#[derive(Debug)]
pub struct FunctionBuilder {
    name: String,
    n_params: u32,
    next_reg: u32,
    blocks: Vec<Block>,
    current: Vec<Inst>,
}

impl FunctionBuilder {
    fn new(name: &str, n_params: u32) -> FunctionBuilder {
        FunctionBuilder {
            name: name.to_string(),
            n_params,
            next_reg: n_params,
            blocks: Vec::new(),
            current: Vec::new(),
        }
    }

    /// Parameter register `i`.
    pub fn param(&self, i: u32) -> Reg {
        debug_assert!(i < self.n_params);
        Reg(i)
    }

    /// Allocate a fresh register.
    pub fn fresh(&mut self) -> Reg {
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Append an instruction to the current block.
    pub fn inst(&mut self, i: Inst) {
        self.current.push(i);
    }

    /// `dst = value` shorthand; returns the destination.
    pub fn constant(&mut self, value: i64) -> Reg {
        let dst = self.fresh();
        self.inst(Inst::Const { dst, value });
        dst
    }

    /// Terminate the current block and start a new one; returns the
    /// id of the *new* block.
    pub fn end_block(&mut self, term: Terminator) -> BlockId {
        self.blocks.push(Block {
            insts: std::mem::take(&mut self.current),
            term,
        });
        BlockId(self.blocks.len() as u32)
    }

    /// The id the current (unterminated) block will get.
    pub fn current_block(&self) -> BlockId {
        BlockId(self.blocks.len() as u32)
    }

    /// Terminate the current block and produce the function.
    pub fn finish(mut self, term: Terminator) -> Function {
        self.blocks.push(Block {
            insts: std::mem::take(&mut self.current),
            term,
        });
        Function {
            name: self.name,
            n_params: self.n_params,
            n_regs: self.next_reg,
            blocks: self.blocks,
        }
    }

    /// Finish a function whose body is just `return reg?`.
    pub fn finish_trivial_return(self, value: Option<Reg>) -> Function {
        self.finish(Terminator::Ret(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::module::{CmpOp, Op};

    #[test]
    fn builder_numbers_registers_after_params() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.begin_function("f", 2);
        assert_eq!(f.param(0), Reg(0));
        assert_eq!(f.param(1), Reg(1));
        assert_eq!(f.fresh(), Reg(2));
        assert_eq!(f.fresh(), Reg(3));
        let func = f.finish(Terminator::Ret(None));
        assert_eq!(func.n_regs, 4);
        mb.add_function(func);
    }

    #[test]
    fn multi_block_function_shape() {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.begin_function("abs_diff", 2);
        let c = f.fresh();
        f.inst(Inst::Cmp {
            dst: c,
            op: CmpOp::Lt,
            lhs: f.param(0),
            rhs: f.param(1),
        });
        let then_bb = f.end_block(Terminator::Branch {
            cond: c,
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        });
        assert_eq!(then_bb, BlockId(1));
        let r1 = f.fresh();
        f.inst(Inst::Bin {
            dst: r1,
            op: Op::Sub,
            lhs: f.param(1),
            rhs: f.param(0),
        });
        f.end_block(Terminator::Ret(Some(r1)));
        let r2 = f.fresh();
        f.inst(Inst::Bin {
            dst: r2,
            op: Op::Sub,
            lhs: f.param(0),
            rhs: f.param(1),
        });
        let func = f.finish(Terminator::Ret(Some(r2)));
        assert_eq!(func.blocks.len(), 3);
        mb.add_function(func);
        let m = mb.build();
        assert_eq!(m.n_insts(), 3 + 3); // 3 insts + 3 terminators
    }
}
