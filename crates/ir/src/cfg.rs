//! Control-flow and call-graph utilities for static analysis.
//!
//! The flow-sensitive model checker (in `tesla-instrument`) abstracts
//! every TIR function body into its sequence/branching structure of
//! observable events. The pieces that are pure IR — block successor
//! structure, reachability, the interprocedural call graph, and the
//! abstract value domain — live here so they can be reused by other
//! passes without dragging in the automata crates.

use crate::module::{Callee, Function, Inst, Module, Terminator};
use std::collections::{HashMap, HashSet, VecDeque};

/// An abstract machine-word value for flow-sensitive analysis.
///
/// The domain is deliberately tiny: either a compile-time constant or
/// an opaque *reference* — a symbolic identity for a value the
/// analysis cannot fold (a parameter, a heap load, an external call's
/// result). Two occurrences of the same `Ref` id are guaranteed equal
/// at run time (ids name immutable value identities, not registers);
/// distinct ids carry no relation unless the analysis learns one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbsVal {
    /// A known constant.
    Const(i64),
    /// An opaque symbolic value with identity `0`-based id.
    Ref(u32),
}

impl AbsVal {
    /// Is this a known constant?
    pub fn as_const(self) -> Option<i64> {
        match self {
            AbsVal::Const(c) => Some(c),
            AbsVal::Ref(_) => None,
        }
    }
}

impl std::fmt::Display for AbsVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AbsVal::Const(c) => write!(f, "{c}"),
            AbsVal::Ref(r) => write!(f, "?{r}"),
        }
    }
}

/// Successor block ids of a terminator.
pub fn successors(term: &Terminator) -> Vec<u32> {
    match term {
        Terminator::Jump(b) => vec![b.0],
        Terminator::Branch {
            then_bb, else_bb, ..
        } => vec![then_bb.0, else_bb.0],
        Terminator::Ret(_) | Terminator::Unreachable => vec![],
    }
}

/// A function's control-flow graph: per-block successor and
/// predecessor lists, entry is block 0.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// `succs[b]` — blocks reachable in one step from `b`.
    pub succs: Vec<Vec<u32>>,
    /// `preds[b]` — blocks that can jump to `b`.
    pub preds: Vec<Vec<u32>>,
}

impl Cfg {
    /// Build the CFG of `f`.
    pub fn new(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (i, b) in f.blocks.iter().enumerate() {
            for s in successors(&b.term) {
                succs[i].push(s);
                preds[s as usize].push(i as u32);
            }
        }
        Cfg { succs, preds }
    }

    /// Blocks reachable from the entry block.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.succs.len()];
        if seen.is_empty() {
            return seen;
        }
        let mut q = VecDeque::from([0u32]);
        seen[0] = true;
        while let Some(b) = q.pop_front() {
            for &s in &self.succs[b as usize] {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    q.push_back(s);
                }
            }
        }
        seen
    }
}

/// A name-level interprocedural call graph over a (linked) module.
///
/// Edges follow `Callee::Direct` and `Callee::External` call
/// instructions. Indirect calls are modelled conservatively: a
/// function that performs *any* indirect call is treated as possibly
/// calling every address-taken function.
#[derive(Debug, Clone)]
pub struct CallGraph {
    /// caller name → callee names (direct + resolved external).
    edges: HashMap<String, HashSet<String>>,
}

impl CallGraph {
    /// Build the call graph of `module`.
    pub fn new(module: &Module) -> CallGraph {
        // Address-taken functions: conservative indirect-call targets.
        let mut address_taken: HashSet<String> = HashSet::new();
        for f in &module.functions {
            for b in &f.blocks {
                for i in &b.insts {
                    if let Inst::FnAddr { func, .. } = i {
                        address_taken.insert(module.functions[func.0 as usize].name.clone());
                    }
                }
            }
        }
        let mut edges: HashMap<String, HashSet<String>> = HashMap::new();
        for f in &module.functions {
            let out = edges.entry(f.name.clone()).or_default();
            for b in &f.blocks {
                for i in &b.insts {
                    match i {
                        Inst::Call {
                            callee: Callee::Direct(g),
                            ..
                        } => {
                            out.insert(module.functions[g.0 as usize].name.clone());
                        }
                        Inst::Call {
                            callee: Callee::External(n),
                            ..
                        } => {
                            out.insert(n.clone());
                        }
                        Inst::Call {
                            callee: Callee::Indirect(_),
                            ..
                        } => {
                            out.extend(address_taken.iter().cloned());
                        }
                        _ => {}
                    }
                }
            }
        }
        CallGraph { edges }
    }

    /// Can `from` transitively reach `to` (including `from == to`)?
    pub fn can_reach(&self, from: &str, to: &str) -> bool {
        if from == to {
            return true;
        }
        let mut seen: HashSet<&str> = HashSet::new();
        let mut q: VecDeque<&str> = VecDeque::from([from]);
        seen.insert(from);
        while let Some(f) = q.pop_front() {
            if let Some(out) = self.edges.get(f) {
                for g in out {
                    if g == to {
                        return true;
                    }
                    if seen.insert(g) {
                        q.push_back(g);
                    }
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ModuleBuilder;
    use crate::module::{BlockId, Reg};

    fn two_block_fn() -> Function {
        let mut mb = ModuleBuilder::new("m");
        let mut f = mb.begin_function("f", 1);
        let c = f.fresh();
        f.inst(Inst::Const { dst: c, value: 1 });
        f.end_block(Terminator::Branch {
            cond: c,
            then_bb: BlockId(1),
            else_bb: BlockId(2),
        });
        f.end_block(Terminator::Ret(None));
        let func = f.finish(Terminator::Ret(None));
        mb.add_function(func);
        mb.build().functions[0].clone()
    }

    #[test]
    fn cfg_succs_and_preds() {
        let f = two_block_fn();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs[0], vec![1, 2]);
        assert_eq!(cfg.preds[1], vec![0]);
        assert_eq!(cfg.preds[2], vec![0]);
        assert!(cfg.reachable().iter().all(|r| *r));
    }

    #[test]
    fn successors_of_terminators() {
        assert_eq!(successors(&Terminator::Jump(BlockId(3))), vec![3]);
        assert_eq!(
            successors(&Terminator::Ret(Some(Reg(0)))),
            Vec::<u32>::new()
        );
        assert_eq!(successors(&Terminator::Unreachable), Vec::<u32>::new());
    }

    #[test]
    fn call_graph_reaches_transitively() {
        let mut mb = ModuleBuilder::new("m");
        // c is a leaf.
        let c = mb.begin_function("c", 0).finish_trivial_return(None);
        mb.add_function(c);
        // b calls c.
        let mut b = mb.begin_function("b", 0);
        b.inst(Inst::Call {
            dst: None,
            callee: Callee::Direct(crate::FuncId(0)),
            args: vec![],
        });
        let b = b.finish(Terminator::Ret(None));
        mb.add_function(b);
        // a calls b.
        let mut a = mb.begin_function("a", 0);
        a.inst(Inst::Call {
            dst: None,
            callee: Callee::Direct(crate::FuncId(1)),
            args: vec![],
        });
        let a = a.finish(Terminator::Ret(None));
        mb.add_function(a);
        let m = mb.build();
        let cg = CallGraph::new(&m);
        assert!(cg.can_reach("a", "c"));
        assert!(cg.can_reach("a", "b"));
        assert!(!cg.can_reach("c", "a"));
        assert!(cg.can_reach("c", "c"));
    }

    #[test]
    fn indirect_calls_reach_address_taken_functions() {
        let mut mb = ModuleBuilder::new("m");
        let t = mb.begin_function("target", 0).finish_trivial_return(None);
        mb.add_function(t);
        let mut f = mb.begin_function("f", 0);
        let p = f.fresh();
        f.inst(Inst::FnAddr {
            dst: p,
            func: crate::FuncId(0),
        });
        f.inst(Inst::Call {
            dst: None,
            callee: Callee::Indirect(p),
            args: vec![],
        });
        let func = f.finish(Terminator::Ret(None));
        mb.add_function(func);
        let m = mb.build();
        let cg = CallGraph::new(&m);
        assert!(cg.can_reach("f", "target"));
    }

    #[test]
    fn absval_display_and_const() {
        assert_eq!(AbsVal::Const(-1).to_string(), "-1");
        assert_eq!(AbsVal::Ref(3).to_string(), "?3");
        assert_eq!(AbsVal::Const(7).as_const(), Some(7));
        assert_eq!(AbsVal::Ref(0).as_const(), None);
    }
}
