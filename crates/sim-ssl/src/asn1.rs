//! A miniature DER (ASN.1) codec — just enough of libcrypto's ASN.1
//! layer to express the paper's attack: "forging an ASN.1 tag inside
//! a DSA signature so that one of two large integers claimed to have
//! the BIT STRING type rather than INTEGER" (§3.5.1).

/// ASN.1 universal tags used by DSA signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// `INTEGER` (0x02).
    Integer,
    /// `BIT STRING` (0x03) — what the malicious server claims.
    BitString,
    /// `SEQUENCE` (0x30).
    Sequence,
}

impl Tag {
    /// DER tag byte.
    pub fn byte(self) -> u8 {
        match self {
            Tag::Integer => 0x02,
            Tag::BitString => 0x03,
            Tag::Sequence => 0x30,
        }
    }

    /// Parse a tag byte.
    pub fn from_byte(b: u8) -> Option<Tag> {
        match b {
            0x02 => Some(Tag::Integer),
            0x03 => Some(Tag::BitString),
            0x30 => Some(Tag::Sequence),
            _ => None,
        }
    }
}

/// DER decode errors. `UnexpectedTag` is the *exceptional* failure
/// that OpenSSL's `EVP_VerifyFinal` reports as `-1` — distinct from a
/// bad signature (`0`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Asn1Error {
    /// Input ended early.
    Truncated,
    /// Unknown tag byte.
    BadTag(u8),
    /// A different tag than required was found.
    UnexpectedTag {
        /// What the grammar required.
        want: Tag,
        /// What the encoding claimed.
        got: Tag,
    },
    /// Length over-ran the buffer.
    BadLength,
    /// Trailing garbage after the value.
    TrailingData,
}

impl std::fmt::Display for Asn1Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Asn1Error::Truncated => write!(f, "truncated DER"),
            Asn1Error::BadTag(b) => write!(f, "unknown tag {b:#04x}"),
            Asn1Error::UnexpectedTag { want, got } => {
                write!(f, "expected {want:?}, found {got:?}")
            }
            Asn1Error::BadLength => write!(f, "bad length"),
            Asn1Error::TrailingData => write!(f, "trailing data"),
        }
    }
}

impl std::error::Error for Asn1Error {}

/// Encode one TLV.
pub fn encode_tlv(tag: Tag, content: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(content.len() + 4);
    out.push(tag.byte());
    let len = content.len();
    if len < 128 {
        out.push(len as u8);
    } else {
        // Two-byte long form is plenty for signatures.
        out.push(0x82);
        out.push((len >> 8) as u8);
        out.push((len & 0xff) as u8);
    }
    out.extend_from_slice(content);
    out
}

/// Encode a u64 as a DER INTEGER (minimal big-endian, with the
/// `tag` chosen by the caller so the attack can lie about it).
pub fn encode_uint_as(tag: Tag, v: u64) -> Vec<u8> {
    let bytes = v.to_be_bytes();
    let first = bytes.iter().position(|b| *b != 0).unwrap_or(7);
    let mut content = bytes[first..].to_vec();
    // DER: a leading 1-bit would make it negative; pad.
    if content[0] & 0x80 != 0 {
        content.insert(0, 0);
    }
    encode_tlv(tag, &content)
}

/// A DER reader.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from a buffer.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// All bytes consumed?
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn byte(&mut self) -> Result<u8, Asn1Error> {
        let b = *self.buf.get(self.pos).ok_or(Asn1Error::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read one TLV header, returning (tag, content).
    pub fn tlv(&mut self) -> Result<(Tag, &'a [u8]), Asn1Error> {
        let tb = self.byte()?;
        let tag = Tag::from_byte(tb).ok_or(Asn1Error::BadTag(tb))?;
        let l0 = self.byte()?;
        let len = if l0 < 128 {
            l0 as usize
        } else {
            let n = (l0 & 0x7f) as usize;
            if n == 0 || n > 2 {
                return Err(Asn1Error::BadLength);
            }
            let mut len = 0usize;
            for _ in 0..n {
                len = (len << 8) | self.byte()? as usize;
            }
            len
        };
        let end = self.pos.checked_add(len).ok_or(Asn1Error::BadLength)?;
        if end > self.buf.len() {
            return Err(Asn1Error::BadLength);
        }
        let content = &self.buf[self.pos..end];
        self.pos = end;
        Ok((tag, content))
    }

    /// Read a TLV and *require* its tag — the check the forged
    /// signature trips.
    pub fn expect(&mut self, want: Tag) -> Result<&'a [u8], Asn1Error> {
        let (tag, content) = self.tlv()?;
        if tag != want {
            return Err(Asn1Error::UnexpectedTag { want, got: tag });
        }
        Ok(content)
    }

    /// Read a required INTEGER as u64.
    pub fn expect_uint(&mut self) -> Result<u64, Asn1Error> {
        let content = self.expect(Tag::Integer)?;
        decode_uint(content)
    }
}

/// Decode big-endian content bytes to u64.
pub fn decode_uint(content: &[u8]) -> Result<u64, Asn1Error> {
    let content = if content.first() == Some(&0) {
        &content[1..]
    } else {
        content
    };
    if content.len() > 8 {
        return Err(Asn1Error::BadLength);
    }
    let mut v = 0u64;
    for b in content {
        v = (v << 8) | u64::from(*b);
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uint_roundtrips() {
        for v in [0u64, 1, 127, 128, 255, 0x8000_0000_0000_0000, u64::MAX] {
            let der = encode_uint_as(Tag::Integer, v);
            let mut r = Reader::new(&der);
            assert_eq!(r.expect_uint().unwrap(), v, "value {v:#x}");
            assert!(r.at_end());
        }
    }

    #[test]
    fn sequence_of_integers() {
        let mut body = encode_uint_as(Tag::Integer, 42);
        body.extend(encode_uint_as(Tag::Integer, 7));
        let der = encode_tlv(Tag::Sequence, &body);
        let mut r = Reader::new(&der);
        let seq = r.expect(Tag::Sequence).unwrap();
        let mut inner = Reader::new(seq);
        assert_eq!(inner.expect_uint().unwrap(), 42);
        assert_eq!(inner.expect_uint().unwrap(), 7);
        assert!(inner.at_end());
    }

    #[test]
    fn forged_tag_is_detected_as_unexpected() {
        // The CVE-2008-5077-style forgery: r claims BIT STRING.
        let mut body = encode_uint_as(Tag::BitString, 42);
        body.extend(encode_uint_as(Tag::Integer, 7));
        let der = encode_tlv(Tag::Sequence, &body);
        let mut r = Reader::new(&der);
        let seq = r.expect(Tag::Sequence).unwrap();
        let mut inner = Reader::new(seq);
        match inner.expect_uint() {
            Err(Asn1Error::UnexpectedTag {
                want: Tag::Integer,
                got: Tag::BitString,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_input_errors() {
        assert!(matches!(
            Reader::new(&[0x02]).tlv(),
            Err(Asn1Error::Truncated)
        ));
        assert!(matches!(
            Reader::new(&[0x07, 0x01, 0x00]).tlv(),
            Err(Asn1Error::BadTag(0x07))
        ));
        assert!(matches!(
            Reader::new(&[0x02, 0x05, 0x00]).tlv(),
            Err(Asn1Error::BadLength)
        ));
        // Long form with absurd count.
        assert!(matches!(
            Reader::new(&[0x02, 0x84, 0, 0, 0, 1, 0]).tlv(),
            Err(Asn1Error::BadLength)
        ));
    }

    #[test]
    fn long_form_lengths_roundtrip() {
        let content = vec![0xab; 300];
        let der = encode_tlv(Tag::Sequence, &content);
        let mut r = Reader::new(&der);
        let got = r.expect(Tag::Sequence).unwrap();
        assert_eq!(got, &content[..]);
    }
}
