//! "libcrypto": a toy signature scheme with OpenSSL's tri-state
//! verification interface.
//!
//! `EVP_VerifyFinal` returns **1** for a good signature, **0** for a
//! bad signature, and **-1** for an *exceptional failure* (such as a
//! forged ASN.1 tag inside the signature). Conflating the last two —
//! checking `!= 0` or falsy-ness instead of `== 1` — is the
//! CVE-2008-5077-class bug of §2.1/§3.5.1. No real cryptography here:
//! the tri-state control flow is the object of study.

use crate::asn1::{encode_tlv, encode_uint_as, Asn1Error, Reader, Tag};

/// A signing/verification key (shared-secret toy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Key(pub u64);

/// FNV-1a — the toy message digest.
pub fn digest(msg: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in msg {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Sign `msg`, producing a DER `SEQUENCE { INTEGER r, INTEGER s }`
/// (the DSA signature shape). When `forge_tag` is set, `r` is encoded
/// claiming the `BIT STRING` type — the paper's malicious server.
pub fn sign(msg: &[u8], key: Key, forge_tag: bool) -> Vec<u8> {
    let h = digest(msg);
    let r = h ^ key.0;
    let s = h.rotate_left(17).wrapping_add(key.0);
    let r_tag = if forge_tag {
        Tag::BitString
    } else {
        Tag::Integer
    };
    let mut body = encode_uint_as(r_tag, r);
    body.extend(encode_uint_as(Tag::Integer, s));
    encode_tlv(Tag::Sequence, &body)
}

/// The `EVP_VerifyFinal` result: OpenSSL's infamous tri-state.
pub type VerifyResult = i64;

/// Verify a DER signature over `msg`. Pure function — the hook-
/// emitting wrapper lives in [`crate::SslWorld`].
///
/// Returns `1` (good), `0` (bad signature) or `-1` (exceptional
/// failure inside the ASN.1/crypto layer).
pub fn evp_verify_final(msg: &[u8], sig_der: &[u8], key: Key) -> VerifyResult {
    match parse_and_check(msg, sig_der, key) {
        Ok(true) => 1,
        Ok(false) => 0,
        Err(_) => -1,
    }
}

fn parse_and_check(msg: &[u8], sig_der: &[u8], key: Key) -> Result<bool, Asn1Error> {
    let mut rd = Reader::new(sig_der);
    let seq = rd.expect(Tag::Sequence)?;
    if !rd.at_end() {
        return Err(Asn1Error::TrailingData);
    }
    let mut inner = Reader::new(seq);
    let r = inner.expect_uint()?;
    let s = inner.expect_uint()?;
    if !inner.at_end() {
        return Err(Asn1Error::TrailingData);
    }
    let h = digest(msg);
    Ok(r == h ^ key.0 && s == h.rotate_left(17).wrapping_add(key.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: Key = Key(0xdead_beef_cafe_f00d);

    #[test]
    fn good_signature_verifies_as_1() {
        let sig = sign(b"server key exchange params", KEY, false);
        assert_eq!(
            evp_verify_final(b"server key exchange params", &sig, KEY),
            1
        );
    }

    #[test]
    fn wrong_message_is_0() {
        let sig = sign(b"params", KEY, false);
        assert_eq!(evp_verify_final(b"tampered", &sig, KEY), 0);
    }

    #[test]
    fn wrong_key_is_0() {
        let sig = sign(b"params", KEY, false);
        assert_eq!(evp_verify_final(b"params", &sig, Key(1)), 0);
    }

    #[test]
    fn forged_tag_is_exceptional_minus_1() {
        let sig = sign(b"params", KEY, true);
        assert_eq!(evp_verify_final(b"params", &sig, KEY), -1);
    }

    #[test]
    fn garbage_is_exceptional_minus_1() {
        assert_eq!(evp_verify_final(b"params", b"\x00\x01\x02", KEY), -1);
        assert_eq!(evp_verify_final(b"params", &[], KEY), -1);
    }
}
