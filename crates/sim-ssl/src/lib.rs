//! # tesla-sim-ssl — the OpenSSL / libfetch case study substrate
//!
//! Reproduces the software stack of §2.1/§3.5.1 (see DESIGN.md): a
//! toy **libcrypto** ([`crypto`], [`asn1`]) with OpenSSL's tri-state
//! `EVP_VerifyFinal`; a **libssl** ([`ssl`]) whose
//! `ssl3_get_key_exchange` contains the CVE-2008-5077-class
//! conflation bug (treating the exceptional `-1` as success); a
//! malicious **s_server** that forges an ASN.1 tag inside the DSA
//! signature; and a **libfetch** client that retrieves an HTML
//! document over the handshake.
//!
//! The TESLA assertion of fig. 6 is written *in libfetch* — one
//! library — and drives instrumentation on the API *between* libssl
//! and libcrypto:
//!
//! ```text
//! TESLA_WITHIN(main, previously(
//!     EVP_VerifyFinal(ANY(ptr), ANY(ptr), ANY(int), ANY(ptr)) == 1));
//! ```
//!
//! "The return value may not have been correctly checked, but if the
//! function returns non-success, it will not satisfy the TESLA
//! expression."

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asn1;
pub mod crypto;
pub mod scenario;
pub mod ssl;

use crypto::Key;
use ssl::{SslClient, SslError, SslServer};
use std::sync::Arc;
use tesla_runtime::{ClassId, NameId, Tesla, Violation};
use tesla_spec::{call, AssertionBuilder, Value};

/// How a fetch can fail.
#[derive(Debug, Clone, PartialEq)]
pub enum FetchError {
    /// The TLS layer rejected the handshake (the *fixed* libssl
    /// behaviour against a malicious server).
    Ssl(SslError),
    /// A TESLA assertion fired (the *buggy* libssl behaviour against
    /// a malicious server, caught by fig. 6).
    Tesla(Violation),
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Ssl(e) => write!(f, "SSL error: {e}"),
            FetchError::Tesla(v) => write!(f, "{v}"),
        }
    }
}

impl std::error::Error for FetchError {}

/// The assembled world: server, client libraries and (optionally)
/// TESLA instrumentation.
pub struct SslWorld {
    tesla: Option<TeslaCtx>,
    key: Key,
}

struct TeslaCtx {
    engine: Arc<Tesla>,
    class: ClassId,
    evp: NameId,
    main: NameId,
}

/// The fig. 6 assertion, exactly as in the paper.
pub fn figure6_assertion() -> tesla_spec::Assertion {
    AssertionBuilder::within("main")
        .named("libfetch/verify")
        .at("fetch.c", 42)
        .previously(
            call("EVP_VerifyFinal")
                .any_ptr()
                .any_ptr()
                .any("int")
                .any_ptr()
                .returns(1),
        )
        .build()
        .expect("figure 6 assertion is valid")
}

impl SslWorld {
    /// Build a world; attach a libtesla engine to enable the fig. 6
    /// assertion ("recompile the program and its dependencies").
    pub fn new(tesla: Option<Arc<Tesla>>) -> SslWorld {
        let tesla = tesla.map(|engine| {
            let auto = tesla_automata::compile(&figure6_assertion()).expect("figure 6 compiles");
            let class = engine.register(auto).expect("registration succeeds");
            let evp = engine.intern_fn("EVP_VerifyFinal");
            let main = engine.intern_fn("main");
            TeslaCtx {
                engine,
                class,
                evp,
                main,
            }
        });
        SslWorld {
            tesla,
            key: Key(0xdead_beef_cafe_f00d),
        }
    }

    /// The instrumented `EVP_VerifyFinal`: callee-side hooks around
    /// the libcrypto call (§4.2's instrumentation, emitted here
    /// directly since the substrate is Rust).
    fn evp_verify_final_hooked(&self, msg: &[u8], sig: &[u8], key: Key) -> Result<i64, Violation> {
        // ctx/sigbuf/len/pkey argument values, as the real call has.
        let args = [
            Value(0x1000),
            Value(0x2000),
            Value(sig.len() as u64),
            Value(key.0),
        ];
        if let Some(t) = &self.tesla {
            t.engine.fn_entry(t.evp, &args)?;
        }
        let rc = crypto::evp_verify_final(msg, sig, key);
        if let Some(t) = &self.tesla {
            t.engine.fn_exit(t.evp, &args, Value::from_i64(rc))?;
        }
        Ok(rc)
    }

    /// The libfetch client: `fetch_url` — connect, retrieve, and (at
    /// the paper's assertion site) demand that certificate
    /// verification previously *succeeded*.
    ///
    /// `malicious_server` makes s_server forge the signature tag;
    /// `buggy_libssl` selects the pre-fix `!= 0` return-value check.
    ///
    /// # Errors
    ///
    /// [`FetchError::Ssl`] if the handshake failed;
    /// [`FetchError::Tesla`] if the temporal assertion fired.
    pub fn fetch_url(
        &self,
        malicious_server: bool,
        buggy_libssl: bool,
    ) -> Result<Vec<u8>, FetchError> {
        // Enter the assertion's temporal bound: libfetch's main.
        if let Some(t) = &self.tesla {
            t.engine.fn_entry(t.main, &[]).map_err(FetchError::Tesla)?;
        }
        let r = self.fetch_inner(malicious_server, buggy_libssl);
        if let Some(t) = &self.tesla {
            t.engine
                .fn_exit(t.main, &[], Value(0))
                .map_err(FetchError::Tesla)?;
        }
        r
    }

    fn fetch_inner(
        &self,
        malicious_server: bool,
        buggy_libssl: bool,
    ) -> Result<Vec<u8>, FetchError> {
        let server = SslServer {
            key: self.key,
            forge_signature_tag: malicious_server,
        };
        let mut client = SslClient {
            key: self.key,
            buggy_return_check: buggy_libssl,
        };
        // SSL_connect: the handshake, including ssl3_get_key_exchange
        // → EVP_VerifyFinal.
        client
            .connect(&server, |msg, sig| {
                self.evp_verify_final_hooked(msg, sig, self.key)
            })
            .map_err(|e| match e {
                ssl::HandshakeAbort::Ssl(e) => FetchError::Ssl(e),
                ssl::HandshakeAbort::Tesla(v) => FetchError::Tesla(v),
            })?;
        // The assertion site: about to hand the document to the
        // application — was the key-exchange signature *successfully*
        // verified earlier in main?
        if let Some(t) = &self.tesla {
            t.engine
                .assertion_site(t.class, &[])
                .map_err(FetchError::Tesla)?;
        }
        Ok(server.serve_document())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_runtime::{Config, FailMode};

    fn world() -> SslWorld {
        SslWorld::new(Some(Arc::new(Tesla::with_defaults())))
    }

    #[test]
    fn honest_server_fetches_fine_either_libssl() {
        for buggy in [false, true] {
            let w = world();
            let doc = w.fetch_url(false, buggy).unwrap();
            assert!(doc.starts_with(b"<html>"));
        }
    }

    #[test]
    fn fixed_libssl_rejects_malicious_server_at_handshake() {
        let w = world();
        match w.fetch_url(true, false) {
            Err(FetchError::Ssl(e)) => {
                assert_eq!(e, SslError::BadSignature);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn buggy_libssl_is_caught_by_the_figure6_assertion() {
        let w = world();
        match w.fetch_url(true, true) {
            Err(FetchError::Tesla(v)) => {
                assert_eq!(v.assertion, "libfetch/verify");
                assert!(v.source.contains("EVP_VerifyFinal"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn buggy_libssl_without_tesla_silently_serves_the_document() {
        // The vulnerability: no instrumentation, forged signature,
        // buggy check — the document is served as if verified.
        let w = SslWorld::new(None);
        let doc = w.fetch_url(true, true).unwrap();
        assert!(doc.starts_with(b"<html>"));
    }

    #[test]
    fn log_mode_records_instead_of_failing() {
        let engine = Arc::new(Tesla::new(Config {
            fail_mode: FailMode::Log,
            ..Config::default()
        }));
        let w = SslWorld::new(Some(engine.clone()));
        let doc = w.fetch_url(true, true).unwrap();
        assert!(doc.starts_with(b"<html>"));
        assert_eq!(engine.violations().len(), 1);
    }
}
