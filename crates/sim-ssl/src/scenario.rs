//! Timeline adapter: drive [`SslWorld`] from declarative scenario
//! steps (`tesla scenario`, runner `sim-ssl`).
//!
//! Ops:
//!
//! | op      | arguments                                          |
//! |---------|----------------------------------------------------|
//! | `fetch` | `malicious` (bool, default false), `buggy` (bool, default false) |
//!
//! A fetch that fails (handshake rejection, or a fail-stop violation
//! when the engine is in that mode) is an *outcome*, not a step
//! error: it is recorded as a note and the scenario's expectations
//! decide whether the run passed. Step errors are reserved for
//! malformed steps — unknown ops, ill-typed arguments — which mark
//! the scenario itself broken.

use crate::SslWorld;
use std::sync::Arc;
use tesla_runtime::scenario::Step;
use tesla_runtime::Tesla;

/// Scenario-driven SSL world: fig. 6's libfetch/libssl client plus
/// the notes accumulated while executing a timeline.
pub struct SslScenario {
    world: SslWorld,
    /// Human-readable outcome log, one line per observable effect.
    pub notes: Vec<String>,
}

impl SslScenario {
    /// A world attached to `tesla` (or uninstrumented when `None`).
    pub fn new(tesla: Option<Arc<Tesla>>) -> SslScenario {
        SslScenario {
            world: SslWorld::new(tesla),
            notes: Vec::new(),
        }
    }

    /// Execute one timeline step.
    ///
    /// # Errors
    ///
    /// A description of the first malformed argument or unknown op.
    pub fn step(&mut self, step: &Step) -> Result<(), String> {
        match step.op.as_str() {
            "fetch" => {
                let malicious = step.bool_or("malicious", false)?;
                let buggy = step.bool_or("buggy", false)?;
                match self.world.fetch_url(malicious, buggy) {
                    Ok(doc) => self.notes.push(format!("fetch ok ({} bytes)", doc.len())),
                    Err(e) => self.notes.push(format!("fetch failed: {e}")),
                }
                Ok(())
            }
            other => Err(format!("sim-ssl runner: unknown op `{other}`")),
        }
    }
}
