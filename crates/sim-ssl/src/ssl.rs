//! "libssl": the handshake containing the conflation bug.
//!
//! §3.5.1: "A vulnerability was caused by applications failing to
//! properly check tri-state return values … an exceptional failure
//! inside OpenSSL's libcrypto … was incorrectly conflated with
//! success by libssl client code." Figure 2's fix changes
//! `!X509_verify_cert(...)` (falsy check) into an explicit
//! `X509_verify_cert(...) <= 0` comparison; here the same bug lives
//! in `ssl3_get_key_exchange`'s handling of `EVP_VerifyFinal`.

use crate::crypto::{sign, Key};
use tesla_runtime::Violation;

/// TLS-layer failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SslError {
    /// The key-exchange signature did not verify.
    BadSignature,
}

impl std::fmt::Display for SslError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SslError::BadSignature => write!(f, "key exchange signature verification failed"),
        }
    }
}

impl std::error::Error for SslError {}

/// Why a handshake stopped: a TLS error, or instrumentation
/// fail-stopping mid-handshake.
#[derive(Debug)]
pub enum HandshakeAbort {
    /// TLS-layer rejection.
    Ssl(SslError),
    /// TESLA violation (strict automata etc.).
    Tesla(Violation),
}

/// The server side (`s_server`), optionally malicious.
pub struct SslServer {
    /// Signing key.
    pub key: Key,
    /// Forge the ASN.1 tag inside the signature (§3.5.1's crafted
    /// key-exchange signature).
    pub forge_signature_tag: bool,
}

/// The ServerKeyExchange message.
pub struct ServerKeyExchange {
    /// Key-exchange parameters (what the signature covers).
    pub params: Vec<u8>,
    /// DER signature over the params.
    pub signature: Vec<u8>,
}

impl SslServer {
    /// Produce the (possibly maliciously crafted) key exchange.
    pub fn key_exchange(&self) -> ServerKeyExchange {
        let params = b"p=23 g=5 pub=19".to_vec();
        let signature = sign(&params, self.key, self.forge_signature_tag);
        ServerKeyExchange { params, signature }
    }

    /// The application payload behind the handshake.
    pub fn serve_document(&self) -> Vec<u8> {
        b"<html><body>hello over TLS</body></html>".to_vec()
    }
}

/// The client side of the handshake.
pub struct SslClient {
    /// Verification key.
    pub key: Key,
    /// Use the pre-fix return-value check (`!= 0` — conflates the
    /// exceptional `-1` with success) instead of `== 1`.
    pub buggy_return_check: bool,
}

impl SslClient {
    /// `SSL_connect`: run the handshake. `verify` is the
    /// (instrumented) `EVP_VerifyFinal` entry point, injected so the
    /// instrumentation layer stays outside libssl — mirroring that
    /// the paper's hooks are woven between the libraries.
    ///
    /// # Errors
    ///
    /// [`HandshakeAbort`] on verification failure (fixed client) or
    /// TESLA fail-stop.
    pub fn connect(
        &mut self,
        server: &SslServer,
        verify: impl Fn(&[u8], &[u8]) -> Result<i64, Violation>,
    ) -> Result<(), HandshakeAbort> {
        let kx = server.key_exchange();
        self.ssl3_get_key_exchange(&kx, verify)
    }

    /// The buggy/fixed verification logic.
    fn ssl3_get_key_exchange(
        &mut self,
        kx: &ServerKeyExchange,
        verify: impl Fn(&[u8], &[u8]) -> Result<i64, Violation>,
    ) -> Result<(), HandshakeAbort> {
        let rc = verify(&kx.params, &kx.signature).map_err(HandshakeAbort::Tesla)?;
        let accepted = if self.buggy_return_check {
            // BUG (CVE-2008-5077 class): treats -1 ("exceptional
            // failure") as success because it only tests for the
            // "bad signature" zero.
            rc != 0
        } else {
            rc == 1
        };
        if accepted {
            Ok(())
        } else {
            Err(HandshakeAbort::Ssl(SslError::BadSignature))
        }
    }
}
