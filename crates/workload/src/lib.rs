//! # tesla-workload — the paper's workload generators
//!
//! DESIGN.md substitutions for the evaluation drivers of §5:
//!
//! * [`lmbench`] — the `lmbench` microbenchmarks (fig. 11a's
//!   `open close`, plus read and poll loops);
//! * [`oltp`] — a SysBench-OLTP-like multi-threaded, socket-intensive
//!   transaction workload (fig. 11b, fig. 13);
//! * [`buildload`] — a Clang-build-like filesystem/compute-intensive
//!   workload (fig. 11b, fig. 13);
//! * [`xnee`] — a GNU-Xnee-like scripted UI event replayer measuring
//!   window redraw times (fig. 14b).
//!
//! Generators *execute* work against a substrate; timing is the
//! caller's job (criterion in the benches, simple clocks in the
//! `repro` binary).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;
use tesla_sim_kernel::types::{oflags, KResult, Pid};
use tesla_sim_kernel::Kernel;

pub mod scenario;

/// lmbench-like syscall microbenchmarks.
pub mod lmbench {
    use super::*;

    /// Set up the files the microbenchmarks need.
    pub fn setup(k: &Kernel) {
        k.mkdir_p("/tmp", 0).expect("mkdir");
        k.mkfile("/tmp/lat_open", b"0123456789abcdef", 0, false)
            .expect("mkfile");
    }

    /// One `open`+`close` pair (the paper's `lat_syscall open close`).
    ///
    /// # Errors
    ///
    /// Propagates kernel errors (including TESLA fail-stops).
    pub fn open_close(k: &Kernel, pid: Pid) -> KResult<()> {
        let fd = k.sys_open(pid, "/tmp/lat_open", oflags::O_RDONLY)?;
        k.sys_close(pid, fd)
    }

    /// `n` open/close iterations.
    ///
    /// # Errors
    ///
    /// Propagates the first failure.
    pub fn open_close_loop(k: &Kernel, pid: Pid, n: usize) -> KResult<()> {
        for _ in 0..n {
            open_close(k, pid)?;
        }
        Ok(())
    }

    /// `n` read iterations over an open descriptor.
    ///
    /// # Errors
    ///
    /// Propagates the first failure.
    pub fn read_loop(k: &Kernel, pid: Pid, n: usize) -> KResult<()> {
        let fd = k.sys_open(pid, "/tmp/lat_open", oflags::O_RDONLY)?;
        for _ in 0..n {
            let _ = k.sys_read(pid, fd, 4)?;
        }
        k.sys_close(pid, fd)
    }

    /// `n` socket poll iterations (drives the fig. 4/fig. 9 path).
    ///
    /// # Errors
    ///
    /// Propagates the first failure.
    pub fn poll_loop(k: &Kernel, pid: Pid, n: usize) -> KResult<()> {
        let (cli, _srv) = k.socketpair(pid)?;
        for _ in 0..n {
            k.sys_poll(pid, cli)?;
        }
        Ok(())
    }
}

/// A SysBench-OLTP-like workload: `threads` workers, each its own
/// process, running transactions of socket traffic plus table I/O.
pub mod oltp {
    use super::*;

    /// Workload parameters.
    #[derive(Debug, Clone, Copy)]
    pub struct OltpParams {
        /// Worker threads.
        pub threads: usize,
        /// Transactions per worker.
        pub transactions: usize,
        /// Socket round-trips per transaction (socket-intensive).
        pub socket_ops: usize,
        /// Userspace work per transaction (query parsing, row
        /// processing — the database side of SysBench).
        pub compute: usize,
    }

    impl Default for OltpParams {
        fn default() -> OltpParams {
            OltpParams {
                threads: 4,
                transactions: 100,
                socket_ops: 4,
                compute: 600,
            }
        }
    }

    /// Run the workload to completion and return the total number of
    /// transactions executed; panics on kernel errors (workloads run
    /// on clean kernels).
    ///
    /// Every worker forks its own process and socketpair, so the
    /// workload itself shares no file descriptors across threads:
    /// any cross-thread cost observed under Global-context
    /// assertions (the `context_scaling` experiment) is engine-side
    /// — dispatch-snapshot and store-shard synchronisation — not
    /// workload-side.
    pub fn run(k: &Arc<Kernel>, params: OltpParams) -> u64 {
        k.mkdir_p("/db", 0).expect("mkdir");
        if k.sys_stat(k.init_pid(), "/db/table").is_err() {
            k.mkfile("/db/table", &vec![0u8; 256], 0, false)
                .expect("mkfile");
        }
        let mut handles = Vec::new();
        for _ in 0..params.threads {
            let k = k.clone();
            handles.push(std::thread::spawn(move || {
                let me = k.sys_fork(k.init_pid()).expect("fork");
                let (cli, srv) = k.socketpair(me).expect("socketpair");
                let mut acc: u64 = 0x9e37_79b9_7f4a_7c15;
                for txn in 0..params.transactions {
                    // Userspace query processing.
                    for r in 0..params.compute as u64 {
                        acc ^= r.wrapping_mul(0x100_0000_01b3) ^ txn as u64;
                        acc = acc.rotate_left(7);
                    }
                    std::hint::black_box(acc);
                    for _ in 0..params.socket_ops {
                        k.sys_send(me, cli, b"q").expect("send");
                        let _ = k.sys_recv(me, srv).expect("recv");
                        k.sys_poll(me, cli).expect("poll");
                    }
                    // Table access.
                    let fd = k.sys_open(me, "/db/table", oflags::O_RDONLY).expect("open");
                    let _ = k.sys_read(me, fd, 32).expect("read");
                    if txn % 4 == 0 {
                        k.sys_write(me, fd, b"commit").expect("write");
                    }
                    k.sys_close(me, fd).expect("close");
                }
                k.sys_exit(me, 0).expect("exit");
                tesla_runtime::engine::reset_thread_state();
                params.transactions as u64
            }));
        }
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    }
}

/// A Clang-build-like workload: open/read/compute/write per "source
/// file". FS- and compute-intensive, so instrumentation overhead is
/// amortised (the fig. 11b "Clang build" bar).
pub mod buildload {
    use super::*;

    /// Workload parameters.
    #[derive(Debug, Clone, Copy)]
    pub struct BuildParams {
        /// Number of source files to "compile".
        pub files: usize,
        /// Compute iterations per file (the compiler's CPU work).
        pub compute: usize,
    }

    impl Default for BuildParams {
        fn default() -> BuildParams {
            BuildParams {
                files: 50,
                compute: 2_000,
            }
        }
    }

    /// Run the build. Returns a checksum (prevents dead-code
    /// elimination of the compute loop).
    pub fn run(k: &Kernel, params: BuildParams) -> u64 {
        let pid = k.init_pid();
        k.mkdir_p("/src", 0).expect("mkdir");
        k.mkdir_p("/obj", 0).expect("mkdir");
        let mut acc: u64 = 0;
        for i in 0..params.files {
            let src = format!("/src/file{i}.c");
            if k.sys_stat(pid, &src).is_err() {
                k.mkfile(
                    &src,
                    format!("int f{i}(void) {{ return {i}; }}").as_bytes(),
                    0,
                    false,
                )
                .expect("mkfile");
            }
            let fd = k.sys_open(pid, &src, oflags::O_RDONLY).expect("open");
            let text = k.sys_read(pid, fd, 4096).expect("read");
            k.sys_close(pid, fd).expect("close");
            // "Compile": hash the text repeatedly.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for round in 0..params.compute {
                for b in &text {
                    h ^= u64::from(*b) ^ round as u64;
                    h = h.wrapping_mul(0x100_0000_01b3);
                }
            }
            acc ^= h;
            let obj = format!("/obj/file{i}.o");
            let ofd = match k.sys_open(pid, &obj, oflags::O_CREAT) {
                Ok(fd) => fd,
                Err(_) => k.sys_open(pid, &obj, oflags::O_WRONLY).expect("reopen"),
            };
            k.sys_write(pid, ofd, &h.to_le_bytes()).expect("write");
            k.sys_close(pid, ofd).expect("close");
        }
        acc
    }
}

/// A GNU-Xnee-like UI session replayer (fig. 14b).
pub mod xnee {
    use tesla_sim_gui::appkit::UiEvent;
    use tesla_sim_gui::GuiApp;

    /// A deterministic interactive session: mouse sweeps over the
    /// dialog (partial repaints) with periodic full exposes (the
    /// outliers of fig. 14b: "outliers are complete redraws").
    pub fn session(iterations: usize) -> Vec<Vec<UiEvent>> {
        let mut out = Vec::with_capacity(iterations);
        for i in 0..iterations {
            let x = (i as i64 * 7) % 120;
            let y = 40 + (i as i64 % 3);
            let mut batch = vec![UiEvent::MouseMoved(x, y)];
            if i % 10 == 9 {
                batch.push(UiEvent::InvalidateTracking);
            }
            if i % 5 == 4 {
                batch.push(UiEvent::Expose);
            }
            out.push(batch);
        }
        out
    }

    /// Replay a session, returning per-iteration redraw times.
    pub fn replay(app: &mut GuiApp, script: &[Vec<UiEvent>]) -> Vec<std::time::Duration> {
        let mut times = Vec::with_capacity(script.len());
        for batch in script {
            let t0 = std::time::Instant::now();
            app.run_loop_iteration(batch).expect("iteration");
            times.push(t0.elapsed());
        }
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tesla_runtime::{Config, FailMode, Tesla};
    use tesla_sim_kernel::assertions::{register_sets, AssertionSet};
    use tesla_sim_kernel::mac::MacFramework;
    use tesla_sim_kernel::{Bugs, KernelConfig};

    fn instrumented_kernel(sets: &[AssertionSet]) -> (Arc<Kernel>, Arc<Tesla>) {
        let t = Arc::new(Tesla::new(Config {
            fail_mode: FailMode::FailStop,
            ..Config::default()
        }));
        let reg = register_sets(&t, sets).unwrap();
        let k = Arc::new(Kernel::new(
            KernelConfig {
                bugs: Bugs::default(),
                debug_checks: false,
            },
            MacFramework::new(),
            Some((t.clone(), reg.sites)),
        ));
        (k, t)
    }

    #[test]
    fn lmbench_runs_clean_on_all_assertions() {
        let (k, t) = instrumented_kernel(&[AssertionSet::All]);
        lmbench::setup(&k);
        lmbench::open_close_loop(&k, k.init_pid(), 50).unwrap();
        lmbench::read_loop(&k, k.init_pid(), 50).unwrap();
        lmbench::poll_loop(&k, k.init_pid(), 50).unwrap();
        assert!(t.violations().is_empty());
    }

    #[test]
    fn oltp_runs_multithreaded_on_all_assertions() {
        let (k, t) = instrumented_kernel(&[AssertionSet::All]);
        oltp::run(
            &k,
            oltp::OltpParams {
                threads: 3,
                transactions: 20,
                socket_ops: 2,
                compute: 600,
            },
        );
        assert!(t.violations().is_empty(), "{:?}", t.violations());
    }

    #[test]
    fn buildload_is_deterministic() {
        let (k, t) = instrumented_kernel(&[AssertionSet::M]);
        let p = buildload::BuildParams {
            files: 5,
            compute: 10,
        };
        let a = buildload::run(&k, p);
        let k2 = Kernel::release(KernelConfig::default());
        let b = buildload::run(&k2, p);
        assert_eq!(a, b);
        assert!(t.violations().is_empty());
    }

    #[test]
    fn xnee_replay_produces_redraws() {
        use tesla_sim_gui::appkit::GuiBugs;
        use tesla_sim_gui::{GuiApp, GuiMode};
        let script = xnee::session(30);
        assert_eq!(script.len(), 30);
        let mut app = GuiApp::new(GuiMode::Release, GuiBugs::default());
        let times = xnee::replay(&mut app, &script);
        assert_eq!(times.len(), 30);
        assert!(!app.world.framebuffer.is_empty());
    }
}
