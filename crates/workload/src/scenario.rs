//! Timeline adapter: drive the §5 workload generators from
//! declarative scenario steps (`tesla scenario`, runner `workload`).
//!
//! Each op runs one generator to completion against a shared kernel
//! (and, for `xnee`, a lazily-built GUI app on the same engine):
//!
//! | op           | arguments                                             |
//! |--------------|-------------------------------------------------------|
//! | `setup`      | — (lmbench file setup)                                |
//! | `open_close` | `n` (int, default 100)                                |
//! | `read_loop`  | `n` (int, default 100)                                |
//! | `poll_loop`  | `n` (int, default 100)                                |
//! | `oltp`       | `threads`, `transactions`, `socket_ops`, `compute`    |
//! | `build`      | `files`, `compute`                                    |
//! | `xnee`       | `iterations` (int, default 3)                         |
//!
//! Workloads run on clean kernels (no seeded bugs): the generators
//! `expect` success internally, exactly as the benchmarks do.

use crate::{buildload, lmbench, oltp, xnee};
use std::sync::Arc;
use tesla_runtime::scenario::Step;
use tesla_runtime::Tesla;
use tesla_sim_gui::appkit::GuiBugs;
use tesla_sim_gui::{GuiApp, GuiMode};
use tesla_sim_kernel::{Bugs, Kernel, KernelConfig, SiteMap};

/// Scenario-driven workload world: a shared kernel, an optional GUI
/// app, and the notes accumulated while executing a timeline.
pub struct WorkloadScenario {
    kernel: Arc<Kernel>,
    engine: Option<Arc<Tesla>>,
    gui: Option<GuiApp>,
    setup_done: bool,
    /// Human-readable outcome log, one line per completed generator.
    pub notes: Vec<String>,
}

impl WorkloadScenario {
    /// Boot a clean kernel attached to `tesla` (with its registered
    /// site map) when instrumented.
    pub fn new(tesla: Option<(Arc<Tesla>, SiteMap)>) -> WorkloadScenario {
        let engine = tesla.as_ref().map(|(e, _)| e.clone());
        let kernel = Arc::new(Kernel::new(
            KernelConfig {
                bugs: Bugs::default(),
                debug_checks: false,
            },
            tesla_sim_kernel::mac::MacFramework::new(),
            tesla,
        ));
        WorkloadScenario {
            kernel,
            engine,
            gui: None,
            setup_done: false,
            notes: Vec::new(),
        }
    }

    /// `lmbench::setup` creates its files with must-succeed calls, so
    /// it may run only once per kernel; the loops below need it and a
    /// fuzzer may duplicate or reorder `setup` steps freely.
    fn ensure_setup(&mut self) {
        if !self.setup_done {
            lmbench::setup(&self.kernel);
            self.setup_done = true;
        }
    }

    /// Execute one timeline step.
    ///
    /// # Errors
    ///
    /// A description of the first malformed argument or unknown op.
    pub fn step(&mut self, step: &Step) -> Result<(), String> {
        let n = |name: &str, default: i64, hi: i64| -> Result<usize, String> {
            Ok(step.int_or(name, default)?.clamp(0, hi) as usize)
        };
        match step.op.as_str() {
            "setup" => {
                self.ensure_setup();
                self.notes.push("setup: ok".to_string());
            }
            "open_close" => {
                self.ensure_setup();
                let count = n("n", 100, 100_000)?;
                lmbench::open_close_loop(&self.kernel, self.kernel.init_pid(), count)
                    .map_err(|e| format!("open_close: {e}"))?;
                self.notes.push(format!("open_close: {count} iterations"));
            }
            "read_loop" => {
                self.ensure_setup();
                let count = n("n", 100, 100_000)?;
                lmbench::read_loop(&self.kernel, self.kernel.init_pid(), count)
                    .map_err(|e| format!("read_loop: {e}"))?;
                self.notes.push(format!("read_loop: {count} iterations"));
            }
            "poll_loop" => {
                self.ensure_setup();
                let count = n("n", 100, 100_000)?;
                lmbench::poll_loop(&self.kernel, self.kernel.init_pid(), count)
                    .map_err(|e| format!("poll_loop: {e}"))?;
                self.notes.push(format!("poll_loop: {count} iterations"));
            }
            "oltp" => {
                let params = oltp::OltpParams {
                    threads: n("threads", 2, 16)?.max(1),
                    transactions: n("transactions", 20, 10_000)?,
                    socket_ops: n("socket_ops", 2, 1_000)?,
                    compute: n("compute", 50, 1_000_000)?,
                };
                let done = oltp::run(&self.kernel, params);
                self.notes.push(format!("oltp: {done} transactions"));
            }
            "build" => {
                let params = buildload::BuildParams {
                    files: n("files", 10, 10_000)?,
                    compute: n("compute", 100, 1_000_000)?,
                };
                let sum = buildload::run(&self.kernel, params);
                self.notes.push(format!("build: checksum {sum:x}"));
            }
            "xnee" => {
                let iterations = n("iterations", 3, 1_000)?;
                let app = self.gui.get_or_insert_with(|| {
                    let mode = match &self.engine {
                        Some(e) => GuiMode::Tesla(e.clone()),
                        None => GuiMode::Release,
                    };
                    GuiApp::new(mode, GuiBugs::default())
                });
                let script = xnee::session(iterations);
                let times = xnee::replay(app, &script);
                self.notes.push(format!("xnee: {} iterations", times.len()));
            }
            other => return Err(format!("workload runner: unknown op `{other}`")),
        }
        Ok(())
    }
}
